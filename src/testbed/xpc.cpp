#include "testbed/xpc.h"

#include <cmath>

namespace nees::testbed {

XpcTarget::XpcTarget(Params params,
                     std::unique_ptr<PhysicalSpecimen> specimen)
    : params_(params), specimen_(std::move(specimen)) {}

util::Result<Measurement> XpcTarget::Execute(double target_m) {
  const double period = 1.0 / params_.tick_rate_hz;
  if (params_.tick_cost_s > period) {
    // Every tick would overrun: count them, the loop still "runs" degraded.
    missed_deadlines_ += 1;
  }

  // The motion itself is simulated by the specimen's motion system; here we
  // account for it in whole control ticks.
  auto measurement = specimen_->ApplyDisplacement(target_m);
  if (!measurement.ok()) return measurement.status();

  const auto ticks = static_cast<std::int64_t>(
      std::ceil(measurement->motion_seconds / period));
  const std::int64_t used = std::min(
      std::max<std::int64_t>(ticks, 1), params_.max_ticks_per_command);
  total_ticks_ += used;
  if (ticks > params_.max_ticks_per_command) {
    return util::TimeoutError("xPC command exceeded tick budget");
  }
  return measurement;
}

}  // namespace nees::testbed
