#include "testbed/sensors.h"

#include <algorithm>
#include <cmath>

namespace nees::testbed {

Sensor::Sensor(std::string name, SensorParams params, std::uint64_t seed)
    : name_(std::move(name)), params_(params), rng_(seed) {}

double Sensor::Measure(double true_value) {
  ++samples_;
  double value = params_.gain * true_value + params_.bias;
  if (params_.noise_std > 0.0) value += rng_.Gaussian(0.0, params_.noise_std);
  if (params_.quantization > 0.0) {
    value = params_.quantization * std::round(value / params_.quantization);
  }
  if (params_.range > 0.0) {
    value = std::clamp(value, -params_.range, params_.range);
  }
  return value;
}

Sensor MakeLvdt(std::uint64_t seed, double range_m) {
  SensorParams params;
  params.gain = 1.0005;       // 0.05% scale error
  params.noise_std = 2e-6;    // 2 micron RMS
  params.quantization = 1e-6; // 16-bit ADC over the range
  params.range = range_m;
  return Sensor("lvdt", params, seed);
}

Sensor MakeLoadCell(std::uint64_t seed, double range_n) {
  SensorParams params;
  params.gain = 0.999;
  params.bias = 0.5;          // newtons of zero offset
  params.noise_std = range_n * 2e-5;
  params.quantization = range_n / 65536.0;
  params.range = range_n;
  return Sensor("load_cell", params, seed);
}

Sensor MakeStrainGauge(std::uint64_t seed) {
  SensorParams params;
  params.gain = 1.002;
  params.noise_std = 2e-7;    // microstrain-level noise
  params.quantization = 1e-7;
  return Sensor("strain_gauge", params, seed);
}

Sensor MakeAccelerometer(std::uint64_t seed, double range_ms2) {
  SensorParams params;
  params.gain = 1.001;
  params.bias = 0.01;
  params.noise_std = 0.005;
  params.quantization = range_ms2 / 32768.0;
  params.range = range_ms2;
  return Sensor("accelerometer", params, seed);
}

}  // namespace nees::testbed
