// Sensor models for the emulated rigs and Mini-MOST: LVDT (position), load
// cell (force), strain gauge, accelerometer. Each applies gain error, bias,
// Gaussian noise, and ADC quantization — the imperfections that make the
// "measured" forces fed back into the PSD integration realistically dirty.
#pragma once

#include <string>

#include "util/rng.h"

namespace nees::testbed {

struct SensorParams {
  double gain = 1.0;            // multiplicative scale error
  double bias = 0.0;            // additive offset (engineering units)
  double noise_std = 0.0;       // Gaussian noise sigma
  double quantization = 0.0;    // LSB size; 0 disables
  double range = 0.0;           // saturation at +/- range; 0 disables
};

class Sensor {
 public:
  Sensor(std::string name, SensorParams params, std::uint64_t seed);

  /// One sample of the true value through the sensor model.
  double Measure(double true_value);

  const std::string& name() const { return name_; }
  std::uint64_t sample_count() const { return samples_; }

 private:
  std::string name_;
  SensorParams params_;
  util::Rng rng_;
  std::uint64_t samples_ = 0;
};

/// Factory presets matching the instrumentation the paper lists (§3.5:
/// "a strain gauge, LVDT for position, and a load cell for force").
Sensor MakeLvdt(std::uint64_t seed, double range_m = 0.3);
Sensor MakeLoadCell(std::uint64_t seed, double range_n = 5e5);
Sensor MakeStrainGauge(std::uint64_t seed);
Sensor MakeAccelerometer(std::uint64_t seed, double range_ms2 = 50.0);

}  // namespace nees::testbed
