#include "testbed/specimen.h"

#include <cmath>

#include "util/logging.h"

namespace nees::testbed {

PhysicalSpecimen::PhysicalSpecimen(
    Config config, std::unique_ptr<MotionSystem> motion,
    std::unique_ptr<structural::SubstructureModel> model)
    : config_(config),
      motion_(std::move(motion)),
      model_(std::move(model)),
      // Instruments are scaled to the rig: a tabletop load cell must not
      // carry a 500 kN range, or its noise floor swamps the real forces.
      lvdt_(MakeLvdt(config.sensor_seed * 3 + 1,
                     config.limits.max_displacement_m * 2.0)),
      load_cell_(MakeLoadCell(config.sensor_seed * 3 + 2,
                              config.limits.max_force_n * 1.25)),
      strain_gauge_(MakeStrainGauge(config.sensor_seed * 3 + 3)) {}

util::Result<Measurement> PhysicalSpecimen::ApplyDisplacement(
    double target_m) {
  if (interlock_tripped_) {
    return util::SafetyInterlock(config_.name + ": interlock tripped");
  }
  if (std::fabs(target_m) > config_.limits.max_displacement_m) {
    return util::SafetyInterlock(config_.name + ": target " +
                                 std::to_string(target_m) +
                                 " exceeds travel limit");
  }

  double elapsed_before = 0.0;
  if (auto* actuator = dynamic_cast<ServoHydraulicActuator*>(motion_.get())) {
    elapsed_before = actuator->elapsed_motion_seconds();
  }
  auto position = motion_->MoveTo(target_m, config_.move_budget_s);
  if (!position.ok()) return position.status();
  if (auto* actuator = dynamic_cast<ServoHydraulicActuator*>(motion_.get())) {
    last_move_seconds_ = actuator->elapsed_motion_seconds() - elapsed_before;
  }

  auto force = model_->Restore({*position});
  if (!force.ok()) return force.status();
  last_true_force_ = (*force)[0];

  if (std::fabs(last_true_force_) > config_.limits.max_force_n) {
    interlock_tripped_ = true;
    NEES_LOG_WARN("testbed." + config_.name)
        << "force limit exceeded (" << last_true_force_
        << " N); interlock tripped";
    return util::SafetyInterlock(config_.name + ": force limit exceeded");
  }
  return ReadSensors();
}

util::Result<Measurement> PhysicalSpecimen::ReadSensors() {
  Measurement measurement;
  measurement.displacement_m = lvdt_.Measure(motion_->position());
  measurement.force_n = load_cell_.Measure(last_true_force_);
  measurement.strain =
      strain_gauge_.Measure(last_true_force_ * config_.strain_per_newton);
  measurement.motion_seconds = last_move_seconds_;
  return measurement;
}

void PhysicalSpecimen::EStop() {
  interlock_tripped_ = true;
  NEES_LOG_WARN("testbed." + config_.name) << "emergency stop";
}

void PhysicalSpecimen::ResetInterlock() {
  interlock_tripped_ = false;
  NEES_LOG_INFO("testbed." + config_.name) << "interlock reset";
}

std::unique_ptr<PhysicalSpecimen> MakeUiucColumnRig(double stiffness_n_per_m,
                                                    std::uint64_t seed) {
  // UIUC: cantilever column, pin connection to the simulated beam (§3).
  PhysicalSpecimen::Config config;
  config.name = "uiuc-left-column";
  config.limits.max_displacement_m = 0.15;
  config.limits.max_force_n = 5e5;
  config.sensor_seed = seed;

  ServoHydraulicActuator::Params actuator;
  auto motion = std::make_unique<ServoHydraulicActuator>(actuator);

  structural::BoucWenSubstructure::Params model;
  model.elastic_stiffness = stiffness_n_per_m;
  model.yield_displacement = 0.05;  // stays mostly elastic in MOST drifts
  model.alpha = 0.1;
  return std::make_unique<PhysicalSpecimen>(
      config, std::move(motion),
      std::make_unique<structural::BoucWenSubstructure>(model));
}

std::unique_ptr<PhysicalSpecimen> MakeCuColumnRig(double stiffness_n_per_m,
                                                  std::uint64_t seed) {
  // CU: rigidly connected column, all rotations suppressed (§3).
  PhysicalSpecimen::Config config;
  config.name = "cu-right-column";
  config.limits.max_displacement_m = 0.15;
  config.limits.max_force_n = 5e5;
  config.sensor_seed = seed;

  ServoHydraulicActuator::Params actuator;
  actuator.max_velocity_ms = 0.04;  // the CU rig was slightly slower
  auto motion = std::make_unique<ServoHydraulicActuator>(actuator);

  structural::BoucWenSubstructure::Params model;
  model.elastic_stiffness = stiffness_n_per_m;
  model.yield_displacement = 0.05;
  model.alpha = 0.1;
  return std::make_unique<PhysicalSpecimen>(
      config, std::move(motion),
      std::make_unique<structural::BoucWenSubstructure>(model));
}

std::unique_ptr<PhysicalSpecimen> MakeMiniMostRig(double stiffness_n_per_m,
                                                  std::uint64_t seed) {
  // Mini-MOST: 1m x 10cm beam, stepper motor, scaled-back sensors (§3.5).
  PhysicalSpecimen::Config config;
  config.name = "mini-most-beam";
  config.limits.max_displacement_m = 0.03;
  config.limits.max_force_n = 500.0;
  config.sensor_seed = seed;
  config.strain_per_newton = 1e-6;

  StepperMotor::Params stepper;
  auto motion = std::make_unique<StepperMotor>(stepper);

  structural::BoucWenSubstructure::Params model;
  model.elastic_stiffness = stiffness_n_per_m;
  model.yield_displacement = 0.02;
  model.alpha = 0.15;
  return std::make_unique<PhysicalSpecimen>(
      config, std::move(motion),
      std::make_unique<structural::BoucWenSubstructure>(model));
}

}  // namespace nees::testbed
