#include "testbed/motion.h"

#include <algorithm>
#include <cmath>

namespace nees::testbed {

ServoHydraulicActuator::ServoHydraulicActuator(Params params)
    : params_(params) {}

void ServoHydraulicActuator::Reset() {
  position_ = 0.0;
  velocity_ = 0.0;
  integral_ = 0.0;
  previous_error_ = 0.0;
  elapsed_s_ = 0.0;
}

util::Result<double> ServoHydraulicActuator::MoveTo(double target_m,
                                                    double max_seconds) {
  if (std::fabs(target_m) > params_.stroke_m) {
    return util::OutOfRange("actuator target exceeds stroke");
  }
  const double dt = params_.dt_s;
  double settled_for = 0.0;
  double time = 0.0;
  while (time < max_seconds) {
    const double error = target_m - position_;
    const double derivative = (error - previous_error_) / dt;
    previous_error_ = error;

    double velocity_command =
        params_.kp * error + params_.ki * integral_ + params_.kd * derivative;
    // Conditional integration (anti-windup): only accumulate while the
    // valve command is unsaturated, otherwise long moves overshoot badly.
    if (std::fabs(velocity_command) < params_.max_velocity_ms) {
      integral_ += error * dt;
    }
    velocity_command = std::clamp(velocity_command, -params_.max_velocity_ms,
                                  params_.max_velocity_ms);

    // Ram velocity lags the valve command first-order.
    const double lag = dt / params_.velocity_time_constant_s;
    velocity_ += (velocity_command - velocity_) * std::min(lag, 1.0);
    position_ += velocity_ * dt;
    position_ = std::clamp(position_, -params_.stroke_m, params_.stroke_m);

    time += dt;
    if (std::fabs(error) < params_.settle_tolerance_m) {
      settled_for += dt;
      if (settled_for >= params_.settle_window_s) break;
    } else {
      settled_for = 0.0;
    }
  }
  elapsed_s_ += time;
  if (std::fabs(target_m - position_) > 10.0 * params_.settle_tolerance_m) {
    return util::TimeoutError("actuator failed to settle");
  }
  return position_;
}

StepperMotor::StepperMotor(Params params) : params_(params) {}

double StepperMotor::position() const {
  return static_cast<double>(step_count_) * params_.step_size_m;
}

void StepperMotor::Reset() {
  step_count_ = 0;
  total_steps_ = 0;
}

util::Result<double> StepperMotor::MoveTo(double target_m,
                                          double max_seconds) {
  if (std::fabs(target_m) > params_.stroke_m) {
    return util::OutOfRange("stepper target exceeds stroke");
  }
  const auto target_steps = static_cast<std::int64_t>(
      std::llround(target_m / params_.step_size_m));
  const std::int64_t needed = std::llabs(target_steps - step_count_);
  const auto budget = static_cast<std::int64_t>(
      max_seconds * params_.steps_per_second);
  const std::int64_t taken = std::min(needed, budget);
  step_count_ += (target_steps > step_count_) ? taken : -taken;
  total_steps_ += taken;
  if (taken < needed) {
    return util::TimeoutError("stepper ran out of time budget");
  }
  return position();
}

}  // namespace nees::testbed
