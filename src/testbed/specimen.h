// An instrumented physical specimen under test: motion system + structural
// model + sensors + safety interlocks. This is the substitution for the
// UIUC/CU rigs (DESIGN.md): the NTCP plugin commands a displacement, the
// rig settles, and the *measured* (noisy) displacement and restoring force
// go back to the coordinator.
//
// Safety (paper §4): travel and force limits trip a latched interlock;
// while tripped every command fails with kSafetyInterlock until a human
// (test code) resets the rig — modeling "engineers nearby ... prepared to
// turn it off".
#pragma once

#include <memory>
#include <string>

#include "structural/substructure.h"
#include "testbed/motion.h"
#include "testbed/sensors.h"
#include "util/result.h"

namespace nees::testbed {

struct SafetyLimits {
  double max_displacement_m = 0.2;
  double max_force_n = 4e5;
};

struct Measurement {
  double displacement_m = 0.0;  // measured (LVDT)
  double force_n = 0.0;         // measured (load cell)
  double strain = 0.0;          // measured (strain gauge)
  double motion_seconds = 0.0;  // simulated time of the most recent move
};

class PhysicalSpecimen {
 public:
  struct Config {
    std::string name = "specimen";
    SafetyLimits limits;
    /// Max simulated motion time per command (PSD steps are quasi-static).
    double move_budget_s = 5.0;
    /// Gauge factor: strain reported as force / (E * A) with this scale.
    double strain_per_newton = 1e-9;
    std::uint64_t sensor_seed = 1;
  };

  PhysicalSpecimen(Config config, std::unique_ptr<MotionSystem> motion,
                   std::unique_ptr<structural::SubstructureModel> model);

  /// Commands the rig to the target displacement and returns measurements.
  /// Fails (without moving) if the target violates the travel limit; trips
  /// the interlock if the resulting force exceeds the force limit.
  util::Result<Measurement> ApplyDisplacement(double target_m);

  /// Reads sensors at the current position without commanding motion.
  util::Result<Measurement> ReadSensors();

  /// Emergency stop: latches the interlock immediately.
  void EStop();
  bool interlock_tripped() const { return interlock_tripped_; }
  /// Clears the interlock and rehomes the rig (specimen state preserved:
  /// you cannot "undo" yielding — paper §2.1).
  void ResetInterlock();

  const std::string& name() const { return config_.name; }
  MotionSystem& motion() { return *motion_; }
  structural::SubstructureModel& model() { return *model_; }

 private:
  Config config_;
  std::unique_ptr<MotionSystem> motion_;
  std::unique_ptr<structural::SubstructureModel> model_;
  Sensor lvdt_;
  Sensor load_cell_;
  Sensor strain_gauge_;
  bool interlock_tripped_ = false;
  double last_true_force_ = 0.0;
  double last_move_seconds_ = 0.0;
};

/// Convenience builders for the three MOST-style rigs.
std::unique_ptr<PhysicalSpecimen> MakeUiucColumnRig(double stiffness_n_per_m,
                                                    std::uint64_t seed);
std::unique_ptr<PhysicalSpecimen> MakeCuColumnRig(double stiffness_n_per_m,
                                                  std::uint64_t seed);
std::unique_ptr<PhysicalSpecimen> MakeMiniMostRig(double stiffness_n_per_m,
                                                  std::uint64_t seed);

}  // namespace nees::testbed
