#include "testbed/shorewestern.h"

#include "util/strings.h"

namespace nees::testbed {

ShoreWesternEmulator::ShoreWesternEmulator(
    net::Network* network, std::string endpoint,
    std::unique_ptr<PhysicalSpecimen> specimen)
    : server_(network, std::move(endpoint)), specimen_(std::move(specimen)) {}

util::Status ShoreWesternEmulator::Start() {
  NEES_RETURN_IF_ERROR(server_.Start());
  server_.RegisterMethod(
      "sw.line",
      [this](const net::CallContext&,
             const net::Bytes& body) -> util::Result<net::Bytes> {
        const std::string line(body.begin(), body.end());
        const std::string reply = HandleLine(line);
        return net::Bytes(reply.begin(), reply.end());
      });
  return util::OkStatus();
}

void ShoreWesternEmulator::Stop() { server_.Stop(); }

std::string ShoreWesternEmulator::HandleLine(const std::string& line) {
  util::MutexLock lock(mu_);
  const auto parts = util::Split(std::string(util::Trim(line)), ' ');
  if (parts.empty() || parts[0].empty()) return "ERR empty command";
  const std::string& command = parts[0];

  if (command == "HELLO") return "OK ShoreWestern SC6000 sim";

  if (command == "MOVE") {
    if (parts.size() != 2) return "ERR MOVE requires one argument";
    double target = 0.0;
    if (!util::ParseDouble(parts[1], &target)) return "ERR bad number";
    auto measurement = specimen_->ApplyDisplacement(target);
    if (!measurement.ok()) {
      return "ERR " + std::string(util::ErrorCodeName(
                          measurement.status().code()));
    }
    return util::Format("DONE %.9g %.9g %.9g", measurement->displacement_m,
                        measurement->force_n, measurement->motion_seconds);
  }

  if (command == "READ") {
    auto measurement = specimen_->ReadSensors();
    if (!measurement.ok()) return "ERR read failed";
    return util::Format("DATA %.9g %.9g %.9g", measurement->displacement_m,
                        measurement->force_n, measurement->strain);
  }

  if (command == "LIMIT") {
    // Limits live in the specimen config; accepted for protocol fidelity.
    if (parts.size() != 3) return "ERR LIMIT requires two arguments";
    double max_disp = 0.0, max_force = 0.0;
    if (!util::ParseDouble(parts[1], &max_disp) ||
        !util::ParseDouble(parts[2], &max_force)) {
      return "ERR bad number";
    }
    return "OK";
  }

  if (command == "ESTOP") {
    specimen_->EStop();
    return "OK";
  }

  if (command == "RESET") {
    specimen_->ResetInterlock();
    return "OK";
  }

  return "ERR unknown command " + command;
}

ShoreWesternClient::ShoreWesternClient(net::RpcClient* rpc,
                                       std::string controller_endpoint)
    : rpc_(rpc), controller_(std::move(controller_endpoint)) {}

util::Result<std::string> ShoreWesternClient::SendLine(
    const std::string& line, std::int64_t timeout_micros) {
  NEES_ASSIGN_OR_RETURN(
      net::Bytes reply,
      rpc_->Call(controller_, "sw.line",
                 net::Bytes(line.begin(), line.end()), timeout_micros));
  return std::string(reply.begin(), reply.end());
}

util::Result<MoveResult> ShoreWesternClient::Move(double target_m) {
  NEES_ASSIGN_OR_RETURN(std::string reply,
                        SendLine(util::Format("MOVE %.12g", target_m)));
  const auto parts = util::Split(reply, ' ');
  if ((parts.size() == 3 || parts.size() == 4) && parts[0] == "DONE") {
    MoveResult move;
    bool parsed = util::ParseDouble(parts[1], &move.position_m) &&
                  util::ParseDouble(parts[2], &move.force_n);
    if (parsed && parts.size() == 4) {
      parsed = util::ParseDouble(parts[3], &move.motion_seconds);
    }
    if (parsed) return move;
  }
  if (!parts.empty() && parts[0] == "ERR" && parts.size() > 1 &&
      parts[1] == "SafetyInterlock") {
    return util::SafetyInterlock("controller: " + reply);
  }
  return util::Internal("controller protocol error: " + reply);
}

util::Result<Measurement> ShoreWesternClient::Read() {
  NEES_ASSIGN_OR_RETURN(std::string reply, SendLine("READ"));
  const auto parts = util::Split(reply, ' ');
  if (parts.size() == 4 && parts[0] == "DATA") {
    Measurement measurement;
    if (util::ParseDouble(parts[1], &measurement.displacement_m) &&
        util::ParseDouble(parts[2], &measurement.force_n) &&
        util::ParseDouble(parts[3], &measurement.strain)) {
      return measurement;
    }
  }
  return util::Internal("controller protocol error: " + reply);
}

util::Status ShoreWesternClient::SetLimits(double max_disp_m,
                                           double max_force_n) {
  NEES_ASSIGN_OR_RETURN(
      std::string reply,
      SendLine(util::Format("LIMIT %.9g %.9g", max_disp_m, max_force_n)));
  return reply == "OK" ? util::OkStatus()
                       : util::Internal("LIMIT failed: " + reply);
}

util::Status ShoreWesternClient::EStop() {
  util::Result<std::string> reply = SendLine("ESTOP");
  NEES_RETURN_IF_ERROR(reply.status());
  return *reply == "OK" ? util::OkStatus() : util::Internal(*reply);
}

util::Status ShoreWesternClient::Reset() {
  util::Result<std::string> reply = SendLine("RESET");
  NEES_RETURN_IF_ERROR(reply.status());
  return *reply == "OK" ? util::OkStatus() : util::Internal(*reply);
}

}  // namespace nees::testbed
