// Shore-Western control system emulator. At UIUC (Fig. 9) the NTCP plugin
// spoke "a simple TCP/IP protocol" to the vendor controller that drove the
// servo-hydraulics. We reproduce that hop: the emulator is a line-protocol
// server on the simulated network, and the ShoreWesternPlugin (plugins
// module) is its only intended client.
//
// Protocol (one text line per request, one per reply):
//   HELLO                      -> "OK ShoreWestern SC6000 sim"
//   MOVE <pos_m>               -> "DONE <pos> <force> <motion_s>"
//                                 | "ERR <reason>"
//   READ                       -> "DATA <pos> <force> <strain>"
//   LIMIT <max_disp> <max_force> -> "OK"
//   ESTOP                      -> "OK"
//   RESET                      -> "OK"
#pragma once

#include <memory>
#include <string>

#include "util/mutex.h"

#include "net/rpc.h"
#include "testbed/specimen.h"

namespace nees::testbed {

class ShoreWesternEmulator {
 public:
  ShoreWesternEmulator(net::Network* network, std::string endpoint,
                       std::unique_ptr<PhysicalSpecimen> specimen);

  util::Status Start();
  void Stop();

  const std::string& endpoint() const { return server_.endpoint(); }
  PhysicalSpecimen& specimen() { return *specimen_; }

  /// Processes one protocol line (exposed for protocol-level tests).
  std::string HandleLine(const std::string& line);

 private:
  net::RpcServer server_;
  util::Mutex mu_{"testbed.ShoreWestern"};
  std::unique_ptr<PhysicalSpecimen> specimen_;
};

/// Parsed "DONE" reply from a MOVE command.
struct MoveResult {
  double position_m = 0.0;
  double force_n = 0.0;
  /// Simulated actuator settle time; 0 when talking to an older controller
  /// that omits the third DONE field.
  double motion_seconds = 0.0;
};

/// Thin client for the line protocol, used by the UIUC plugin.
class ShoreWesternClient {
 public:
  ShoreWesternClient(net::RpcClient* rpc, std::string controller_endpoint);

  util::Result<std::string> SendLine(const std::string& line,
                                     std::int64_t timeout_micros = 2'000'000);

  /// MOVE + parse.
  util::Result<MoveResult> Move(double target_m);
  util::Result<Measurement> Read();
  util::Status SetLimits(double max_disp_m, double max_force_n);
  util::Status EStop();
  util::Status Reset();

 private:
  net::RpcClient* rpc_;
  std::string controller_;
};

}  // namespace nees::testbed
