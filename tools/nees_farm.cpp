// nees_farm: run a multi-tenant experiment farm on one shared grid host.
//
//   nees_farm [--tenants N] [--mix MIX] [--workers W] [--steps S]
//             [--swarm P] [--swarm-shards K] [--lease-ms L] [-v]
//
//   --tenants N       concurrent experiment sessions to admit (default 20)
//   --mix MIX         template mix: mini | most | centrifuge | mixed
//                     (default mini; mixed = 8:1:1 mini/most/centrifuge)
//   --workers W       worker threads driving the sessions (default 8)
//   --steps S         PSD steps per session (piles for centrifuge; 0 = farm
//                     defaults)
//   --swarm P         after the farm wave, fan P scripted CHEF participants
//                     over the shared NSDS stream (default 0 = skip)
//   --swarm-shards K  swarm shard threads (default 8)
//   --lease-ms L      registry lease per tenant registration (default 0 =
//                     no expiry)
//   -v                per-session results
//
// All tenants share one network, one OGSI container, one registry, one
// NSDS server, and one CHEF server; every tenant's endpoints are
// namespaced ("t0042/ntcp.uiuc"). The exit code is 0 when every admitted
// session completes (and the swarm, if any, reports no failures).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "farm/farm.h"
#include "net/endpoint.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "util/clock.h"

using namespace nees;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--tenants N] [--mix mini|most|centrifuge|mixed]\n"
               "          [--workers W] [--steps S] [--swarm P]\n"
               "          [--swarm-shards K] [--lease-ms L] [-v]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t tenants = 20;
  std::string mix = "mini";
  std::size_t workers = 8;
  std::size_t steps = 0;
  int swarm = 0;
  std::size_t swarm_shards = 8;
  std::int64_t lease_ms = 0;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--tenants") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      tenants = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(arg, "--mix") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      mix = v;
    } else if (std::strcmp(arg, "--workers") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      workers = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(arg, "--steps") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      steps = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(arg, "--swarm") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      swarm = std::atoi(v);
    } else if (std::strcmp(arg, "--swarm-shards") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      swarm_shards = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(arg, "--lease-ms") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      lease_ms = std::strtoll(v, nullptr, 10);
    } else if (std::strcmp(arg, "-v") == 0) {
      verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (mix != "mini" && mix != "most" && mix != "centrifuge" &&
      mix != "mixed") {
    return Usage(argv[0]);
  }

  net::Network network(net::DeliveryMode::kImmediate);
  util::Clock* clock = network.clock();

  farm::FarmOptions options;
  options.workers = workers;
  options.registry_lease_micros = lease_ms * 1000;
  farm::ExperimentFarm farm(&network, clock, options);
  if (util::Status started = farm.Start(); !started.ok()) {
    std::fprintf(stderr, "farm start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  for (std::size_t i = 0; i < tenants; ++i) {
    farm::SessionSpec spec;
    spec.steps = steps;
    if (mix == "mini") {
      spec.kind = farm::SessionKind::kMiniMost;
    } else if (mix == "most") {
      spec.kind = farm::SessionKind::kMost;
    } else if (mix == "centrifuge") {
      spec.kind = farm::SessionKind::kCentrifuge;
    } else {
      spec.kind = i % 10 == 8   ? farm::SessionKind::kMost
                  : i % 10 == 9 ? farm::SessionKind::kCentrifuge
                                : farm::SessionKind::kMiniMost;
    }
    (void)farm.Admit(spec);
  }

  const util::Result<farm::FarmReport> run = farm.RunAll();
  if (!run.ok()) {
    std::fprintf(stderr, "farm run failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const farm::FarmReport& report = *run;
  std::printf(
      "farm: %zu admitted, %zu completed, %zu failed in %.2fs "
      "(%.1f experiments/s)\n",
      report.admitted, report.completed, report.failed, report.wall_seconds,
      report.experiments_per_sec);
  std::printf(
      "fabric: %zu services / %zu registrations at peak, %zu / %zu after "
      "reap, %zu endpoint names interned\n",
      report.peak_services, report.peak_registrations,
      report.services_after_reap, report.registrations_after_reap,
      report.endpoints_interned);
  if (verbose) {
    for (const farm::SessionResult& session : report.sessions) {
      std::printf("  %s %-10s %s steps=%zu digest=%016llx %s\n",
                  session.tenant.c_str(),
                  std::string(farm::SessionKindName(session.kind)).c_str(),
                  session.ok ? "ok " : "FAIL", session.steps_completed,
                  static_cast<unsigned long long>(session.history_digest),
                  session.error.c_str());
    }
  }

  obs::MetricsRegistry metrics;
  net::EndpointTable::Instance().PublishGauges(metrics);

  bool ok = report.failed == 0;
  if (swarm > 0) {
    farm::SwarmOptions swarm_options;
    swarm_options.participants = swarm;
    swarm_options.shards = swarm_shards;
    const chef::SwarmReport swarm_report = farm::RunScaledSwarm(
        &network, farm::ExperimentFarm::kChef, swarm_options);
    std::printf("swarm: %d participants, %d chat posts, %d viewer reads, "
                "%d failures\n",
                swarm_report.participants, swarm_report.chat_posts,
                swarm_report.viewer_reads, swarm_report.failures);
    ok = ok && swarm_report.failures == 0;
  }
  return ok ? 0 : 1;
}
