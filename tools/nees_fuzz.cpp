// nees_fuzz: deterministic simulation fuzzer for the MOST stack.
//
//   nees_fuzz --seed N [--fault-mask HEX] [-v]     replay one seed
//   nees_fuzz --smoke [--seeds N] [--start S] [-v] fixed seed block (CI)
//   nees_fuzz --sweep N [--start S] [-v]           open-ended sweep
//
// Each seed expands (via most::GenerateScenario) into a random MOST-shaped
// experiment — 3–32 sites, per-link latency/jitter/drop, outage windows,
// forced drops, lost mplugin.wake notifications, whole-site crash/restarts
// recovered through the write-ahead log (docs/RECOVERY.md) — run twice on a
// DeliveryMode::kVirtual network and checked against the oracle stack
// (completion, nees-lint protocol rules, exactly-once-per-site-per-step,
// same-seed byte determinism; see src/most/fuzz.h).
//
// On failure the fault schedule is greedily shrunk to a minimal repro and
// the exact replay command is printed. Exit codes: 0 all seeds clean,
// 1 oracle failure, 2 bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "most/fuzz.h"
#include "util/clock.h"

using namespace nees;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --seed N [--fault-mask HEX] [-v]\n"
      "       %s --smoke [--seeds N] [--start S] [-v]\n"
      "       %s --sweep N [--start S] [-v]\n"
      "  --seed N         run (and shrink on failure) a single seed\n"
      "  --fault-mask HEX enable only the fault-schedule bits set in HEX\n"
      "  --smoke          CI block: seeds S..S+N-1 (default 1..200)\n"
      "  --sweep N        same as --smoke with an explicit seed count\n"
      "  --start S        first seed of a block (default 1)\n"
      "  -v               print each scenario before running it\n",
      argv0, argv0, argv0);
  return 2;
}

void PrintFailure(const most::FuzzScenario& scenario,
                  const most::FuzzOutcome& outcome, std::uint64_t mask) {
  std::fprintf(stderr, "FAIL seed=%llu fault-mask=0x%llx\n",
               static_cast<unsigned long long>(scenario.seed),
               static_cast<unsigned long long>(mask));
  std::fprintf(stderr, "%s", scenario.Describe().c_str());
  for (const std::string& failure : outcome.failures) {
    std::fprintf(stderr, "  oracle: %s\n", failure.c_str());
  }
}

struct SweepTotals {
  std::uint64_t events = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t transactions_recovered = 0;
  std::uint64_t inflight_failed = 0;
};

/// Runs one seed through the checked oracle stack; on failure shrinks the
/// fault schedule and prints the minimal replay command. Returns true when
/// every oracle held.
bool RunSeed(std::uint64_t seed, std::uint64_t mask, bool verbose,
             SweepTotals* totals) {
  const most::FuzzScenario scenario = most::GenerateScenario(seed);
  if (verbose) std::printf("%s", scenario.Describe().c_str());

  const most::FuzzOutcome outcome = most::RunFuzzCaseChecked(scenario, mask);
  if (totals != nullptr) {
    totals->events += 2 * outcome.events_processed;
    totals->crashes += outcome.site_crashes;
    totals->recoveries += outcome.site_recoveries;
    totals->transactions_recovered += outcome.transactions_recovered;
    totals->inflight_failed += outcome.inflight_failed;
  }
  if (outcome.ok()) return true;

  PrintFailure(scenario, outcome, mask);
  const std::uint64_t shrunk = most::ShrinkFaultMask(scenario, mask);
  std::fprintf(stderr, "shrunk fault schedule (mask 0x%llx):\n",
               static_cast<unsigned long long>(shrunk));
  for (std::size_t i = 0; i < scenario.faults.size(); ++i) {
    if (i < 64 && (shrunk & (1ULL << i)) == 0) continue;
    std::fprintf(stderr, "  [bit %zu] %s\n", i,
                 scenario.faults[i].ToString().c_str());
  }
  std::fprintf(stderr, "replay: %s\n",
               most::ReplayCommand(seed, shrunk).c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool have_seed = false;
  bool block_mode = false;
  bool verbose = false;
  std::uint64_t seed = 0;
  std::uint64_t start = 1;
  std::uint64_t count = 200;
  std::uint64_t mask = most::kAllFaults;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      have_seed = true;
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--fault-mask") == 0 && i + 1 < argc) {
      mask = std::strtoull(argv[++i], nullptr, 16);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      block_mode = true;
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      block_mode = true;
      count = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      count = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--start") == 0 && i + 1 < argc) {
      start = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "-v") == 0) {
      verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (have_seed == block_mode) return Usage(argv[0]);  // exactly one mode

  util::Stopwatch watch;
  SweepTotals totals;

  if (have_seed) {
    const bool ok = RunSeed(seed, mask, verbose, &totals);
    std::printf(
        "seed %llu: %s (%llu virtual events, %llu crashes / %llu recoveries, "
        "%llu txns replayed, %llu crash-marked, %.2fs)\n",
        static_cast<unsigned long long>(seed), ok ? "OK" : "FAIL",
        static_cast<unsigned long long>(totals.events),
        static_cast<unsigned long long>(totals.crashes),
        static_cast<unsigned long long>(totals.recoveries),
        static_cast<unsigned long long>(totals.transactions_recovered),
        static_cast<unsigned long long>(totals.inflight_failed),
        watch.ElapsedSeconds());
    return ok ? 0 : 1;
  }

  std::uint64_t failures = 0;
  for (std::uint64_t s = start; s < start + count; ++s) {
    if (!RunSeed(s, most::kAllFaults, verbose, &totals)) ++failures;
  }
  const double elapsed = watch.ElapsedSeconds();
  const double per_hour = elapsed > 0.0 ? 3600.0 * count / elapsed : 0.0;
  std::printf(
      "fuzz: %llu seeds (%llu..%llu), %llu failures, %llu virtual events, "
      "%llu crashes / %llu recoveries, %llu txns replayed, %llu crash-marked, "
      "%.2fs (%.0f seeds/hour)\n",
      static_cast<unsigned long long>(count),
      static_cast<unsigned long long>(start),
      static_cast<unsigned long long>(start + count - 1),
      static_cast<unsigned long long>(failures),
      static_cast<unsigned long long>(totals.events),
      static_cast<unsigned long long>(totals.crashes),
      static_cast<unsigned long long>(totals.recoveries),
      static_cast<unsigned long long>(totals.transactions_recovered),
      static_cast<unsigned long long>(totals.inflight_failed), elapsed,
      per_hour);
  return failures == 0 ? 0 : 1;
}
