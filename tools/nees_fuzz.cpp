// nees_fuzz: deterministic simulation fuzzer for the MOST stack.
//
//   nees_fuzz --seed N [--fault-mask HEX] [--template T] [-v]
//   nees_fuzz --smoke [--seeds N] [--start S] [-v]        fixed seed block
//   nees_fuzz --sweep N [--start S] [-v]                  open-ended sweep
//   nees_fuzz --campaign [--seeds M] [--workers W]        sharded sweep
//   nees_fuzz --corpus FILE [-v]                          pinned regressions
//
// Each seed expands (via most::GenerateScenario) into a random experiment
// shaped by its template — mini, standard (3–32 sites), full-most (the
// paper's 1,500-step record), or centrifuge (the E12 UC Davis campaign) —
// with per-link latency/jitter/drop, outage windows, forced drops, lost
// mplugin.wake notifications, in-flight frame corruption, site clock skew,
// mid-run credential expiry, and whole-site crash/restarts recovered
// through the write-ahead log (docs/RECOVERY.md). Runs execute on a
// DeliveryMode::kVirtual network against the oracle stack (completion,
// nees-lint protocol rules, exactly-once-per-site-per-step, same-seed
// fingerprint determinism; see src/most/fuzz.h).
//
// The template is a pure function of the seed (unless --template forces
// one), and campaign shards are `seed % workers` — so any failure a worker
// finds replays bit-identically with the printed single-seed command.
// Sweeps check the determinism oracle on every 8th seed (also a pure
// function of the seed); --seed and --corpus always run it.
//
// On failure the fault schedule is greedily shrunk to a minimal repro and
// the exact replay command is printed. Exit codes: 0 all seeds clean,
// 1 oracle failure (or a crashed campaign worker), 2 bad usage.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "most/fuzz.h"
#include "util/clock.h"
#include "util/strings.h"

using namespace nees;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --seed N [--fault-mask HEX] [--template T] [-v]\n"
      "       %s --smoke [--seeds N] [--start S] [-v]\n"
      "       %s --sweep N [--start S] [-v]\n"
      "       %s --campaign [--seeds M] [--workers W] [--start S]\n"
      "       %s --corpus FILE [-v]\n"
      "  --seed N         run (and shrink on failure) a single seed\n"
      "  --fault-mask HEX enable only the fault-schedule bits set in HEX\n"
      "  --template T     mini|standard|full-most|centrifuge|auto\n"
      "                   (default auto: the campaign mix, a pure function\n"
      "                   of the seed)\n"
      "  --smoke          CI block: seeds S..S+N-1 (default 1..200)\n"
      "  --sweep N        same as --smoke with an explicit seed count\n"
      "  --campaign       fork W workers over seed shard `seed %% W`\n"
      "  --workers W      campaign process count (default: online CPUs)\n"
      "  --seeds N        seed count for --smoke/--campaign\n"
      "  --start S        first seed of a block (default 1)\n"
      "  --corpus FILE    replay pinned seeds (lines: seed mask template)\n"
      "  -v               print each scenario before running it\n",
      argv0, argv0, argv0, argv0, argv0);
  return 2;
}

void PrintFailure(const most::FuzzScenario& scenario,
                  const most::FuzzOutcome& outcome, std::uint64_t mask) {
  std::fprintf(stderr, "FAIL seed=%llu fault-mask=0x%llx\n",
               static_cast<unsigned long long>(scenario.seed),
               static_cast<unsigned long long>(mask));
  std::fprintf(stderr, "%s", scenario.Describe().c_str());
  for (const std::string& failure : outcome.failures) {
    std::fprintf(stderr, "  oracle: %s\n", failure.c_str());
  }
}

struct SweepTotals {
  std::uint64_t events = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t transactions_recovered = 0;
  std::uint64_t inflight_failed = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t auth_refreshes = 0;
  std::uint64_t checked_runs = 0;  // seeds that also ran the replica
  std::uint64_t by_template[4] = {0, 0, 0, 0};
  std::vector<std::string> replays;  // shrunk repro commands for failures
};

/// Runs one seed through the oracle stack; on failure shrinks the fault
/// schedule and prints (and records) the minimal replay command. Returns
/// true when every oracle held. `thorough` (single-seed / corpus modes)
/// always runs the determinism replica and keeps full artifacts; sweeps
/// sample the replica on every 8th seed and skip the JSONL export.
bool RunSeed(std::uint64_t seed, std::uint64_t mask,
             const most::FuzzTemplate* forced, bool verbose, bool thorough,
             SweepTotals* totals) {
  const most::FuzzTemplate shape =
      forced != nullptr ? *forced : most::TemplateForSeed(seed);
  const most::FuzzScenario scenario = most::GenerateScenario(seed, shape);
  if (verbose) std::printf("%s", scenario.Describe().c_str());

  most::FuzzRunOptions options;
  options.export_artifacts = thorough;
  const bool check = thorough || seed % 8 == 0;
  const most::FuzzOutcome outcome =
      check ? most::RunFuzzCaseChecked(scenario, mask, options)
            : most::RunFuzzCase(scenario, mask, options);
  if (totals != nullptr) {
    totals->events += (check ? 2 : 1) * outcome.events_processed;
    totals->crashes += outcome.site_crashes;
    totals->recoveries += outcome.site_recoveries;
    totals->transactions_recovered += outcome.transactions_recovered;
    totals->inflight_failed += outcome.inflight_failed;
    totals->frames_corrupted += outcome.frames_corrupted;
    totals->auth_refreshes += outcome.auth_refreshes;
    totals->checked_runs += check ? 1 : 0;
    totals->by_template[static_cast<int>(shape)] += 1;
  }
  if (outcome.ok()) return true;

  PrintFailure(scenario, outcome, mask);
  const std::uint64_t shrunk = most::ShrinkFaultMask(scenario, mask);
  std::fprintf(stderr, "shrunk fault schedule (mask 0x%llx):\n",
               static_cast<unsigned long long>(shrunk));
  for (std::size_t i = 0; i < scenario.faults.size(); ++i) {
    if (i < 64 && (shrunk & (1ULL << i)) == 0) continue;
    std::fprintf(stderr, "  [bit %zu] %s\n", i,
                 scenario.faults[i].ToString().c_str());
  }
  const std::string replay = most::ReplayCommand(seed, shape, shrunk);
  std::fprintf(stderr, "replay: %s\n", replay.c_str());
  if (totals != nullptr) totals->replays.push_back(replay);
  return false;
}

std::string TemplateMix(const SweepTotals& totals) {
  return util::Format(
      "%llu mini / %llu standard / %llu full-most / %llu centrifuge",
      static_cast<unsigned long long>(
          totals.by_template[static_cast<int>(most::FuzzTemplate::kMini)]),
      static_cast<unsigned long long>(
          totals.by_template[static_cast<int>(most::FuzzTemplate::kStandard)]),
      static_cast<unsigned long long>(
          totals.by_template[static_cast<int>(most::FuzzTemplate::kFullMost)]),
      static_cast<unsigned long long>(
          totals
              .by_template[static_cast<int>(most::FuzzTemplate::kCentrifuge)]));
}

// --- campaign worker protocol ------------------------------------------------
// Each forked worker runs its shard and writes exactly one JSON line to its
// pipe; the parent reads to EOF, merges, and reaps. Replay commands contain
// no characters needing JSON escapes, so both sides stay trivial.

std::string WorkerJson(int worker, std::uint64_t ran, std::uint64_t failures,
                       const SweepTotals& totals, double elapsed_s) {
  std::string replays;
  for (std::size_t i = 0; i < totals.replays.size(); ++i) {
    if (i > 0) replays += ",";
    replays += "\"" + totals.replays[i] + "\"";
  }
  return util::Format(
      "{\"worker\":%d,\"seeds\":%llu,\"failures\":%llu,\"checked\":%llu,"
      "\"events\":%llu,\"crashes\":%llu,\"recoveries\":%llu,"
      "\"txns_replayed\":%llu,\"crash_marked\":%llu,"
      "\"frames_corrupted\":%llu,\"auth_refreshes\":%llu,"
      "\"mini\":%llu,\"standard\":%llu,\"full_most\":%llu,"
      "\"centrifuge\":%llu,\"elapsed_s\":%.3f,\"replays\":[%s]}\n",
      worker, static_cast<unsigned long long>(ran),
      static_cast<unsigned long long>(failures),
      static_cast<unsigned long long>(totals.checked_runs),
      static_cast<unsigned long long>(totals.events),
      static_cast<unsigned long long>(totals.crashes),
      static_cast<unsigned long long>(totals.recoveries),
      static_cast<unsigned long long>(totals.transactions_recovered),
      static_cast<unsigned long long>(totals.inflight_failed),
      static_cast<unsigned long long>(totals.frames_corrupted),
      static_cast<unsigned long long>(totals.auth_refreshes),
      static_cast<unsigned long long>(
          totals.by_template[static_cast<int>(most::FuzzTemplate::kMini)]),
      static_cast<unsigned long long>(
          totals.by_template[static_cast<int>(most::FuzzTemplate::kStandard)]),
      static_cast<unsigned long long>(
          totals.by_template[static_cast<int>(most::FuzzTemplate::kFullMost)]),
      static_cast<unsigned long long>(
          totals
              .by_template[static_cast<int>(most::FuzzTemplate::kCentrifuge)]),
      elapsed_s, replays.c_str());
}

std::uint64_t JsonU64(const std::string& json, const char* key) {
  const std::string pattern = std::string("\"") + key + "\":";
  const std::size_t at = json.find(pattern);
  if (at == std::string::npos) return 0;
  return std::strtoull(json.c_str() + at + pattern.size(), nullptr, 10);
}

std::vector<std::string> JsonStrings(const std::string& json,
                                     const char* key) {
  std::vector<std::string> out;
  const std::string pattern = std::string("\"") + key + "\":[";
  std::size_t at = json.find(pattern);
  if (at == std::string::npos) return out;
  at += pattern.size();
  while (at < json.size() && json[at] != ']') {
    if (json[at] == '"') {
      const std::size_t end = json.find('"', at + 1);
      if (end == std::string::npos) break;
      out.push_back(json.substr(at + 1, end - at - 1));
      at = end + 1;
    } else {
      ++at;
    }
  }
  return out;
}

/// The sharded multi-process sweep driver. Workers are forked (no exec:
/// the child keeps running this binary's code), each owns the seeds with
/// `seed % workers == w`, and the parent aggregates their JSON summaries.
/// A worker that dies on a signal (ASan abort, crash) fails the campaign
/// even if every seed it reported was clean.
int RunCampaign(std::uint64_t start, std::uint64_t count, int workers,
                std::uint64_t mask, const most::FuzzTemplate* forced,
                bool verbose) {
  if (workers < 1) workers = 1;
  if (static_cast<std::uint64_t>(workers) > count && count > 0) {
    workers = static_cast<int>(count);
  }

  const util::Stopwatch watch;
  std::fflush(nullptr);  // don't let forks duplicate buffered output

  std::vector<pid_t> pids;
  std::vector<int> read_fds;
  for (int w = 0; w < workers; ++w) {
    int fds[2];
    if (pipe(fds) != 0) {
      std::perror("nees_fuzz: pipe");
      return 1;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("nees_fuzz: fork");
      return 1;
    }
    if (pid == 0) {
      // --- worker ----------------------------------------------------------
      close(fds[0]);
      for (const int fd : read_fds) close(fd);
      SweepTotals totals;
      std::uint64_t ran = 0;
      std::uint64_t failures = 0;
      const util::Stopwatch worker_watch;
      for (std::uint64_t s = start; s < start + count; ++s) {
        if (s % static_cast<std::uint64_t>(workers) !=
            static_cast<std::uint64_t>(w)) {
          continue;
        }
        ++ran;
        if (!RunSeed(s, mask, forced, verbose, /*thorough=*/false, &totals)) {
          ++failures;
        }
      }
      const std::string json =
          WorkerJson(w, ran, failures, totals, worker_watch.ElapsedSeconds());
      std::size_t written = 0;
      while (written < json.size()) {
        const ssize_t n =
            write(fds[1], json.data() + written, json.size() - written);
        if (n <= 0) break;
        written += static_cast<std::size_t>(n);
      }
      close(fds[1]);
      std::fflush(nullptr);
      _exit(failures == 0 ? 0 : 1);
    }
    close(fds[1]);
    pids.push_back(pid);
    read_fds.push_back(fds[0]);
  }

  // --- parent: drain every pipe, then reap -----------------------------------
  SweepTotals merged;
  std::uint64_t total_ran = 0;
  std::uint64_t total_failures = 0;
  std::uint64_t total_checked = 0;
  bool workers_healthy = true;
  for (int w = 0; w < workers; ++w) {
    std::string json;
    char buffer[4096];
    for (;;) {
      const ssize_t n = read(read_fds[w], buffer, sizeof(buffer));
      if (n <= 0) break;
      json.append(buffer, static_cast<std::size_t>(n));
    }
    close(read_fds[w]);
    if (json.empty()) {
      std::fprintf(stderr, "campaign: worker %d produced no summary\n", w);
      workers_healthy = false;
      continue;
    }
    total_ran += JsonU64(json, "seeds");
    total_failures += JsonU64(json, "failures");
    total_checked += JsonU64(json, "checked");
    merged.events += JsonU64(json, "events");
    merged.crashes += JsonU64(json, "crashes");
    merged.recoveries += JsonU64(json, "recoveries");
    merged.transactions_recovered += JsonU64(json, "txns_replayed");
    merged.inflight_failed += JsonU64(json, "crash_marked");
    merged.frames_corrupted += JsonU64(json, "frames_corrupted");
    merged.auth_refreshes += JsonU64(json, "auth_refreshes");
    merged.by_template[static_cast<int>(most::FuzzTemplate::kMini)] +=
        JsonU64(json, "mini");
    merged.by_template[static_cast<int>(most::FuzzTemplate::kStandard)] +=
        JsonU64(json, "standard");
    merged.by_template[static_cast<int>(most::FuzzTemplate::kFullMost)] +=
        JsonU64(json, "full_most");
    merged.by_template[static_cast<int>(most::FuzzTemplate::kCentrifuge)] +=
        JsonU64(json, "centrifuge");
    for (std::string& replay : JsonStrings(json, "replays")) {
      merged.replays.push_back(std::move(replay));
    }
  }
  for (int w = 0; w < workers; ++w) {
    int status = 0;
    if (waitpid(pids[w], &status, 0) < 0) {
      std::perror("nees_fuzz: waitpid");
      workers_healthy = false;
      continue;
    }
    if (WIFSIGNALED(status)) {
      std::fprintf(stderr, "campaign: worker %d killed by signal %d\n", w,
                   WTERMSIG(status));
      workers_healthy = false;
    } else if (WIFEXITED(status) && WEXITSTATUS(status) > 1) {
      std::fprintf(stderr, "campaign: worker %d exited with status %d\n", w,
                   WEXITSTATUS(status));
      workers_healthy = false;
    }
  }

  const double elapsed = watch.ElapsedSeconds();
  const double per_hour = elapsed > 0.0 ? 3600.0 * total_ran / elapsed : 0.0;
  std::printf(
      "campaign: %llu seeds (%llu..%llu) across %d workers, %llu failures, "
      "%llu determinism-checked, %llu virtual events\n"
      "  mix: %s\n"
      "  faults: %llu crashes / %llu recoveries, %llu txns replayed, "
      "%llu crash-marked, %llu frames corrupted, %llu auth refreshes\n"
      "  %.2fs wall (%.0f seeds/hour)\n",
      static_cast<unsigned long long>(total_ran),
      static_cast<unsigned long long>(start),
      static_cast<unsigned long long>(start + count - 1), workers,
      static_cast<unsigned long long>(total_failures),
      static_cast<unsigned long long>(total_checked),
      static_cast<unsigned long long>(merged.events),
      TemplateMix(merged).c_str(),
      static_cast<unsigned long long>(merged.crashes),
      static_cast<unsigned long long>(merged.recoveries),
      static_cast<unsigned long long>(merged.transactions_recovered),
      static_cast<unsigned long long>(merged.inflight_failed),
      static_cast<unsigned long long>(merged.frames_corrupted),
      static_cast<unsigned long long>(merged.auth_refreshes), elapsed,
      per_hour);
  for (const std::string& replay : merged.replays) {
    std::printf("  replay: %s\n", replay.c_str());
  }
  if (total_ran != count) {
    std::fprintf(stderr, "campaign: expected %llu seeds, workers ran %llu\n",
                 static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(total_ran));
    workers_healthy = false;
  }
  return (total_failures == 0 && workers_healthy) ? 0 : 1;
}

/// Replays the pinned regression corpus: one line per entry,
/// `seed fault-mask-hex template`, '#' starts a comment. Every entry runs
/// the full thorough oracle stack (these seeds each caught a real bug once;
/// they must never regress silently).
int RunCorpus(const char* path, bool verbose) {
  std::FILE* file = std::fopen(path, "r");
  if (file == nullptr) {
    std::fprintf(stderr, "nees_fuzz: cannot open corpus %s\n", path);
    return 2;
  }
  const util::Stopwatch watch;
  SweepTotals totals;
  std::uint64_t entries = 0;
  std::uint64_t failures = 0;
  char line[512];
  int line_number = 0;
  int rc = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ++line_number;
    if (char* comment = std::strchr(line, '#')) *comment = '\0';
    char seed_token[64] = {0};
    char mask_token[64] = {0};
    char template_token[64] = {0};
    const int fields =
        std::sscanf(line, "%63s %63s %63s", seed_token, mask_token,
                    template_token);
    if (fields <= 0) continue;  // blank / comment-only line
    most::FuzzTemplate shape = most::FuzzTemplate::kStandard;
    if (fields != 3 ||
        (std::strcmp(template_token, "auto") != 0 &&
         !most::ParseTemplateName(template_token, &shape))) {
      std::fprintf(stderr, "%s:%d: want `seed mask template`, got: %s\n", path,
                   line_number, line);
      rc = 2;
      continue;
    }
    const std::uint64_t seed = std::strtoull(seed_token, nullptr, 0);
    const std::uint64_t mask = std::strtoull(mask_token, nullptr, 16);
    if (std::strcmp(template_token, "auto") == 0) {
      shape = most::TemplateForSeed(seed);
    }
    ++entries;
    if (!RunSeed(seed, mask, &shape, verbose, /*thorough=*/true, &totals)) {
      ++failures;
    }
  }
  std::fclose(file);
  std::printf(
      "corpus: %llu pinned seeds, %llu failures, %llu virtual events, "
      "%llu crashes / %llu recoveries, %llu frames corrupted, "
      "%llu auth refreshes, %.2fs\n",
      static_cast<unsigned long long>(entries),
      static_cast<unsigned long long>(failures),
      static_cast<unsigned long long>(totals.events),
      static_cast<unsigned long long>(totals.crashes),
      static_cast<unsigned long long>(totals.recoveries),
      static_cast<unsigned long long>(totals.frames_corrupted),
      static_cast<unsigned long long>(totals.auth_refreshes),
      watch.ElapsedSeconds());
  if (rc != 0) return rc;
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool have_seed = false;
  bool block_mode = false;
  bool campaign_mode = false;
  bool verbose = false;
  bool have_template = false;
  const char* corpus_path = nullptr;
  most::FuzzTemplate forced_template = most::FuzzTemplate::kStandard;
  std::uint64_t seed = 0;
  std::uint64_t start = 1;
  std::uint64_t count = 0;
  bool have_count = false;
  int workers = static_cast<int>(sysconf(_SC_NPROCESSORS_ONLN));
  std::uint64_t mask = most::kAllFaults;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      have_seed = true;
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--fault-mask") == 0 && i + 1 < argc) {
      mask = std::strtoull(argv[++i], nullptr, 16);
    } else if (std::strcmp(argv[i], "--template") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      if (std::strcmp(name, "auto") == 0) {
        have_template = false;
      } else if (most::ParseTemplateName(name, &forced_template)) {
        have_template = true;
      } else {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      block_mode = true;
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      block_mode = true;
      have_count = true;
      count = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--campaign") == 0) {
      campaign_mode = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      have_count = true;
      count = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--start") == 0 && i + 1 < argc) {
      start = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--corpus") == 0 && i + 1 < argc) {
      corpus_path = argv[++i];
    } else if (std::strcmp(argv[i], "-v") == 0) {
      verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }
  const int modes = (have_seed ? 1 : 0) + (block_mode ? 1 : 0) +
                    (campaign_mode ? 1 : 0) + (corpus_path != nullptr ? 1 : 0);
  if (modes != 1) return Usage(argv[0]);
  const most::FuzzTemplate* forced = have_template ? &forced_template : nullptr;

  if (corpus_path != nullptr) return RunCorpus(corpus_path, verbose);

  if (campaign_mode) {
    if (!have_count) count = 2000;
    if (count == 0) return Usage(argv[0]);
    return RunCampaign(start, count, workers, mask, forced, verbose);
  }

  util::Stopwatch watch;
  SweepTotals totals;

  if (have_seed) {
    const bool ok = RunSeed(seed, mask, forced, verbose, /*thorough=*/true,
                            &totals);
    const most::FuzzTemplate shape =
        forced != nullptr ? *forced : most::TemplateForSeed(seed);
    std::printf(
        "seed %llu (%s): %s (%llu virtual events, %llu crashes / %llu "
        "recoveries, %llu txns replayed, %llu crash-marked, %llu frames "
        "corrupted, %llu auth refreshes, %.2fs)\n",
        static_cast<unsigned long long>(seed),
        std::string(most::TemplateName(shape)).c_str(), ok ? "OK" : "FAIL",
        static_cast<unsigned long long>(totals.events),
        static_cast<unsigned long long>(totals.crashes),
        static_cast<unsigned long long>(totals.recoveries),
        static_cast<unsigned long long>(totals.transactions_recovered),
        static_cast<unsigned long long>(totals.inflight_failed),
        static_cast<unsigned long long>(totals.frames_corrupted),
        static_cast<unsigned long long>(totals.auth_refreshes),
        watch.ElapsedSeconds());
    return ok ? 0 : 1;
  }

  if (!have_count) count = 200;
  std::uint64_t failures = 0;
  for (std::uint64_t s = start; s < start + count; ++s) {
    if (!RunSeed(s, mask, forced, verbose, /*thorough=*/false, &totals)) {
      ++failures;
    }
  }
  const double elapsed = watch.ElapsedSeconds();
  const double per_hour = elapsed > 0.0 ? 3600.0 * count / elapsed : 0.0;
  std::printf(
      "fuzz: %llu seeds (%llu..%llu), %llu failures, %llu virtual events, "
      "%llu crashes / %llu recoveries, %llu txns replayed, %llu crash-marked, "
      "%llu frames corrupted, %llu auth refreshes, mix %s, "
      "%.2fs (%.0f seeds/hour)\n",
      static_cast<unsigned long long>(count),
      static_cast<unsigned long long>(start),
      static_cast<unsigned long long>(start + count - 1),
      static_cast<unsigned long long>(failures),
      static_cast<unsigned long long>(totals.events),
      static_cast<unsigned long long>(totals.crashes),
      static_cast<unsigned long long>(totals.recoveries),
      static_cast<unsigned long long>(totals.transactions_recovered),
      static_cast<unsigned long long>(totals.inflight_failed),
      static_cast<unsigned long long>(totals.frames_corrupted),
      static_cast<unsigned long long>(totals.auth_refreshes),
      TemplateMix(totals).c_str(), elapsed, per_hour);
  return failures == 0 ? 0 : 1;
}
