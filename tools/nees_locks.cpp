// nees_locks: lock-order / lockdep report tool (docs/ANALYSIS.md).
//
//   nees_locks [--seeds N] [--steps N] [--graph] [--allowlist FILE]
//   nees_locks --inject-inversion | --inject-wait
//
// Drives a representative workload — a short threaded MOST experiment
// (immediate delivery, real backend threads) plus a block of virtual-time
// fuzz scenarios with crash/restart faults — with the lockdep registry
// recording every acquisition. Afterwards it prints the observed lock-order
// graph (--graph) and reports any violations: lock-order inversions,
// condvar waits while holding another lock, and blocking RPCs issued under
// a lock not covered by the allowlist.
//
// --inject-inversion / --inject-wait deliberately commit the corresponding
// violation on two private lock classes first, proving the detector (and
// the nonzero exit path) works end to end.
//
// Exit codes: 0 clean, 1 violations detected, 2 bad usage,
// 3 lockdep compiled out of this build (NEES_LOCKDEP off; use a
// non-Release build or -DNEES_LOCKDEP=ON).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "most/fuzz.h"
#include "most/most.h"
#include "net/network.h"
#include "util/clock.h"
#include "util/mutex.h"

using namespace nees;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seeds N] [--steps N] [--graph] [--allowlist FILE]\n"
      "       %s --inject-inversion | --inject-wait [--graph]\n"
      "  --seeds N           virtual-time fuzz scenarios to run (default 3)\n"
      "  --steps N           MOST experiment step count (default 60)\n"
      "  --graph             dump the observed lock-order graph to stdout\n"
      "  --allowlist FILE    load allowlist rules before running\n"
      "  --inject-inversion  commit a deliberate A->B / B->A inversion\n"
      "  --inject-wait       commit a deliberate wait-while-holding\n",
      argv0, argv0);
  return 2;
}

// Deliberate A->B then B->A on two private classes; lockdep must flag the
// second ordering as a potential deadlock.
void InjectInversion() {
  util::Mutex a("nees_locks.inject.A");
  util::Mutex b("nees_locks.inject.B");
  {
    util::MutexLock la(a);
    util::MutexLock lb(b);
  }
  {
    util::MutexLock lb(b);
    util::MutexLock la(a);  // inverted: reported here
  }
}

// Deliberate CondVar wait while a second lock is held.
void InjectWaitWhileHolding() {
  util::Mutex outer("nees_locks.inject.outer");
  util::Mutex inner("nees_locks.inject.inner");
  util::CondVar cv;
  util::MutexLock lo(outer);
  util::MutexLock li(inner);
  cv.WaitFor(inner, 1000);  // holds `outer` across the wait: reported
}

// Short end-to-end MOST run on an immediate-delivery network: coordinator,
// three NTCP servers, plugins, polling backends, DAQ pipeline, NSDS
// streaming — the full multithreaded lock population.
int RunMostWorkload(std::size_t steps) {
  net::Network network;
  most::MostOptions options;
  options.steps = steps;
  options.hybrid = true;
  most::MostExperiment experiment(&network, &util::SystemClock::Instance(),
                                  options);
  auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "locks");
  if (!report.ok()) {
    std::fprintf(stderr, "MOST workload failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("workload: MOST hybrid run, %zu/%zu steps completed\n",
              report->steps_completed, report->total_steps);
  return 0;
}

// Virtual-time fuzz block: crash/restart + WAL recovery lock paths.
int RunFuzzWorkload(std::uint64_t seeds) {
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const most::FuzzScenario scenario = most::GenerateScenario(seed);
    const most::FuzzOutcome outcome = most::RunFuzzCase(scenario);
    for (const std::string& failure : outcome.failures) {
      // Lockdep findings surface below via the registry; other oracle
      // failures are a workload bug worth knowing about.
      std::fprintf(stderr, "seed %llu oracle: %s\n",
                   static_cast<unsigned long long>(seed), failure.c_str());
    }
  }
  std::printf("workload: %llu fuzz scenario(s) replayed on virtual time\n",
              static_cast<unsigned long long>(seeds));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 3;
  std::size_t steps = 60;
  bool dump_graph = false;
  bool inject_inversion = false;
  bool inject_wait = false;
  const char* allowlist = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--graph") == 0) {
      dump_graph = true;
    } else if (std::strcmp(arg, "--inject-inversion") == 0) {
      inject_inversion = true;
    } else if (std::strcmp(arg, "--inject-wait") == 0) {
      inject_wait = true;
    } else if (std::strcmp(arg, "--seeds") == 0 && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--steps") == 0 && i + 1 < argc) {
      steps = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--allowlist") == 0 && i + 1 < argc) {
      allowlist = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  if (!util::lockdep::kEnabled) {
    std::fprintf(stderr,
                 "nees_locks: lockdep is compiled out of this build "
                 "(NEES_LOCKDEP off). Rebuild with -DNEES_LOCKDEP=ON or a "
                 "non-Release config.\n");
    return 3;
  }

  if (allowlist != nullptr &&
      !util::lockdep::LoadAllowlistFile(allowlist)) {
    std::fprintf(stderr, "nees_locks: cannot read allowlist file %s\n",
                 allowlist);
    return 2;
  }

  if (inject_inversion || inject_wait) {
    if (inject_inversion) InjectInversion();
    if (inject_wait) InjectWaitWhileHolding();
  } else {
    if (int rc = RunMostWorkload(steps); rc != 0) return rc;
    if (int rc = RunFuzzWorkload(seeds); rc != 0) return rc;
  }

  if (dump_graph) {
    std::printf("\n");
    util::lockdep::DumpGraph(std::cout);
  }

  const auto violations = util::lockdep::Violations();
  std::printf("\nlock classes: %zu   order edges: %zu   violations: %zu\n",
              util::lockdep::ClassCount(), util::lockdep::EdgeCount(),
              violations.size());
  for (const auto& violation : violations) {
    std::printf("VIOLATION: %s\n", violation.description.c_str());
  }
  return violations.empty() ? 0 : 1;
}
