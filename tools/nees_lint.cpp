// nees-lint: offline NTCP protocol conformance checker.
//
//   nees_lint [-q] [--max N] <trace.jsonl | -> [more traces...]
//
// Replays JSON-lines traces (most_experiment's third argument, bench_obs,
// or any Tracer::ExportJsonLines dump) against the Fig. 1 protocol rules —
// see src/check/checker.h for the rule set. Exit codes: 0 all traces
// clean, 1 violations found, 2 unreadable/malformed input.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/checker.h"

using namespace nees;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-q] [--max N] <trace.jsonl | -> [more...]\n"
               "  -q       only print the per-trace summary line\n"
               "  --max N  print at most N violations per trace\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  long max_violations = -1;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-q") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--max") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      max_violations = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return Usage(argv[0]);
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) return Usage(argv[0]);

  bool any_violation = false;
  for (const std::string& path : paths) {
    util::Result<check::LintReport> report = [&] {
      if (path != "-") return check::LintTraceFile(path);
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      return check::LintTraceText(buffer.str());
    }();
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   report.status().ToString().c_str());
      return 2;
    }
    const check::LintStats& stats = report->stats;
    std::printf("%s: %s — %zu spans, %zu protocol events, %zu transactions, "
                "%zu endpoints, %zu violation(s)\n",
                path.c_str(), report->ok() ? "OK" : "FAIL", stats.spans,
                stats.protocol_events, stats.transactions, stats.endpoints,
                report->violations.size());
    if (!report->ok()) {
      any_violation = true;
      if (!quiet) {
        long printed = 0;
        for (const check::Violation& violation : report->violations) {
          if (max_violations >= 0 && printed++ >= max_violations) {
            std::printf("  ... %zu more\n",
                        report->violations.size() -
                            static_cast<std::size_t>(max_violations));
            break;
          }
          std::printf("  %s\n", violation.ToString().c_str());
        }
      }
    }
  }
  return any_violation ? 1 : 0;
}
