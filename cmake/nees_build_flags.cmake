# Hardening knobs shared by every NEES target.
#
#   -DNEES_WERROR=ON                        warnings are errors
#   -DNEES_SANITIZE="address;undefined"     sanitizer list (also: thread)
#   -DNEES_LOCKDEP=AUTO|ON|OFF              runtime lock-order checking
#                                           (AUTO: on outside Release)
#   -DNEES_THREAD_SAFETY=ON                 Clang -Wthread-safety as errors
#
# Every module CMakeLists (and the test/bench/example helpers) calls
# nees_apply_build_flags(<target>), which also defines
# NEES_ENABLE_INVARIANTS outside Release so NEES_CHECK_INVARIANT() is live
# in the default RelWithDebInfo build, the sanitizer matrix, and all tests,
# but compiled out of production Release binaries.

option(NEES_WERROR "Treat compiler warnings as errors" OFF)
set(NEES_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers: address;undefined;thread")
set(NEES_LOCKDEP "AUTO" CACHE STRING
    "Lockdep-style lock-order checking: AUTO (on outside Release), ON, OFF")
option(NEES_THREAD_SAFETY
       "Enable Clang -Wthread-safety analysis (errors); requires Clang" OFF)

# NEES_LOCKDEP changes util::Mutex's layout, so it must be set identically
# for every translation unit in a build tree: a directory-level definition,
# not a per-target one.
if(NEES_LOCKDEP STREQUAL "AUTO")
  add_compile_definitions($<$<NOT:$<CONFIG:Release>>:NEES_LOCKDEP>)
elseif(NEES_LOCKDEP)
  add_compile_definitions(NEES_LOCKDEP)
endif()

if(NEES_THREAD_SAFETY)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
            "NEES_THREAD_SAFETY requires Clang (-Wthread-safety); "
            "configure with CXX=clang++ or drop the knob")
  endif()
  add_compile_options(-Wthread-safety -Werror=thread-safety)
endif()

set(NEES_SANITIZE_FLAGS "")
foreach(sanitizer IN LISTS NEES_SANITIZE)
  if(NOT sanitizer MATCHES "^(address|undefined|thread)$")
    message(FATAL_ERROR
            "NEES_SANITIZE: unknown sanitizer '${sanitizer}' "
            "(expected address, undefined, or thread)")
  endif()
  list(APPEND NEES_SANITIZE_FLAGS "-fsanitize=${sanitizer}")
endforeach()
if("address" IN_LIST NEES_SANITIZE AND "thread" IN_LIST NEES_SANITIZE)
  message(FATAL_ERROR "NEES_SANITIZE: address and thread are incompatible")
endif()
if("undefined" IN_LIST NEES_SANITIZE)
  # A UBSan hit must fail the run, not just print.
  list(APPEND NEES_SANITIZE_FLAGS "-fno-sanitize-recover=all")
endif()
if(NEES_SANITIZE_FLAGS)
  list(APPEND NEES_SANITIZE_FLAGS "-fno-omit-frame-pointer")
endif()

function(nees_apply_build_flags target)
  if(NEES_WERROR)
    target_compile_options(${target} PRIVATE -Werror)
  endif()
  if(NEES_SANITIZE_FLAGS)
    target_compile_options(${target} PRIVATE ${NEES_SANITIZE_FLAGS})
    target_link_options(${target} PRIVATE ${NEES_SANITIZE_FLAGS})
  endif()
  target_compile_definitions(${target} PRIVATE
      $<$<NOT:$<CONFIG:Release>>:NEES_ENABLE_INVARIANTS>)
endfunction()
