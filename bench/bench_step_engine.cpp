// E13 — §5: the completion-driven step engine. The paper identifies
// serialized NTCP round trips and fixed-interval backend polling as the
// barrier between pseudo-dynamic and near-real-time hybrid testing; E11b
// showed thread-per-site fan-out overlapping the WAN round trips, but at
// ~2 x sites threads per step that fix does not scale to many sites.
//
// This sweep measures steps/sec and per-phase latency for the
// {thread-per-site, async} engines over 3 -> 32 simulated sites, under
// both delivery modes:
//   * kImmediate  — no modeled latency; isolates pure engine overhead
//                   (thread creation vs completion multiplexing);
//   * kScheduled  — 1 ms one-way links; shows both engines collapsing a
//                   phase to ~1 RTT, with the async engine doing it at
//                   zero threads spawned.
//
// A final pair of runs measures the write-ahead-log tax (docs/RECOVERY.md):
// the same async/immediate workload with every NTCP server and the
// coordinator logging + syncing each durable transition, so the recovery
// guarantee has a price tag next to it.
//
// Emits BENCH_step_engine.json (machine-readable perf trajectory) and
// exits non-zero if the async engine spawns any thread, is slower than
// thread-per-site at 3 sites (beyond noise), or fails to win strictly at
// >= 16 sites in kScheduled mode.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/network.h"
#include "ntcp/server.h"
#include "plugins/simulation_plugin.h"
#include "psd/coordinator.h"
#include "structural/substructure.h"
#include "util/frame_pool.h"
#include "util/stats.h"
#include "util/strings.h"
#include "wal/wal.h"

using namespace nees;

namespace {

std::unique_ptr<plugins::SimulationPlugin> ElasticPlugin() {
  auto plugin = std::make_unique<plugins::SimulationPlugin>();
  structural::Matrix k(1, 1);
  k(0, 0) = 1e6;
  plugin->AddControlPoint(
      "cp", std::make_unique<structural::ElasticSubstructure>(k));
  return plugin;
}

struct RunResult {
  std::size_t sites = 0;
  std::string engine;
  std::string mode;
  double steps_per_sec = 0.0;
  double propose_phase_ms = 0.0;
  double execute_phase_ms = 0.0;
  std::uint64_t threads_spawned = 0;
  std::uint64_t wal_records = 0;
  /// Wire-frame buffers newly allocated per step (FramePool minted delta
  /// over the run / steps). Near zero once the pool is warm: the E13
  /// "zero per-step heap allocation" evidence.
  double frames_per_step = 0.0;
  bool wal = false;
  bool completed = false;
};

RunResult RunOnce(std::size_t site_count, psd::StepEngine engine,
                  net::DeliveryMode mode, int steps, bool with_wal = false) {
  RunResult out;
  out.sites = site_count;
  out.engine =
      engine == psd::StepEngine::kAsync ? "async" : "thread_per_site";
  out.mode = mode == net::DeliveryMode::kImmediate ? "immediate" : "scheduled";
  out.wal = with_wal;

  net::Network network(mode);
  if (mode == net::DeliveryMode::kScheduled) {
    net::LinkModel wan;
    wan.latency_micros = 1'000;  // 1 ms one-way, 2 ms RTT
    network.SetDefaultLink(wan);
  }

  std::vector<std::unique_ptr<ntcp::NtcpServer>> servers;
  psd::CoordinatorConfig config;
  config.run_id = out.engine + "-" + out.mode + "-" +
                  std::to_string(site_count);
  config.mass = structural::Matrix::Identity(1) * 5e4;
  config.damping = structural::Matrix::Identity(1) * 1e4;
  config.iota = {1.0};
  config.motion = structural::SinePulse(0.02, steps, 1.0, 1.0);
  config.step_engine = engine;
  if (with_wal) config.run_id = "wal-" + config.run_id;
  std::vector<std::unique_ptr<wal::MemoryStorage>> wal_storages;
  std::vector<std::unique_ptr<wal::Log>> wal_logs;
  auto attach_wal = [&](auto& target) -> bool {
    wal_storages.push_back(std::make_unique<wal::MemoryStorage>());
    wal_logs.push_back(std::make_unique<wal::Log>(wal_storages.back().get()));
    return target.AttachWal(wal_logs.back().get()).ok();
  };
  for (std::size_t i = 0; i < site_count; ++i) {
    const std::string endpoint =
        config.run_id + ".site" + std::to_string(i);
    auto server = std::make_unique<ntcp::NtcpServer>(&network, endpoint,
                                                     ElasticPlugin());
    if (!server->Start().ok()) return out;
    if (with_wal && !attach_wal(*server)) return out;
    servers.push_back(std::move(server));
    config.sites.push_back(
        {"S" + std::to_string(i), endpoint, "cp", {0}});
  }

  net::RpcClient rpc(&network, config.run_id + ".coordinator");
  psd::SimulationCoordinator coordinator(config, &rpc);
  if (with_wal && !attach_wal(coordinator)) return out;
  const util::FramePool::Stats frames_before = util::FramePool::Instance().stats();
  const psd::RunReport report = coordinator.Run();
  const util::FramePool::Stats frames_after = util::FramePool::Instance().stats();
  out.completed = report.completed;
  if (!report.completed || report.wall_seconds <= 0.0) return out;
  out.steps_per_sec = report.steps_completed / report.wall_seconds;
  if (report.steps_completed > 0) {
    out.frames_per_step =
        static_cast<double>(frames_after.minted - frames_before.minted) /
        static_cast<double>(report.steps_completed);
  }
  out.propose_phase_ms = report.propose_phase_micros.mean() / 1000.0;
  out.execute_phase_ms = report.execute_phase_micros.mean() / 1000.0;
  out.threads_spawned = report.threads_spawned;
  out.wal_records = report.wal_records;
  for (const auto& server : servers) {
    out.wal_records += server->stats().wal_records;
  }
  return out;
}

void AppendJson(std::string& json, const RunResult& r, bool last) {
  json += util::Format(
      "    {\"sites\": %zu, \"engine\": \"%s\", \"mode\": \"%s\", "
      "\"steps_per_sec\": %.1f, \"propose_phase_ms_mean\": %.3f, "
      "\"execute_phase_ms_mean\": %.3f, \"threads_spawned\": %llu, "
      "\"frames_per_step\": %.3f, "
      "\"wal\": %s, \"wal_records\": %llu, \"completed\": %s}%s\n",
      r.sites, r.engine.c_str(), r.mode.c_str(), r.steps_per_sec,
      r.propose_phase_ms, r.execute_phase_ms,
      static_cast<unsigned long long>(r.threads_spawned), r.frames_per_step,
      r.wal ? "true" : "false",
      static_cast<unsigned long long>(r.wal_records),
      r.completed ? "true" : "false", last ? "" : ",");
}

/// Steps per timed run. Immediate-mode async steps are ~150 us, so a long
/// run amortizes cold-start costs (frame pool, call pool, CPU ramp) that
/// would otherwise dominate a 120-step sample; thread-per-site pays real
/// thread creations per step and stays short.
int StepsFor(psd::StepEngine engine, net::DeliveryMode mode) {
  if (mode == net::DeliveryMode::kScheduled) return 25;
  return engine == psd::StepEngine::kAsync ? 1000 : 120;
}

/// --quick: regression gate. Re-measures the 32-site async immediate point
/// and fails (exit 1) if it lands > 20% below the committed baseline JSON.
int RunQuickGate(const char* baseline_path) {
  // Best of two samples: a single sub-second run can read 10-15% low on a
  // loaded box, which would spuriously trip the 20% floor.
  RunResult r;
  for (int rep = 0; rep < 2; ++rep) {
    RunResult sample = RunOnce(
        32, psd::StepEngine::kAsync, net::DeliveryMode::kImmediate,
        StepsFor(psd::StepEngine::kAsync, net::DeliveryMode::kImmediate));
    if (!sample.completed) {
      std::fprintf(stderr,
                   "quick gate: 32-site async immediate run failed\n");
      return 1;
    }
    if (rep == 0 || sample.steps_per_sec > r.steps_per_sec) r = sample;
  }
  std::FILE* f = std::fopen(baseline_path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "quick gate: cannot open baseline %s\n",
                 baseline_path);
    return 1;
  }
  double baseline = 0.0;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    // First non-WAL 32-site async immediate run in the committed JSON.
    if (std::strstr(line, "\"sites\": 32") == nullptr) continue;
    if (std::strstr(line, "\"engine\": \"async\"") == nullptr) continue;
    if (std::strstr(line, "\"mode\": \"immediate\"") == nullptr) continue;
    if (std::strstr(line, "\"wal\": false") == nullptr) continue;
    const char* key = std::strstr(line, "\"steps_per_sec\": ");
    if (key != nullptr && std::sscanf(key, "\"steps_per_sec\": %lf",
                                      &baseline) == 1) {
      break;
    }
  }
  std::fclose(f);
  if (baseline <= 0.0) {
    std::fprintf(stderr, "quick gate: no 32-site async immediate baseline "
                 "in %s\n", baseline_path);
    return 1;
  }
  const double floor = 0.8 * baseline;
  std::printf("quick gate: 32-site async immediate %.1f steps/s "
              "(baseline %.1f, floor %.1f), %.3f frames/step\n",
              r.steps_per_sec, baseline, floor, r.frames_per_step);
  if (r.steps_per_sec < floor) {
    std::fprintf(stderr, "FAIL: steps/s regressed > 20%% below the "
                 "committed baseline\n");
    return 1;
  }
  std::printf("quick gate OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
    return RunQuickGate(argc > 2 ? argv[2] : "BENCH_step_engine.json");
  }
  std::printf("==== E13 (§5): step-engine scaling, 3 -> 128 sites ====\n\n");

  // Discarded warm-up per engine: the first run otherwise pays one-time
  // costs (thread-stack cache, frame/call pools, branch warm-up) that can
  // depress its short sample severalfold.
  RunOnce(3, psd::StepEngine::kAsync, net::DeliveryMode::kImmediate, 50);
  RunOnce(3, psd::StepEngine::kThreadPerSite, net::DeliveryMode::kImmediate,
          50);

  const std::vector<std::size_t> site_counts = {3, 8, 16, 32, 64, 128};
  // Thread-per-site at 64+ sites spawns >100 threads per step; the sweep
  // stops it at 32 and carries only the async engine to 64/128.
  const std::size_t max_thread_engine_sites = 32;
  std::vector<RunResult> results;

  for (const net::DeliveryMode mode :
       {net::DeliveryMode::kImmediate, net::DeliveryMode::kScheduled}) {
    const bool scheduled = mode == net::DeliveryMode::kScheduled;
    util::TextTable table({"sites", "engine", "steps/sec", "propose [ms]",
                           "execute [ms]", "threads spawned"});
    // Engine outer, sites inner, async first: the thread-per-site runs
    // leave enough scheduler and allocator wreckage (thousands of joined
    // threads) to depress a subsequent async sample by ~20%, so every
    // async point is measured before the first thread is spawned.
    for (const psd::StepEngine engine :
         {psd::StepEngine::kAsync, psd::StepEngine::kThreadPerSite}) {
      for (const std::size_t sites : site_counts) {
        if (engine == psd::StepEngine::kThreadPerSite &&
            sites > max_thread_engine_sites) {
          continue;
        }
        // Immediate-mode async runs are sub-second and sensitive to
        // scheduler/allocator state left by the thread-per-site runs, so
        // report the best of three samples; everything else is long (or
        // thread-bound) enough for one.
        const int repeats =
            !scheduled && engine == psd::StepEngine::kAsync ? 3 : 1;
        RunResult r;
        for (int rep = 0; rep < repeats; ++rep) {
          RunResult sample = RunOnce(sites, engine, mode,
                                     StepsFor(engine, mode));
          if (!sample.completed) {
            r = sample;
            break;
          }
          if (rep == 0 || sample.steps_per_sec > r.steps_per_sec) r = sample;
        }
        if (!r.completed) {
          std::fprintf(stderr, "run failed: %zu sites, %s, %s\n", r.sites,
                       r.engine.c_str(), r.mode.c_str());
          return 1;
        }
        table.AddRow({std::to_string(r.sites), r.engine,
                      util::Format("%.1f", r.steps_per_sec),
                      util::Format("%.3f", r.propose_phase_ms),
                      util::Format("%.3f", r.execute_phase_ms),
                      std::to_string(r.threads_spawned)});
        results.push_back(r);
      }
    }
    std::printf("---- %s delivery %s\n\n%s\n",
                scheduled ? "scheduled (1 ms one-way)" : "immediate",
                scheduled ? "(WAN model)" : "(engine overhead only)",
                table.ToString().c_str());
  }

  // ---- WAL overhead (docs/RECOVERY.md) -----------------------------------
  // Same workload, every durable transition logged + synced: the price of
  // the crash-recovery guarantee, measured where it is most visible (no
  // modeled network latency to hide behind).
  const RunResult bare = RunOnce(8, psd::StepEngine::kAsync,
                                 net::DeliveryMode::kImmediate, 120);
  const RunResult walled = RunOnce(8, psd::StepEngine::kAsync,
                                   net::DeliveryMode::kImmediate, 120,
                                   /*with_wal=*/true);
  if (!bare.completed || !walled.completed) {
    std::fprintf(stderr, "WAL overhead run failed\n");
    return 1;
  }
  results.push_back(bare);
  results.push_back(walled);
  const double wal_overhead_pct =
      100.0 * (bare.steps_per_sec / walled.steps_per_sec - 1.0);
  std::printf(
      "---- WAL overhead (async engine, immediate delivery, 8 sites)\n\n"
      "  no wal : %8.1f steps/sec\n"
      "  wal    : %8.1f steps/sec  (%llu records logged)\n"
      "  overhead: %.1f%% per step for the crash-recovery guarantee\n\n",
      bare.steps_per_sec, walled.steps_per_sec,
      static_cast<unsigned long long>(walled.wal_records), wal_overhead_pct);

  // ---- machine-readable trajectory record --------------------------------
  std::string json = "{\n  \"experiment\": \"E13\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    AppendJson(json, results[i], i + 1 == results.size());
  }
  json += "  ]\n}\n";
  std::FILE* f = std::fopen("BENCH_step_engine.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_step_engine.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_step_engine.json (%zu runs)\n\n", results.size());

  // ---- acceptance gates ---------------------------------------------------
  auto find = [&](std::size_t sites, const std::string& engine,
                  const std::string& mode) -> const RunResult* {
    for (const RunResult& r : results) {
      if (r.sites == sites && r.engine == engine && r.mode == mode) return &r;
    }
    return nullptr;
  };
  bool ok = true;
  for (const RunResult& r : results) {
    if (r.engine == "async" && r.threads_spawned != 0) {
      std::fprintf(stderr, "FAIL: async engine spawned %llu threads "
                   "(%zu sites, %s)\n",
                   static_cast<unsigned long long>(r.threads_spawned),
                   r.sites, r.mode.c_str());
      ok = false;
    }
  }
  for (const std::size_t sites : site_counts) {
    const RunResult* thread = find(sites, "thread_per_site", "scheduled");
    const RunResult* async_r = find(sites, "async", "scheduled");
    if (thread == nullptr || async_r == nullptr) continue;
    // >= at the MOST scale (2% noise allowance), strictly faster at scale.
    if (sites <= 3 && async_r->steps_per_sec < 0.98 * thread->steps_per_sec) {
      std::fprintf(stderr, "FAIL: async slower than thread-per-site at "
                   "%zu sites (%.1f vs %.1f steps/s)\n", sites,
                   async_r->steps_per_sec, thread->steps_per_sec);
      ok = false;
    }
    if (sites >= 16 && async_r->steps_per_sec <= thread->steps_per_sec) {
      std::fprintf(stderr, "FAIL: async not strictly faster at %zu sites "
                   "(%.1f vs %.1f steps/s)\n", sites,
                   async_r->steps_per_sec, thread->steps_per_sec);
      ok = false;
    }
  }
  if (walled.wal_records == 0) {
    std::fprintf(stderr, "FAIL: WAL run logged no records\n");
    ok = false;
  }
  std::printf(
      "shape: both engines collapse a phase to ~1 RTT under the WAN model,\n"
      "but thread-per-site pays ~2 x sites thread creations per step while\n"
      "the async engine multiplexes every completion on the coordinator\n"
      "thread (threads spawned = 0). The gap widens with site count — the\n"
      "scaling the §5 near-real-time work needs.\n");
  return ok ? 0 : 1;
}
