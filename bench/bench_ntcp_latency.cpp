// E11 — §5: "MOST and most follow-on experiments have lax performance
// requirements; even long delays can be tolerated ... We are working on
// improving NTCP performance" for near-real-time experiments.
//
// Measures per-step NTCP cost vs simulated WAN RTT over the *scheduled*
// (real-latency) network, and the ablation DESIGN.md calls out: the
// two-phase propose/execute protocol costs two round trips per site per
// step; a single-shot variant (execute-with-implicit-propose) would halve
// that but gives up the negotiate-before-moving safety property.
#include <cstdio>

#include "net/network.h"
#include "ntcp/client.h"
#include "ntcp/server.h"
#include "plugins/simulation_plugin.h"
#include "psd/coordinator.h"
#include "structural/substructure.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace nees;

namespace {

std::unique_ptr<plugins::SimulationPlugin> ElasticPlugin() {
  auto plugin = std::make_unique<plugins::SimulationPlugin>();
  structural::Matrix k(1, 1);
  k(0, 0) = 1e6;
  plugin->AddControlPoint(
      "cp", std::make_unique<structural::ElasticSubstructure>(k));
  return plugin;
}

}  // namespace

int main() {
  std::printf("==== E11 (§5): NTCP step latency vs WAN round-trip time "
              "====\n\n");
  util::TextTable table({"one-way delay [ms]", "two-phase step [ms]",
                         "single-shot step [ms]", "speedup",
                         "1500-step two-phase [min]"});

  for (const int delay_ms : {0, 5, 15, 30, 50}) {
    net::Network network(net::DeliveryMode::kScheduled);
    net::LinkModel wan;
    wan.latency_micros = delay_ms * 1000;
    network.SetDefaultLink(wan);

    ntcp::NtcpServer server(&network, "ntcp.site", ElasticPlugin());
    if (!server.Start().ok()) return 1;
    net::RpcClient rpc(&network, "coordinator");
    ntcp::RetryPolicy policy;
    policy.rpc_timeout_micros = 2'000'000;
    ntcp::NtcpClient client(&rpc, "ntcp.site", policy);

    const int steps = delay_ms == 0 ? 200 : 20;

    // Two-phase (the real protocol): propose, then execute.
    util::SampleStats two_phase;
    for (int i = 0; i < steps; ++i) {
      ntcp::Proposal proposal;
      proposal.transaction_id = "tp-" + std::to_string(i);
      proposal.actions.push_back({"cp", {0.001}, {}});
      const util::Stopwatch watch;
      if (!client.Propose(proposal).ok()) return 1;
      if (!client.Execute(proposal.transaction_id).ok()) return 1;
      two_phase.Add(watch.ElapsedMicros() / 1000.0);
    }

    // Single-shot ablation: one RPC that proposes AND executes. Emulated by
    // measuring a lone execute after pre-proposing out of band.
    util::SampleStats single_shot;
    for (int i = 0; i < steps; ++i) {
      ntcp::Proposal proposal;
      proposal.transaction_id = "ss-" + std::to_string(i);
      proposal.actions.push_back({"cp", {0.001}, {}});
      if (!client.Propose(proposal).ok()) return 1;  // out-of-band
      const util::Stopwatch watch;
      if (!client.Execute(proposal.transaction_id).ok()) return 1;
      single_shot.Add(watch.ElapsedMicros() / 1000.0);
    }

    const double steps1500_minutes = two_phase.mean() * 1500.0 / 60000.0;
    table.AddRow({std::to_string(delay_ms),
                  util::Format("%.2f", two_phase.mean()),
                  util::Format("%.2f", single_shot.mean()),
                  util::Format("%.2fx",
                               two_phase.mean() /
                                   std::max(single_shot.mean(), 1e-9)),
                  util::Format("%.1f", steps1500_minutes)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // ---- parallel-site ablation: the implemented §5 optimization ----------
  std::printf("==== E11b: 3-site step cost, sequential vs overlapped rounds "
              "====\n\n");
  util::TextTable parallel_table({"one-way delay [ms]", "sequential [ms]",
                                  "thread/site [ms]", "async [ms]",
                                  "async speedup"});
  for (const int delay_ms : {5, 15, 30}) {
    net::Network network(net::DeliveryMode::kScheduled);
    net::LinkModel wan;
    wan.latency_micros = delay_ms * 1000;
    network.SetDefaultLink(wan);
    std::vector<std::unique_ptr<ntcp::NtcpServer>> servers;
    for (const std::string endpoint : {"s1", "s2", "s3"}) {
      auto server = std::make_unique<ntcp::NtcpServer>(&network, endpoint,
                                                       ElasticPlugin());
      if (!server->Start().ok()) return 1;
      servers.push_back(std::move(server));
    }
    auto run = [&](psd::StepEngine engine, const std::string& name) {
      psd::CoordinatorConfig config;
      config.run_id = name;
      config.mass = structural::Matrix::Identity(1) * 5e4;
      config.damping = structural::Matrix::Identity(1) * 1e4;
      config.iota = {1.0};
      config.motion = structural::SinePulse(0.02, 9, 1.0, 1.0);
      config.sites = {{"S1", "s1", "cp", {0}},
                      {"S2", "s2", "cp", {0}},
                      {"S3", "s3", "cp", {0}}};
      config.step_engine = engine;
      net::RpcClient rpc(&network, name + ".coordinator");
      psd::SimulationCoordinator coordinator(config, &rpc);
      const psd::RunReport report = coordinator.Run();
      return report.completed
                 ? report.wall_seconds * 1000.0 / report.steps_completed
                 : -1.0;
    };
    const double sequential_ms = run(psd::StepEngine::kSequential,
                                     "seq" + std::to_string(delay_ms));
    const double parallel_ms = run(psd::StepEngine::kThreadPerSite,
                                   "par" + std::to_string(delay_ms));
    const double async_ms = run(psd::StepEngine::kAsync,
                                "asy" + std::to_string(delay_ms));
    parallel_table.AddRow(
        {std::to_string(delay_ms), util::Format("%.1f", sequential_ms),
         util::Format("%.1f", parallel_ms), util::Format("%.1f", async_ms),
         util::Format("%.2fx", sequential_ms / std::max(async_ms, 1e-9))});
  }
  std::printf("%s\n", parallel_table.ToString().c_str());

  std::printf(
      "shape: step cost is ~2 RTT for the two-phase protocol and ~1 RTT\n"
      "single-shot. At transcontinental delays (30-50 ms) a 1500-step\n"
      "experiment spends minutes in protocol — tolerable for PSD testing\n"
      "(the real MOST took ~5 h because rigs settle in real time), but the\n"
      "motivation for the near-real-time NTCP work of §5.\n");
  return 0;
}
