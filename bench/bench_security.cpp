// E10 — §4: security mechanism costs.
//
// Measures the GSI-analog operations every NEESgrid call depends on: the
// mutual-auth handshake, chain verification as proxy delegation deepens,
// session-token validation (the per-RPC hot path), and CAS capability
// issue/verify.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "net/network.h"
#include "net/rpc.h"
#include "security/auth.h"
#include "security/cas.h"
#include "security/certificate.h"
#include "util/clock.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace nees;

namespace {

void BM_SchnorrSign(benchmark::State& state) {
  util::Rng rng(1);
  const security::SigningKey key = security::GenerateKey(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(security::Sign(key, "challenge", rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  util::Rng rng(1);
  const security::SigningKey key = security::GenerateKey(rng);
  const security::Signature signature = security::Sign(key, "challenge", rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        security::Verify(key.public_key, "challenge", signature));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchnorrVerify);

void BM_ChainVerifyByProxyDepth(benchmark::State& state) {
  util::SimClock clock(1'000'000);
  util::Rng rng(7);
  security::CertificateAuthority ca("/O=NEES/CN=CA", clock, rng);
  security::TrustStore trust;
  trust.AddRoot(ca.root_certificate());
  security::Credential credential =
      ca.IssueIdentity("/O=NEES/CN=user", 0, rng);
  for (int depth = 0; depth < state.range(0); ++depth) {
    credential = credential.CreateProxy(3'600'000'000, clock, rng);
  }
  security::VerifyOptions options;
  options.max_proxy_depth = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trust.VerifyChain(credential.chain(), clock.NowMicros(), options));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("chain length " +
                 std::to_string(credential.chain().size()));
}
BENCHMARK(BM_ChainVerifyByProxyDepth)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

void BM_FullHandshakeOverNetwork(benchmark::State& state) {
  util::SimClock clock(1'000'000'000);
  net::Network network;
  network.SetClock(&clock);
  util::Rng rng(7);
  security::CertificateAuthority ca("/O=NEES/CN=CA", clock, rng);
  security::TrustStore trust;
  trust.AddRoot(ca.root_certificate());
  security::AuthService auth(std::move(trust), &clock, util::Rng(9));
  net::RpcServer server(&network, "ntcp.site");
  (void)server.Start();
  auth.Attach(server);
  const security::Credential user =
      ca.IssueIdentity("/O=NEES/CN=coordinator", 0, rng);
  net::RpcClient rpc(&network, "client");
  security::AuthClient login(&rpc, user, &clock, util::Rng(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(login.Login("ntcp.site"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullHandshakeOverNetwork);

void BM_TokenValidate(benchmark::State& state) {
  security::SessionTokenIssuer issuer("bench-secret");
  const std::string token = issuer.Issue("/O=NEES/CN=coordinator", 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(issuer.Validate(token, 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenValidate);

void BM_CasIssueAndVerify(benchmark::State& state) {
  util::SimClock clock(1'000'000);
  util::Rng rng(7);
  security::CertificateAuthority ca("/O=NEES/CN=CA", clock, rng);
  security::CommunityAuthorizationService cas(
      ca.IssueIdentity("/O=NEES/CN=cas", 0, rng), &clock, util::Rng(9));
  cas.Grant("/O=NEES/CN=ingest", "repo.files", "write");
  for (auto _ : state) {
    auto capability = cas.Issue("/O=NEES/CN=ingest", "repo.files", "write");
    benchmark::DoNotOptimize(security::VerifyCapability(
        *capability, cas.public_key(), clock.NowMicros()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CasIssueAndVerify);

void PrintAuthOverheadTable() {
  std::printf("==== E10 (§4): authenticated vs open NTCP call overhead "
              "====\n\n");
  // Compare raw RPC against token-authenticated RPC on the same method.
  util::SimClock clock(1'000'000'000);
  net::Network network;
  network.SetClock(&clock);
  util::Rng rng(7);
  security::CertificateAuthority ca("/O=NEES/CN=CA", clock, rng);
  security::TrustStore trust;
  trust.AddRoot(ca.root_certificate());

  auto measure = [&](bool authed) {
    net::RpcServer server(&network,
                          authed ? "svc.authed" : "svc.open");
    (void)server.Start();
    server.RegisterMethod(
        "ping", [](const net::CallContext&,
                   const net::Bytes& body) -> util::Result<net::Bytes> {
          return body;
        });
    security::AuthService auth(trust, &clock, util::Rng(9));
    net::RpcClient rpc(&network, authed ? "c.authed" : "c.open");
    if (authed) {
      auth.Attach(server);
      security::AuthClient login(
          &rpc, ca.IssueIdentity("/O=NEES/CN=u", 0, rng), &clock,
          util::Rng(5));
      (void)login.Login(server.endpoint());
    }
    const int calls = 20000;
    const util::Stopwatch watch;
    for (int i = 0; i < calls; ++i) {
      (void)rpc.Call(server.endpoint(), "ping", {});
    }
    return watch.ElapsedMicros() / static_cast<double>(calls);
  };

  const double open_us = measure(false);
  const double authed_us = measure(true);
  util::TextTable table({"configuration", "per-call [us]", "overhead"});
  table.AddRow({"open (no auth)", util::Format("%.2f", open_us), "-"});
  table.AddRow({"GSI token + ACL check", util::Format("%.2f", authed_us),
                util::Format("%.2f us (%.0f%%)", authed_us - open_us,
                             100.0 * (authed_us - open_us) /
                                 std::max(open_us, 1e-9))});
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  PrintAuthOverheadTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
