// E5 — the MOST run itself (Figs. 5/9, §3.4).
//
// Regenerates: dry-run and hybrid completion of all 1,500 steps, step-rate
// and per-site time breakdown, the simulation-vs-hybrid response agreement
// (the NTCP transparency claim), and per-site NTCP statistics.
//
// The paper's wall time was ~5 hours for 1,500 steps (≈12 s/step) because
// the rigs settle in real time; here actuator settling is simulated, so the
// interesting shape is the per-step breakdown, not absolute seconds.
#include <cmath>
#include <cstdio>

#include "most/most.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace nees;

int main(int argc, char** argv) {
  const std::size_t steps =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1500;
  std::printf("==== E5 (Figs. 5/9, §3.4): the MOST experiment, %zu steps "
              "====\n\n", steps);

  most::MostOptions options;
  options.steps = steps;

  // Dry run.
  options.hybrid = false;
  psd::RunReport dry;
  {
    net::Network network;
    most::MostExperiment experiment(&network,
                                    &util::SystemClock::Instance(), options);
    auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "dry");
    if (!report.ok()) return 1;
    dry = *report;
  }

  // Hybrid run.
  options.hybrid = true;
  psd::RunReport hybrid;
  ntcp::NtcpServerStats uiuc_stats, ncsa_stats, cu_stats;
  {
    net::Network network;
    most::MostExperiment experiment(&network,
                                    &util::SystemClock::Instance(), options);
    auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "hybrid");
    if (!report.ok()) return 1;
    hybrid = *report;
    uiuc_stats = experiment.ServerStats(most::MostExperiment::kNtcpUiuc);
    ncsa_stats = experiment.ServerStats(most::MostExperiment::kNtcpNcsa);
    cu_stats = experiment.ServerStats(most::MostExperiment::kNtcpCu);
  }

  util::TextTable runs({"run", "completed", "steps", "wall [s]", "steps/s",
                        "peak drift [mm]"});
  for (const auto& [name, report] :
       std::vector<std::pair<std::string, const psd::RunReport*>>{
           {"dry (all-sim)", &dry}, {"hybrid (rigs)", &hybrid}}) {
    runs.AddRow({name, report->completed ? "yes" : "NO",
                 util::Format("%zu/%zu", report->steps_completed,
                              report->total_steps),
                 util::Format("%.2f", report->wall_seconds),
                 util::Format("%.0f", report->steps_completed /
                                          std::max(report->wall_seconds,
                                                   1e-9)),
                 util::Format("%.2f",
                              report->history.PeakDisplacement(0) * 1000)});
  }
  std::printf("%s\n", runs.ToString().c_str());

  // Transparency: simulation vs physical substitution agreement.
  double max_diff = 0.0, rms = 0.0;
  const std::size_t n = std::min(dry.history.displacement.size(),
                                 hybrid.history.displacement.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = dry.history.displacement[i][0] -
                        hybrid.history.displacement[i][0];
    max_diff = std::max(max_diff, std::fabs(diff));
    rms += diff * diff;
  }
  rms = std::sqrt(rms / std::max<std::size_t>(n, 1));
  const double peak = dry.history.PeakDisplacement(0);
  std::printf("transparency check (dry vs hybrid story drift):\n"
              "  max |diff| = %.3f mm (%.1f%% of peak), rms = %.3f mm\n\n",
              max_diff * 1000, 100.0 * max_diff / peak, rms * 1000);

  // Per-site time breakdown of the hybrid run.
  util::TextTable sites({"site", "ops", "mean [us]", "p50", "p95", "p99",
                         "max"});
  for (const psd::SiteStats& site : hybrid.site_stats) {
    sites.AddRow({site.name, std::to_string(site.step_micros.count()),
                  util::Format("%.1f", site.step_micros.mean()),
                  util::Format("%.0f", site.step_micros.Percentile(50)),
                  util::Format("%.0f", site.step_micros.Percentile(95)),
                  util::Format("%.0f", site.step_micros.Percentile(99)),
                  util::Format("%.0f", site.step_micros.max())});
  }
  std::printf("per-site NTCP op latency (hybrid run):\n%s\n",
              sites.ToString().c_str());

  util::TextTable servers({"NTCP server", "proposals", "executes",
                           "dup proposals", "dup executes", "rejected"});
  for (const auto& [name, stats] :
       std::vector<std::pair<std::string, const ntcp::NtcpServerStats*>>{
           {"ntcp.uiuc", &uiuc_stats},
           {"ntcp.ncsa", &ncsa_stats},
           {"ntcp.cu", &cu_stats}}) {
    servers.AddRow({name, std::to_string(stats->proposals),
                    std::to_string(stats->executions),
                    std::to_string(stats->duplicate_proposals),
                    std::to_string(stats->duplicate_executes),
                    std::to_string(stats->rejected)});
  }
  std::printf("server-side transaction statistics (hybrid run):\n%s\n",
              servers.ToString().c_str());

  std::printf("paper shape: both the dry run and (with fault tolerance) the "
              "experiment complete\nall %zu steps; the physical substitution "
              "changes the response only within rig\nmeasurement error.\n",
              steps);
  return 0;
}
