// E9 — Fig. 11 + §3.5: Mini-MOST.
//
// Regenerates the tabletop experiment's characteristic numbers: hybrid runs
// against the stepper-motor rig vs the first-order kinetic simulator (the
// hardware stand-in), agreement between them, stepper duty, and step rate.
#include <cmath>
#include <cstdio>

#include "most/mini_most.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace nees;

int main() {
  std::printf("==== E9 (Fig. 11, §3.5): Mini-MOST ====\n\n");

  most::MiniMostOptions options;
  options.steps = 600;
  std::printf("beam: %.0f cm x %.0f cm x %.0f mm, tip stiffness %.0f N/m\n\n",
              options.beam_length_m * 100, options.beam_width_m * 100,
              options.beam_thickness_m * 1000,
              most::MiniMostBeamStiffness(options));

  util::TextTable table({"backend", "steps", "wall [s]", "steps/s",
                         "peak tip [mm]", "stepper motor steps"});
  structural::TimeHistory hardware, kinetic;
  for (const bool real_hardware : {true, false}) {
    net::Network network;
    options.real_hardware = real_hardware;
    most::MiniMostExperiment experiment(
        &network, &util::SystemClock::Instance(), options);
    auto report = experiment.Run(real_hardware ? "hw" : "sim");
    if (!report.ok() || !report->completed) {
      std::printf("run failed: %s\n",
                  (report.ok() ? report->failure : report.status())
                      .ToString()
                      .c_str());
      return 1;
    }
    (real_hardware ? hardware : kinetic) = report->history;
    table.AddRow(
        {real_hardware ? "stepper rig (LabVIEW plugin)"
                       : "first-order kinetic simulator",
         std::to_string(report->steps_completed),
         util::Format("%.2f", report->wall_seconds),
         util::Format("%.0f",
                      report->steps_completed /
                          std::max(report->wall_seconds, 1e-9)),
         util::Format("%.3f", report->history.PeakDisplacement(0) * 1000),
         real_hardware ? std::to_string(experiment.stepper_steps()) : "-"});
  }
  std::printf("%s\n", table.ToString().c_str());

  double max_diff = 0.0;
  for (std::size_t i = 0; i < hardware.displacement.size() &&
                          i < kinetic.displacement.size();
       ++i) {
    max_diff = std::max(max_diff, std::fabs(hardware.displacement[i][0] -
                                            kinetic.displacement[i][0]));
  }
  const double peak = hardware.PeakDisplacement(0);
  std::printf("hardware vs simulator agreement: max |diff| %.4f mm "
              "(%.1f%% of peak)\n",
              max_diff * 1000, peak > 0 ? 100.0 * max_diff / peak : 0.0);
  std::printf("(paper: the kinetic simulator is \"applicable for testing "
              "when the actual\n hardware is not available\" — same NTCP "
              "path, approximate physics)\n");
  return 0;
}
