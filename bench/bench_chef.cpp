// E8 — Fig. 8 + §3.4: remote participation at MOST scale.
//
// "During the execution of the experiment, over 130 remote participants
// logged on to observe MOST." We load the CHEF portal with 130 scripted
// participants during a live (small) experiment and report server-side
// operation counts and per-operation latency, plus a sweep of participant
// counts to show where the portal's costs grow.
#include <cstdio>

#include "chef/chef.h"
#include "most/most.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace nees;

int main() {
  std::printf("==== E8 (Fig. 8, §3.4): 130 remote participants ====\n\n");

  // A live experiment feeding the viewers.
  net::Network network;
  most::MostOptions options;
  options.steps = 300;
  options.hybrid = false;
  most::MostExperiment experiment(&network, &util::SystemClock::Instance(),
                                  options);
  if (!experiment.Start().ok()) return 1;

  chef::ChefServer portal(&network, "chef.nees");
  if (!portal.Start().ok()) return 1;
  nsds::NsdsSubscriber feed(&network, "chef.feed");
  portal.ConnectStream(feed);
  if (!feed.SubscribeTo(most::MostExperiment::kNsds, "most.").ok()) return 1;

  auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "e8");
  if (!report.ok() || !report->completed) return 1;

  // The MOST head-count, plus a sweep around it.
  util::TextTable table({"participants", "login [us]", "chat post [us]",
                         "series read [us]", "hysteresis read [us]",
                         "failures"});
  for (const int participants : {10, 50, 130, 260}) {
    util::SampleStats login_us, chat_us, series_us, hysteresis_us;
    int failures = 0;
    std::vector<std::unique_ptr<chef::ChefClient>> clients;
    for (int i = 0; i < participants; ++i) {
      auto client = std::make_unique<chef::ChefClient>(
          &network,
          "swarm" + std::to_string(participants) + "." + std::to_string(i),
          "chef.nees");
      {
        const util::Stopwatch watch;
        if (!client->Login("user" + std::to_string(i)).ok()) ++failures;
        login_us.Add(static_cast<double>(watch.ElapsedMicros()));
      }
      {
        const util::Stopwatch watch;
        if (!client->PostChat("most", "watching the strong motion").ok()) {
          ++failures;
        }
        chat_us.Add(static_cast<double>(watch.ElapsedMicros()));
      }
      {
        const util::Stopwatch watch;
        if (!client->ViewerSeries("most.displacement", 200).ok()) ++failures;
        series_us.Add(static_cast<double>(watch.ElapsedMicros()));
      }
      {
        const util::Stopwatch watch;
        if (!client->ViewerHysteresis("most.displacement", "most.force.UIUC",
                                      200)
                 .ok()) {
          ++failures;
        }
        hysteresis_us.Add(static_cast<double>(watch.ElapsedMicros()));
      }
      clients.push_back(std::move(client));
    }
    table.AddRow({std::to_string(participants),
                  util::Format("%.1f", login_us.mean()),
                  util::Format("%.1f", chat_us.mean()),
                  util::Format("%.1f", series_us.mean()),
                  util::Format("%.1f", hysteresis_us.mean()),
                  std::to_string(failures)});
    for (auto& client : clients) (void)client->Logout();
  }
  std::printf("%s\n", table.ToString().c_str());

  const chef::ChefStats stats = portal.stats();
  std::printf("portal totals: %llu logins, peak concurrency %llu, %llu chat "
              "messages, %llu viewer reads\n",
              static_cast<unsigned long long>(stats.logins),
              static_cast<unsigned long long>(stats.peak_concurrent),
              static_cast<unsigned long long>(stats.chat_messages),
              static_cast<unsigned long long>(stats.viewer_reads));
  std::printf("viewer store: %zu channels, %zu displacement samples "
              "available for playback\n",
              portal.viewer().Channels().size(),
              portal.viewer().SampleCount("most.displacement"));
  std::printf("(shape: per-op latency stays flat into the hundreds of "
              "participants — the portal\n was never the bottleneck, matching "
              "the paper's experience)\n");
  return 0;
}
