// E-lint — protocol conformance of the full hybrid MOST trace, plus proof
// that nees-lint catches deliberately seeded protocol damage.
//
// Two halves, both exit-code-checked so CI can gate on this binary:
//
//   1. A 150-step hybrid MOST run under one SimClock exports its trace and
//      must lint CLEAN: every transaction walks a legal Fig. 1 path to a
//      terminal state, no step skips, no double executes, no bogus expiry.
//   2. Four corruptions are seeded into copies of that trace (illegal
//      transition, duplicate execute, skipped step, bogus expiry); the
//      linter must report exactly the expected rule set for each — no
//      misses, no false cascades.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "check/checker.h"
#include "check/corrupt.h"
#include "most/most.h"
#include "obs/trace.h"
#include "util/clock.h"

using namespace nees;

namespace {

bool RunHybridMost(std::size_t steps, std::vector<obs::SpanRecord>* spans,
                   double* wall_seconds) {
  util::SimClock sim;
  obs::Tracer tracer(&sim, &sim);
  net::Network network;
  network.SetClock(&sim);
  net::LinkModel wan;
  wan.latency_micros = 20'000;
  network.SetDefaultLink(wan);
  most::MostOptions options;
  options.steps = steps;
  options.hybrid = true;
  options.tracer = &tracer;
  most::MostExperiment experiment(&network, &sim, options);
  const util::Stopwatch watch;
  auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "e-lint");
  *wall_seconds = watch.ElapsedSeconds();
  if (!report.ok() || !report->completed) return false;
  *spans = tracer.Snapshot();
  return true;
}

std::string RuleSetString(const check::LintReport& report) {
  std::set<std::string> names;
  for (const check::Violation& violation : report.violations) {
    names.insert(std::string(check::RuleName(violation.rule)));
  }
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ",";
    out += name;
  }
  return out.empty() ? "(none)" : out;
}

bool CheckSeeded(const char* label,
                 const util::Result<std::vector<obs::SpanRecord>>& corrupted,
                 const std::set<check::Rule>& expected) {
  if (!corrupted.ok()) {
    std::printf("  %-20s SEEDING FAILED: %s\n", label,
                corrupted.status().ToString().c_str());
    return false;
  }
  const check::LintReport report = check::LintSpans(*corrupted);
  std::set<check::Rule> got;
  for (const check::Violation& violation : report.violations) {
    got.insert(violation.rule);
  }
  const bool ok = got == expected;
  std::printf("  %-20s %s — %zu violation(s), rules: %s\n", label,
              ok ? "CAUGHT" : "WRONG RULE SET", report.violations.size(),
              RuleSetString(report).c_str());
  if (!ok) {
    for (const check::Violation& violation : report.violations) {
      std::printf("    %s\n", violation.ToString().c_str());
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t steps =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 150;
  std::printf("==== E-lint: protocol conformance of a %zu-step hybrid MOST "
              "trace ====\n\n", steps);

  std::vector<obs::SpanRecord> spans;
  double run_seconds = 0.0;
  if (!RunHybridMost(steps, &spans, &run_seconds)) {
    std::printf("hybrid MOST run failed\n");
    return 1;
  }

  // ---- clean trace must lint clean ----------------------------------------
  const util::Stopwatch lint_watch;
  const check::LintReport clean = check::LintSpans(spans);
  const double lint_seconds = lint_watch.ElapsedSeconds();
  std::printf("fresh trace: %zu spans, %zu protocol events, %zu transactions "
              "across %zu endpoints -> %s\n",
              clean.stats.spans, clean.stats.protocol_events,
              clean.stats.transactions, clean.stats.endpoints,
              clean.ok() ? "CLEAN" : "VIOLATIONS (BUG)");
  if (!clean.ok()) {
    std::printf("%s\n", clean.ToString().c_str());
    return 1;
  }
  std::printf("throughput: run %.1f ms, lint %.3f ms (%.0f spans/ms)\n\n",
              run_seconds * 1000, lint_seconds * 1000,
              static_cast<double>(clean.stats.spans) /
                  std::max(lint_seconds * 1000, 1e-9));

  // ---- seeded corruptions must each be caught -----------------------------
  std::printf("seeded corruptions (expected rule set vs reported):\n");
  bool all_caught = true;
  all_caught &= CheckSeeded("illegal-transition",
                            check::SeedIllegalTransition(spans),
                            {check::Rule::kIllegalTransition});
  all_caught &= CheckSeeded("duplicate-execute",
                            check::SeedDuplicateExecute(spans),
                            {check::Rule::kIllegalTransition,
                             check::Rule::kDuplicateExecute});
  all_caught &= CheckSeeded("skipped-step", check::SeedSkippedStep(spans),
                            {check::Rule::kStepMonotonicity});
  all_caught &= CheckSeeded("bogus-expiry",
                            check::SeedBogusExpiry(spans),
                            {check::Rule::kBogusExpiry});

  std::printf("\n%s\n", all_caught
                            ? "all seeded violations caught with exact rule "
                              "sets; fresh trace clean."
                            : "LINT GAP: a seeded violation was missed.");
  return all_caught ? 0 : 1;
}
