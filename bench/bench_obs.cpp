// E-obs — per-step latency breakdown of a MOST-shaped run (§4, Fig. 9).
//
// The paper reconstructed "where does a 12-second step go?" from
// NTP-synchronized site logs after the fact. Here the obs::Tracer records
// the same breakdown live: the full hybrid MOST topology runs under one
// SimClock used as both the span clock and the modeled clock, so network
// transfer and actuator settling advance simulated time while compute is
// free — the trace is the modeled wide-area timeline, byte-identical
// across runs.
//
// Regenerates: the per-category exclusive-time breakdown (network / settle
// / protocol / simulation / ...), the metrics report, the two-run
// determinism check, and the tracer's wall-clock overhead on a real-time
// run.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "most/most.h"
#include "obs/trace.h"
#include "util/strings.h"

using namespace nees;

namespace {

most::MostOptions ShapedOptions(std::size_t steps, obs::Tracer* tracer) {
  most::MostOptions options;
  options.steps = steps;
  options.hybrid = true;
  options.tracer = tracer;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t steps =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 150;
  std::printf("==== E-obs (§4): per-step latency breakdown, %zu-step hybrid "
              "MOST run ====\n\n", steps);

  // ---- deterministic modeled-time runs ------------------------------------
  auto traced_run = [&](std::string* json, std::string* breakdown,
                        std::string* metrics) {
    util::SimClock sim;
    obs::Tracer tracer(&sim, &sim);  // same clock: deterministic trace
    net::Network network;
    network.SetClock(&sim);
    net::LinkModel wan;
    wan.latency_micros = 20'000;  // one-way site <-> site propagation
    network.SetDefaultLink(wan);
    most::MostExperiment experiment(&network, &sim,
                                    ShapedOptions(steps, &tracer));
    auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "e-obs");
    if (!report.ok() || !report->completed) return false;
    *json = tracer.ExportJsonLines();
    *breakdown = tracer.BreakdownTable();
    *metrics = tracer.metrics().ReportTable();
    return true;
  };

  std::string json_a, json_b, breakdown, metrics;
  if (!traced_run(&json_a, &breakdown, &metrics)) return 1;
  {
    std::string unused_breakdown, unused_metrics;
    if (!traced_run(&json_b, &unused_breakdown, &unused_metrics)) return 1;
  }

  std::printf("per-step breakdown (exclusive modeled time per category):\n"
              "%s\n", breakdown.c_str());
  std::printf("metrics:\n%s\n", metrics.c_str());

  const std::size_t trace_lines =
      static_cast<std::size_t>(std::count(json_a.begin(), json_a.end(), '\n'));
  std::printf("determinism: run A and run B traces (%zu spans, %zu bytes) "
              "are %s\n\n",
              trace_lines, json_a.size(),
              json_a == json_b ? "byte-identical" : "DIFFERENT (BUG)");

  // ---- tracer overhead on a real-time run ---------------------------------
  // Same topology on the system clock, with and without the tracer; in
  // kImmediate mode nothing sleeps, so this measures pure tracing cost.
  auto wall_run = [&](obs::Tracer* tracer) {
    net::Network network;
    most::MostExperiment experiment(&network, &util::SystemClock::Instance(),
                                    ShapedOptions(steps, tracer));
    auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant,
                                 tracer ? "walltraced" : "wallbase");
    return (report.ok() && report->completed) ? report->wall_seconds : -1.0;
  };
  const double base_seconds = wall_run(nullptr);
  obs::Tracer wall_tracer(&util::SystemClock::Instance());
  const double traced_seconds = wall_run(&wall_tracer);
  if (base_seconds < 0 || traced_seconds < 0) return 1;
  std::printf("tracer overhead (real clock, %zu steps): %.1f ms untraced vs "
              "%.1f ms traced (%+.1f%%, %zu spans)\n\n",
              steps, base_seconds * 1000, traced_seconds * 1000,
              100.0 * (traced_seconds - base_seconds) /
                  std::max(base_seconds, 1e-9),
              wall_tracer.span_count());

  std::printf(
      "shape: with ~20 ms one-way links, modeled time is dominated by\n"
      "network transfer (4 messages x 3 sites x ~20 ms per step) and\n"
      "actuator settling, exactly the paper's finding that protocol and\n"
      "computation are negligible next to WAN latency and rig motion.\n");
  return 0;
}
