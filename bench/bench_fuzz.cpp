// E14 — deterministic simulation fuzzing throughput. The kVirtual delivery
// mode makes a whole distributed MOST run a pure function of its seed, so
// schedule-space exploration is CPU-bound: this bench measures how many
// random scenarios (and how many totally ordered virtual events) the
// fuzzer pushes through per unit wall time.
//
// Two blocks, mirroring how the fuzzer is actually run:
//   * standard block — the historical 40-seed standard-template block,
//     every seed thorough (full artifacts + the double-run determinism
//     replica), tracking the per-seed cost trajectory;
//   * campaign block — the sweep configuration `nees_fuzz --campaign`
//     uses: auto-template mix (mini-dominated, with standard, full-MOST
//     and centrifuge shapes riding along), exports off, determinism
//     replica sampled on every 8th seed. Its seeds/hour is the headline
//     number the docs cite; the ISSUE target is >=500k seeds/hour on one
//     CI core.
//
// Emits BENCH_fuzz.json and exits non-zero if any seed in either block
// fails an oracle. `--quick [baseline.json]` re-measures a short campaign
// sample and fails if it lands > 20% below the committed
// campaign_seeds_per_hour (the E13 quick-gate pattern).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "most/fuzz.h"
#include "util/clock.h"
#include "util/strings.h"

using namespace nees;

namespace {

struct SeedResult {
  std::uint64_t seed = 0;
  std::size_t sites = 0;
  std::size_t steps = 0;
  std::size_t faults = 0;
  std::uint64_t events = 0;  // both runs of the determinism pair
  double seconds = 0.0;
  bool ok = false;
};

struct SweepResult {
  std::uint64_t seeds = 0;
  std::uint64_t failures = 0;
  std::uint64_t checked = 0;
  std::uint64_t events = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t auth_refreshes = 0;
  std::uint64_t by_template[4] = {0, 0, 0, 0};
  double seconds = 0.0;

  double seeds_per_hour() const {
    return seconds > 0.0 ? 3600.0 * static_cast<double>(seeds) / seconds : 0.0;
  }
};

/// The campaign configuration: auto template mix, no artifact export,
/// determinism replica on every 8th seed — exactly what a
/// `nees_fuzz --campaign` worker runs per seed.
SweepResult RunCampaignSweep(std::uint64_t first_seed, std::uint64_t count) {
  SweepResult sweep;
  sweep.seeds = count;
  most::FuzzRunOptions options;
  options.export_artifacts = false;
  const util::Stopwatch watch;
  for (std::uint64_t seed = first_seed; seed < first_seed + count; ++seed) {
    const most::FuzzTemplate shape = most::TemplateForSeed(seed);
    const most::FuzzScenario scenario = most::GenerateScenario(seed, shape);
    const bool check = seed % 8 == 0;
    const most::FuzzOutcome outcome =
        check ? most::RunFuzzCaseChecked(scenario, most::kAllFaults, options)
              : most::RunFuzzCase(scenario, most::kAllFaults, options);
    sweep.checked += check ? 1 : 0;
    sweep.events += (check ? 2 : 1) * outcome.events_processed;
    sweep.crashes += outcome.site_crashes;
    sweep.recoveries += outcome.site_recoveries;
    sweep.frames_corrupted += outcome.frames_corrupted;
    sweep.auth_refreshes += outcome.auth_refreshes;
    sweep.by_template[static_cast<int>(shape)] += 1;
    if (!outcome.ok()) {
      ++sweep.failures;
      std::fprintf(stderr, "FAIL seed=%llu: %s\n  replay: %s\n",
                   static_cast<unsigned long long>(seed),
                   outcome.failures.front().c_str(),
                   most::ReplayCommand(seed, shape, most::kAllFaults).c_str());
    }
  }
  sweep.seconds = watch.ElapsedSeconds();
  return sweep;
}

/// --quick: regression gate. Re-measures a short campaign sample and fails
/// (exit 1) if its seeds/hour lands > 20% below the committed baseline's
/// campaign_seeds_per_hour.
int RunQuickGate(const char* baseline_path) {
  constexpr std::uint64_t kSampleSeeds = 300;
  // Best of two: one short sample can read 10-15% low on a loaded box,
  // which would spuriously trip the 20% floor.
  double best = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    const SweepResult sample = RunCampaignSweep(1, kSampleSeeds);
    if (sample.failures != 0) {
      std::fprintf(stderr, "quick gate: %llu oracle failures in the sample\n",
                   static_cast<unsigned long long>(sample.failures));
      return 1;
    }
    best = std::max(best, sample.seeds_per_hour());
  }
  std::FILE* f = std::fopen(baseline_path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "quick gate: cannot open baseline %s\n",
                 baseline_path);
    return 1;
  }
  double baseline = 0.0;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    const char* key = std::strstr(line, "\"campaign_seeds_per_hour\": ");
    if (key != nullptr &&
        std::sscanf(key, "\"campaign_seeds_per_hour\": %lf", &baseline) == 1) {
      break;
    }
  }
  std::fclose(f);
  if (baseline <= 0.0) {
    std::fprintf(stderr,
                 "quick gate: no campaign_seeds_per_hour baseline in %s\n",
                 baseline_path);
    return 1;
  }
  const double floor = 0.8 * baseline;
  std::printf(
      "quick gate: campaign sample %.0f seeds/hour "
      "(baseline %.0f, floor %.0f)\n",
      best, baseline, floor);
  if (best < floor) {
    std::fprintf(stderr, "FAIL: campaign seeds/hour regressed > 20%% below "
                 "the committed baseline\n");
    return 1;
  }
  std::printf("quick gate OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
    return RunQuickGate(argc > 2 ? argv[2] : "BENCH_fuzz.json");
  }

  const std::uint64_t first_seed = 1;
  const std::uint64_t seed_count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 40;
  const std::uint64_t campaign_count =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 2000;

  // --- standard block: thorough per-seed cost trajectory ---------------------
  std::vector<SeedResult> results;
  std::uint64_t failures = 0;
  std::uint64_t total_events = 0;
  std::uint64_t total_crashes = 0;
  std::uint64_t total_recoveries = 0;
  std::uint64_t total_txns_recovered = 0;
  std::uint64_t total_inflight_failed = 0;
  const util::Stopwatch total_watch;

  for (std::uint64_t seed = first_seed; seed < first_seed + seed_count;
       ++seed) {
    const most::FuzzScenario scenario = most::GenerateScenario(seed);
    const util::Stopwatch watch;
    const most::FuzzOutcome outcome = most::RunFuzzCaseChecked(scenario);

    SeedResult r;
    r.seed = seed;
    r.sites = scenario.sites;
    r.steps = scenario.steps;
    r.faults = scenario.faults.size();
    r.events = 2 * outcome.events_processed;
    r.seconds = watch.ElapsedSeconds();
    r.ok = outcome.ok();
    results.push_back(r);

    total_events += r.events;
    total_crashes += outcome.site_crashes;
    total_recoveries += outcome.site_recoveries;
    total_txns_recovered += outcome.transactions_recovered;
    total_inflight_failed += outcome.inflight_failed;
    if (!outcome.ok()) {
      ++failures;
      std::fprintf(
          stderr, "FAIL seed=%llu: %s\n  replay: %s\n",
          static_cast<unsigned long long>(seed),
          outcome.failures.front().c_str(),
          most::ReplayCommand(seed, most::FuzzTemplate::kStandard,
                              most::kAllFaults)
              .c_str());
    }
  }

  const double elapsed = total_watch.ElapsedSeconds();
  const double seeds_per_hour =
      elapsed > 0.0 ? 3600.0 * static_cast<double>(seed_count) / elapsed : 0.0;
  const double events_per_sec =
      elapsed > 0.0 ? static_cast<double>(total_events) / elapsed : 0.0;

  std::printf(
      "E14: %llu standard seeds (all oracles + double-run determinism), "
      "%llu failures\n     %.2fs wall -> %.0f seeds/hour, "
      "%.0f virtual events/sec\n"
      "     crash/restart: %llu crashes, %llu recoveries, "
      "%llu txns replayed from WAL, %llu crash-marked\n",
      static_cast<unsigned long long>(seed_count),
      static_cast<unsigned long long>(failures), elapsed, seeds_per_hour,
      events_per_sec, static_cast<unsigned long long>(total_crashes),
      static_cast<unsigned long long>(total_recoveries),
      static_cast<unsigned long long>(total_txns_recovered),
      static_cast<unsigned long long>(total_inflight_failed));

  // --- campaign block: the sweep configuration's headline throughput ---------
  const SweepResult campaign = RunCampaignSweep(first_seed, campaign_count);
  const double campaign_events_per_sec =
      campaign.seconds > 0.0
          ? static_cast<double>(campaign.events) / campaign.seconds
          : 0.0;
  std::printf(
      "     campaign: %llu auto-template seeds, %llu failures, "
      "%llu determinism-checked\n"
      "       mix %llu mini / %llu standard / %llu full-most / "
      "%llu centrifuge\n"
      "       %llu frames corrupted, %llu auth refreshes\n"
      "       %.2fs wall -> %.0f seeds/hour, %.0f virtual events/sec\n",
      static_cast<unsigned long long>(campaign.seeds),
      static_cast<unsigned long long>(campaign.failures),
      static_cast<unsigned long long>(campaign.checked),
      static_cast<unsigned long long>(
          campaign.by_template[static_cast<int>(most::FuzzTemplate::kMini)]),
      static_cast<unsigned long long>(
          campaign
              .by_template[static_cast<int>(most::FuzzTemplate::kStandard)]),
      static_cast<unsigned long long>(
          campaign
              .by_template[static_cast<int>(most::FuzzTemplate::kFullMost)]),
      static_cast<unsigned long long>(
          campaign
              .by_template[static_cast<int>(most::FuzzTemplate::kCentrifuge)]),
      static_cast<unsigned long long>(campaign.frames_corrupted),
      static_cast<unsigned long long>(campaign.auth_refreshes),
      campaign.seconds, campaign.seeds_per_hour(), campaign_events_per_sec);

  std::string json = util::Format(
      "{\n  \"experiment\": \"E14\",\n  \"seeds\": %llu,\n"
      "  \"failures\": %llu,\n  \"wall_seconds\": %.3f,\n"
      "  \"seeds_per_hour\": %.1f,\n  \"virtual_events\": %llu,\n"
      "  \"events_per_second\": %.1f,\n  \"site_crashes\": %llu,\n"
      "  \"site_recoveries\": %llu,\n  \"transactions_recovered\": %llu,\n"
      "  \"inflight_failed\": %llu,\n",
      static_cast<unsigned long long>(seed_count),
      static_cast<unsigned long long>(failures), elapsed, seeds_per_hour,
      static_cast<unsigned long long>(total_events), events_per_sec,
      static_cast<unsigned long long>(total_crashes),
      static_cast<unsigned long long>(total_recoveries),
      static_cast<unsigned long long>(total_txns_recovered),
      static_cast<unsigned long long>(total_inflight_failed));
  json += util::Format(
      "  \"campaign_seeds\": %llu,\n  \"campaign_failures\": %llu,\n"
      "  \"campaign_checked\": %llu,\n  \"campaign_wall_seconds\": %.3f,\n"
      "  \"campaign_seeds_per_hour\": %.1f,\n"
      "  \"campaign_virtual_events\": %llu,\n"
      "  \"campaign_events_per_second\": %.1f,\n"
      "  \"campaign_mini\": %llu,\n  \"campaign_standard\": %llu,\n"
      "  \"campaign_full_most\": %llu,\n  \"campaign_centrifuge\": %llu,\n"
      "  \"campaign_frames_corrupted\": %llu,\n"
      "  \"campaign_auth_refreshes\": %llu,\n  \"runs\": [\n",
      static_cast<unsigned long long>(campaign.seeds),
      static_cast<unsigned long long>(campaign.failures),
      static_cast<unsigned long long>(campaign.checked), campaign.seconds,
      campaign.seeds_per_hour(),
      static_cast<unsigned long long>(campaign.events),
      campaign_events_per_sec,
      static_cast<unsigned long long>(
          campaign.by_template[static_cast<int>(most::FuzzTemplate::kMini)]),
      static_cast<unsigned long long>(
          campaign
              .by_template[static_cast<int>(most::FuzzTemplate::kStandard)]),
      static_cast<unsigned long long>(
          campaign
              .by_template[static_cast<int>(most::FuzzTemplate::kFullMost)]),
      static_cast<unsigned long long>(
          campaign
              .by_template[static_cast<int>(most::FuzzTemplate::kCentrifuge)]),
      static_cast<unsigned long long>(campaign.frames_corrupted),
      static_cast<unsigned long long>(campaign.auth_refreshes));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SeedResult& r = results[i];
    json += util::Format(
        "    {\"seed\": %llu, \"sites\": %zu, \"steps\": %zu, "
        "\"faults\": %zu, \"events\": %llu, \"seconds\": %.4f, "
        "\"ok\": %s}%s\n",
        static_cast<unsigned long long>(r.seed), r.sites, r.steps, r.faults,
        static_cast<unsigned long long>(r.events), r.seconds,
        r.ok ? "true" : "false", i + 1 == results.size() ? "" : ",");
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen("BENCH_fuzz.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fuzz.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_fuzz.json (%zu standard seeds + %llu campaign)\n",
              results.size(),
              static_cast<unsigned long long>(campaign.seeds));

  std::printf(
      "shape: virtual time decouples schedule exploration from wall time —\n"
      "a multi-second simulated experiment (WAN latencies, outages, retry\n"
      "backoff, heartbeats) replays in milliseconds, so the oracle stack\n"
      "sweeps hundreds of thousands of distinct fault schedules per hour\n"
      "on one core.\n");
  return (failures == 0 && campaign.failures == 0) ? 0 : 1;
}
