// E14 — deterministic simulation fuzzing throughput. The kVirtual delivery
// mode makes a whole distributed MOST run a pure function of its seed, so
// schedule-space exploration is CPU-bound: this bench measures how many
// random scenarios (and how many totally ordered virtual events) the
// fuzzer pushes through per unit wall time, with every oracle enabled —
// completion, nees-lint protocol replay (including the crash-consistency
// rule), exactly-once-per-site-per-step, and the same-seed double-run
// byte-determinism check (so each seed runs its experiment twice). The
// schedule space includes whole-site crash/restarts recovered through the
// write-ahead log, so the crash totals below are also a coverage report.
//
// Emits BENCH_fuzz.json and exits non-zero if any seed in the block fails
// an oracle (the CI smoke leg runs a larger block under ASan; this bench
// tracks the throughput trajectory).
#include <cstdio>
#include <string>
#include <vector>

#include "most/fuzz.h"
#include "util/clock.h"
#include "util/strings.h"

using namespace nees;

namespace {

struct SeedResult {
  std::uint64_t seed = 0;
  std::size_t sites = 0;
  std::size_t steps = 0;
  std::size_t faults = 0;
  std::uint64_t events = 0;  // both runs of the determinism pair
  double seconds = 0.0;
  bool ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t first_seed = 1;
  const std::uint64_t seed_count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 40;

  std::vector<SeedResult> results;
  std::uint64_t failures = 0;
  std::uint64_t total_events = 0;
  std::uint64_t total_crashes = 0;
  std::uint64_t total_recoveries = 0;
  std::uint64_t total_txns_recovered = 0;
  std::uint64_t total_inflight_failed = 0;
  const util::Stopwatch total_watch;

  for (std::uint64_t seed = first_seed; seed < first_seed + seed_count;
       ++seed) {
    const most::FuzzScenario scenario = most::GenerateScenario(seed);
    const util::Stopwatch watch;
    const most::FuzzOutcome outcome = most::RunFuzzCaseChecked(scenario);

    SeedResult r;
    r.seed = seed;
    r.sites = scenario.sites;
    r.steps = scenario.steps;
    r.faults = scenario.faults.size();
    r.events = 2 * outcome.events_processed;
    r.seconds = watch.ElapsedSeconds();
    r.ok = outcome.ok();
    results.push_back(r);

    total_events += r.events;
    total_crashes += outcome.site_crashes;
    total_recoveries += outcome.site_recoveries;
    total_txns_recovered += outcome.transactions_recovered;
    total_inflight_failed += outcome.inflight_failed;
    if (!outcome.ok()) {
      ++failures;
      std::fprintf(stderr, "FAIL seed=%llu: %s\n  replay: %s\n",
                   static_cast<unsigned long long>(seed),
                   outcome.failures.front().c_str(),
                   most::ReplayCommand(seed, most::kAllFaults).c_str());
    }
  }

  const double elapsed = total_watch.ElapsedSeconds();
  const double seeds_per_hour =
      elapsed > 0.0 ? 3600.0 * static_cast<double>(seed_count) / elapsed : 0.0;
  const double events_per_sec =
      elapsed > 0.0 ? static_cast<double>(total_events) / elapsed : 0.0;

  std::printf(
      "E14: %llu seeds (all oracles + double-run determinism), "
      "%llu failures\n     %.2fs wall -> %.0f seeds/hour, "
      "%.0f virtual events/sec\n"
      "     crash/restart: %llu crashes, %llu recoveries, "
      "%llu txns replayed from WAL, %llu crash-marked\n",
      static_cast<unsigned long long>(seed_count),
      static_cast<unsigned long long>(failures), elapsed, seeds_per_hour,
      events_per_sec, static_cast<unsigned long long>(total_crashes),
      static_cast<unsigned long long>(total_recoveries),
      static_cast<unsigned long long>(total_txns_recovered),
      static_cast<unsigned long long>(total_inflight_failed));

  std::string json = util::Format(
      "{\n  \"experiment\": \"E14\",\n  \"seeds\": %llu,\n"
      "  \"failures\": %llu,\n  \"wall_seconds\": %.3f,\n"
      "  \"seeds_per_hour\": %.1f,\n  \"virtual_events\": %llu,\n"
      "  \"events_per_second\": %.1f,\n  \"site_crashes\": %llu,\n"
      "  \"site_recoveries\": %llu,\n  \"transactions_recovered\": %llu,\n"
      "  \"inflight_failed\": %llu,\n  \"runs\": [\n",
      static_cast<unsigned long long>(seed_count),
      static_cast<unsigned long long>(failures), elapsed, seeds_per_hour,
      static_cast<unsigned long long>(total_events), events_per_sec,
      static_cast<unsigned long long>(total_crashes),
      static_cast<unsigned long long>(total_recoveries),
      static_cast<unsigned long long>(total_txns_recovered),
      static_cast<unsigned long long>(total_inflight_failed));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SeedResult& r = results[i];
    json += util::Format(
        "    {\"seed\": %llu, \"sites\": %zu, \"steps\": %zu, "
        "\"faults\": %zu, \"events\": %llu, \"seconds\": %.4f, "
        "\"ok\": %s}%s\n",
        static_cast<unsigned long long>(r.seed), r.sites, r.steps, r.faults,
        static_cast<unsigned long long>(r.events), r.seconds,
        r.ok ? "true" : "false", i + 1 == results.size() ? "" : ",");
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen("BENCH_fuzz.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fuzz.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_fuzz.json (%zu seeds)\n", results.size());

  std::printf(
      "shape: virtual time decouples schedule exploration from wall time —\n"
      "a multi-second simulated experiment (WAN latencies, outages, retry\n"
      "backoff, heartbeats) replays in milliseconds, so the oracle stack\n"
      "sweeps thousands of distinct fault schedules per hour on one core.\n");
  return failures == 0 ? 0 : 1;
}
