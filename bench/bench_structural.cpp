// E4 — Fig. 4: the MOST structure and the structural substrate.
//
// Prints the frame's modal/stiffness summary (the numbers the substructure
// split is derived from), then measures assembly, factorization,
// condensation, and integrator step rates.
#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "most/most.h"
#include "structural/frame.h"
#include "structural/integrator.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace nees;

namespace {

void PrintFrameSummary() {
  std::printf("==== E4 (Fig. 4): the MOST two-bay single-story frame ====\n\n");
  most::MostOptions options;
  structural::FrameModel frame = most::BuildMostFrame(options);
  const structural::Matrix k = frame.AssembleStiffness();
  const structural::Matrix m = frame.AssembleMass();

  const most::StiffnessBreakdown breakdown =
      most::ComputeStiffnessBreakdown(options);
  util::TextTable table({"quantity", "value"});
  table.AddRow({"free DOFs", std::to_string(frame.FreeDofCount())});
  table.AddRow({"elements", std::to_string(frame.element_count())});
  table.AddRow({"UIUC column k (pin top)",
                util::Format("%.4g N/m", breakdown.left_n_per_m)});
  table.AddRow({"NCSA center k",
                util::Format("%.4g N/m", breakdown.middle_n_per_m)});
  table.AddRow({"CU column k (rigid top)",
                util::Format("%.4g N/m", breakdown.right_n_per_m)});
  table.AddRow({"total lateral k",
                util::Format("%.4g N/m", breakdown.total())});

  const double omega = std::sqrt(breakdown.total() / options.story_mass_kg);
  table.AddRow({"reduced-model period",
                util::Format("%.3f s", 2.0 * M_PI / omega)});
  table.AddRow({"central-difference dt limit",
                util::Format("%.3f s (MOST used %.3f)", 2.0 / omega,
                             options.dt_seconds)});

  // Full-frame first mode via inverse power iteration on M^-1 K.
  auto m_inv = structural::Inverse(m);
  if (m_inv.ok()) {
    auto lambda = structural::SmallestEigenvalue(*m_inv * k);
    if (lambda.ok() && *lambda > 0) {
      table.AddRow({"full-frame first mode",
                    util::Format("%.3f s", 2.0 * M_PI / std::sqrt(*lambda))});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

void PrintIntegratorStabilityTable() {
  std::printf("==== E4b: PSD integrator stability (central difference vs "
              "operator splitting) ====\n\n");
  // SDOF with omega = 20 rad/s -> CD limit dt = 0.1 s. Sweep dt across the
  // limit; OS (exact K0) stays physical everywhere.
  structural::Matrix m = structural::Matrix::Identity(1) * 100.0;
  structural::Matrix c = structural::Matrix::Identity(1) * 80.0;  // 2% zeta
  structural::Matrix k = structural::Matrix::Identity(1) * 4.0e4;
  util::TextTable table({"dt [s]", "dt/dt_limit", "CD peak [m]",
                         "OS peak [m]"});
  for (const double dt : {0.02, 0.08, 0.11, 0.15, 0.3}) {
    const structural::GroundMotion motion =
        structural::Harmonic(dt, 400, 1.0, 0.5);
    structural::ElasticSubstructure cd_model(k);
    structural::CentralDifferencePsd cd(m, c, {1.0});
    auto cd_history = cd.Integrate(
        motion, [&](std::size_t, const structural::Vector& d) {
          return cd_model.Restore(d);
        });
    structural::ElasticSubstructure os_model(k);
    structural::OperatorSplittingPsd os(m, c, k, {1.0});
    auto os_history = os.Integrate(
        motion, [&](std::size_t, const structural::Vector& d) {
          return os_model.Restore(d);
        });
    auto fmt_peak = [](double peak) {
      return peak > 100.0 ? std::string("DIVERGED")
                          : util::Format("%.4f", peak);
    };
    table.AddRow({util::Format("%.2f", dt), util::Format("%.2f", dt / 0.1),
                  cd_history.ok() ? fmt_peak(cd_history->PeakDisplacement(0))
                                  : "error",
                  os_history.ok() ? fmt_peak(os_history->PeakDisplacement(0))
                                  : "error"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("(shape: CD blows up past dt/dt_limit = 1; OS is stable at any "
              "dt with K0 >= K —\n why stiff PSD tests use operator "
              "splitting)\n\n");
}

structural::FrameModel MultiStoryFrame(int stories, int bays) {
  most::MostOptions options;
  structural::FrameModel frame;
  std::vector<std::vector<std::size_t>> grid(
      stories + 1, std::vector<std::size_t>(bays + 1));
  for (int level = 0; level <= stories; ++level) {
    for (int col = 0; col <= bays; ++col) {
      grid[level][col] = frame.AddNode(col * options.bay_width_m,
                                       level * options.column_height_m);
      if (level == 0) frame.FixAll(grid[level][col]);
    }
  }
  for (int level = 1; level <= stories; ++level) {
    for (int col = 0; col <= bays; ++col) {
      frame.AddElement(grid[level - 1][col], grid[level][col],
                       options.column_section);
      if (col > 0) {
        frame.AddElement(grid[level][col - 1], grid[level][col],
                         options.beam_section);
      }
    }
  }
  return frame;
}

void BM_AssembleStiffness(benchmark::State& state) {
  structural::FrameModel frame =
      MultiStoryFrame(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.AssembleStiffness());
  }
  state.SetLabel(std::to_string(frame.FreeDofCount()) + " DOFs");
}
BENCHMARK(BM_AssembleStiffness)->Arg(1)->Arg(4)->Arg(10);

void BM_LuFactorAndSolve(benchmark::State& state) {
  structural::FrameModel frame =
      MultiStoryFrame(static_cast<int>(state.range(0)), 2);
  const structural::Matrix k = frame.AssembleStiffness();
  const structural::Vector load(k.rows(), 100.0);
  for (auto _ : state) {
    auto lu = structural::LuFactorization::Compute(k);
    benchmark::DoNotOptimize(lu->Solve(load));
  }
  state.SetLabel(std::to_string(k.rows()) + " DOFs");
}
BENCHMARK(BM_LuFactorAndSolve)->Arg(1)->Arg(4)->Arg(10);

void BM_GuyanCondensation(benchmark::State& state) {
  structural::FrameModel frame =
      MultiStoryFrame(static_cast<int>(state.range(0)), 2);
  // Retain one lateral DOF per story (nodes are numbered level-major).
  std::vector<std::size_t> retained;
  for (int story = 1; story <= state.range(0); ++story) {
    const auto dof =
        frame.DofIndex(static_cast<std::size_t>(story * 3),
                       structural::Dof::kUx);
    if (dof) retained.push_back(*dof);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.CondenseStiffness(retained));
  }
  state.SetLabel(std::to_string(frame.FreeDofCount()) + " -> " +
                 std::to_string(retained.size()) + " DOFs");
}
BENCHMARK(BM_GuyanCondensation)->Arg(1)->Arg(4)->Arg(10);

void BM_NewmarkStepRate(benchmark::State& state) {
  structural::FrameModel frame =
      MultiStoryFrame(static_cast<int>(state.range(0)), 2);
  const structural::Matrix k = frame.AssembleStiffness();
  const structural::Matrix m = frame.AssembleMass();
  const structural::Matrix c =
      structural::FrameModel::RayleighDamping(m, k, 10.0, 60.0, 0.02);
  const structural::Vector iota(k.rows(), 1.0);
  const structural::GroundMotion motion =
      structural::Harmonic(0.01, 500, 1.0, 2.0);
  structural::NewmarkBeta newmark(m, c, k, iota);
  for (auto _ : state) {
    benchmark::DoNotOptimize(newmark.Integrate(motion));
  }
  state.SetItemsProcessed(state.iterations() * 500);
  state.SetLabel(std::to_string(k.rows()) + " DOFs, 500 steps");
}
BENCHMARK(BM_NewmarkStepRate)->Arg(1)->Arg(4);

void BM_BoucWenRestore(benchmark::State& state) {
  structural::BoucWenSubstructure::Params params;
  structural::BoucWenSubstructure model(params);
  double d = 0.0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    d = 0.02 * std::sin(0.01 * static_cast<double>(i++));
    benchmark::DoNotOptimize(model.Restore({d}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoucWenRestore);

void BM_SynthesizeQuake1500(benchmark::State& state) {
  structural::SyntheticQuakeParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(structural::SynthesizeQuake(params));
  }
}
BENCHMARK(BM_SynthesizeQuake1500);

}  // namespace

int main(int argc, char** argv) {
  PrintFrameSummary();
  PrintIntegratorStabilityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
