// E7 — Fig. 10 + §2.2/§3.2: the two-path monitoring design.
//
// NSDS is best-effort ("earthquake engineering experiments often produce
// more data than can be streamed reliably in real-time"): we measure
// delivery and loss vs subscriber count and link loss, and decimation as
// load shedding. The DAQ -> drop-file -> harvest -> repository path is the
// reliable archive; we measure its end-to-end throughput.
#include <cstdio>
#include <filesystem>

#include "daq/daq.h"
#include "net/network.h"
#include "nsds/nsds.h"
#include "repo/facade.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace nees;

int main() {
  std::printf("==== E7 (Fig. 10, §2.2): NSDS best-effort streaming ====\n\n");
  {
    util::TextTable table({"subscribers", "link loss", "frames published",
                           "frames delivered", "delivery %", "gaps seen"});
    for (const int subscribers : {1, 10, 50, 130}) {
      for (const double loss : {0.0, 0.01, 0.10}) {
        net::Network network(net::DeliveryMode::kImmediate, 7);
        nsds::NsdsServer server(&network, "nsds");
        (void)server.Start();
        std::vector<std::unique_ptr<nsds::NsdsSubscriber>> viewers;
        for (int i = 0; i < subscribers; ++i) {
          auto viewer = std::make_unique<nsds::NsdsSubscriber>(
              &network, "viewer" + std::to_string(i));
          (void)viewer->SubscribeTo("nsds", "");
          net::LinkModel lossy;
          lossy.drop_probability = loss;
          network.SetLink("nsds", viewer->endpoint(), lossy);
          viewers.push_back(std::move(viewer));
        }
        const int frames = 500;
        for (int i = 0; i < frames; ++i) {
          server.Publish({{"most.displacement", i * 20'000, 0.001 * i},
                          {"most.force.UIUC", i * 20'000, 10.0 * i}});
        }
        std::uint64_t delivered = 0, gaps = 0;
        for (const auto& viewer : viewers) {
          delivered += viewer->stats().frames_received;
          gaps += viewer->stats().gaps_detected;
        }
        const std::uint64_t sent = server.stats().frames_sent;
        table.AddRow({std::to_string(subscribers), util::Format("%.2f", loss),
                      std::to_string(frames), std::to_string(delivered),
                      util::Format("%.1f", 100.0 * delivered /
                                               std::max<std::uint64_t>(sent,
                                                                       1)),
                      std::to_string(gaps)});
      }
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("(best-effort: losses never stall the publisher; subscribers "
                "see them as gaps)\n\n");
  }

  std::printf("==== E7b: decimation as load shedding ====\n\n");
  {
    util::TextTable table({"decimation", "frames offered", "frames sent",
                           "received", "gaps"});
    for (const int decimation : {1, 2, 5, 10}) {
      net::Network network;
      nsds::NsdsServer server(&network, "nsds");
      (void)server.Start();
      nsds::NsdsSubscriber viewer(&network, "slow-viewer");
      (void)viewer.SubscribeTo("nsds", "", decimation);
      const int frames = 1000;
      for (int i = 0; i < frames; ++i) {
        server.Publish({{"ch", i, 1.0 * i}});
      }
      table.AddRow({std::to_string(decimation), std::to_string(frames),
                    std::to_string(server.stats().frames_sent),
                    std::to_string(viewer.stats().frames_received),
                    std::to_string(viewer.stats().gaps_detected)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf("==== E7c: DAQ -> drop dir -> harvest -> repository pipeline "
              "====\n\n");
  {
    util::TextTable table({"samples/file", "files", "flush+harvest [ms]",
                           "samples/s", "archived files"});
    const auto dir = std::filesystem::temp_directory_path() / "nees-bench-daq";
    for (const int samples_per_file : {100, 1000, 10000}) {
      std::filesystem::remove_all(dir);
      net::Network network;
      repo::RepositoryFacade repository(&network, "repo");
      (void)repository.Start();
      net::RpcClient rpc(&network, "ingest");
      repo::IngestionTool tool(&rpc, "repo", "bench", "site");
      daq::DaqSystem daq;
      daq.AddChannel({"ch", "m", 1000.0});
      daq::Harvester harvester(
          dir, [&](const std::filesystem::path& file,
                   const std::vector<nsds::DataSample>& samples) {
            return tool.IngestDropFile(file, samples);
          });

      const int files = 10;
      const util::Stopwatch watch;
      for (int f = 0; f < files; ++f) {
        for (int i = 0; i < samples_per_file; ++i) {
          (void)daq.Record("ch", f * samples_per_file + i, 0.001 * i);
        }
        (void)daq.Flush(dir, "bench");
        (void)harvester.ScanOnce();
      }
      const double ms = watch.ElapsedMicros() / 1000.0;
      const double rate = files * samples_per_file / (ms / 1000.0);
      table.AddRow({std::to_string(samples_per_file), std::to_string(files),
                    util::Format("%.1f", ms), util::Format("%.0f", rate),
                    std::to_string(repository.nfms().List("bench/").size())});
      std::filesystem::remove_all(dir);
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("(the archive path is reliable: every drop file lands in the "
                "repository with\n checksummed content and metadata)\n");
  }
  return 0;
}
