// E3 — Fig. 3: the data and metadata repository.
//
// Regenerates: GridFTP-sim transfer throughput vs parallel-stream count
// under a bandwidth-limited WAN (the reason GridFTP stripes transfers),
// transfer integrity under loss, NMDS metadata operation rates, and NFMS
// negotiation cost.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "net/network.h"
#include "repo/facade.h"
#include "repo/gridftp.h"
#include "repo/nfms.h"
#include "repo/nmds.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace nees;

namespace {

repo::Bytes RandomContent(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  repo::Bytes content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng.NextU64());
  return content;
}

void PrintStreamSweep() {
  std::printf("==== E3 (Fig. 3): GridFTP-sim throughput vs stream count "
              "====\n\n");
  // Scheduled network with a bandwidth-limited, latency-bearing link: the
  // per-chunk RTT dominates a single stream; striping amortizes it.
  util::TextTable table({"streams", "file [KiB]", "wall [ms]",
                         "goodput [MiB/s]", "chunks", "verified"});
  const std::size_t file_size = 512 * 1024;
  for (const int streams : {1, 2, 4, 8}) {
    net::Network network(net::DeliveryMode::kScheduled);
    net::LinkModel wan;
    wan.latency_micros = 300;               // 0.3 ms one way
    wan.bytes_per_second = 200.0 * 1024 * 1024;
    network.SetDefaultLink(wan);

    repo::FileStore store;
    store.Put("big.bin", RandomContent(file_size, 7));
    repo::GridFtpServer server(&network, "gftp", &store);
    if (!server.Start().ok()) return;
    net::RpcClient rpc(&network, "client");
    repo::TransferOptions options;
    options.streams = streams;
    options.chunk_bytes = 32 * 1024;
    repo::GridFtpClient client(&rpc, options);

    const util::Stopwatch watch;
    auto content = client.Download("gftp", "big.bin");
    const double ms = watch.ElapsedMicros() / 1000.0;
    if (!content.ok()) return;
    table.AddRow({std::to_string(streams),
                  std::to_string(file_size / 1024),
                  util::Format("%.1f", ms),
                  util::Format("%.1f", file_size / 1048576.0 / (ms / 1000.0)),
                  std::to_string(client.last_report().chunks), "sha256 ok"});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void PrintLossyTransferTable() {
  std::printf("==== E3b: transfer integrity under loss ====\n\n");
  util::TextTable table({"loss rate", "outcome", "chunks", "retried chunks"});
  for (const double loss : {0.0, 0.02, 0.10}) {
    net::Network network(net::DeliveryMode::kImmediate, 11);
    repo::FileStore store;
    store.Put("f.bin", RandomContent(256 * 1024, 9));
    repo::GridFtpServer server(&network, "gftp", &store);
    if (!server.Start().ok()) return;
    net::LinkModel lossy;
    lossy.drop_probability = loss;
    network.SetLink("client", "gftp", lossy);
    network.SetLink("gftp", "client", lossy);
    net::RpcClient rpc(&network, "client");
    repo::TransferOptions options;
    options.chunk_retries = 10;
    repo::GridFtpClient client(&rpc, options);
    auto content = client.Download("gftp", "f.bin");
    table.AddRow({util::Format("%.2f", loss),
                  content.ok() ? "complete, checksum ok"
                               : content.status().ToString(),
                  std::to_string(client.last_report().chunks),
                  std::to_string(client.last_report().retried_chunks)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

// --- metadata micro-benchmarks -------------------------------------------------

void BM_NmdsPut(benchmark::State& state) {
  repo::NmdsService nmds;
  std::size_t i = 0;
  for (auto _ : state) {
    repo::MetadataObject object;
    object.id = "obj" + std::to_string(i++);
    object.type = "daq-data";
    object.fields["site"] = "UIUC";
    object.fields["samples"] = "1500";
    benchmark::DoNotOptimize(nmds.Put(object, "bench"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NmdsPut);

void BM_NmdsPutWithSchemaValidation(benchmark::State& state) {
  repo::NmdsService nmds;
  repo::MetadataObject schema;
  schema.id = "schema.daq";
  schema.type = "schema";
  schema.fields["field.site"] = "string";
  schema.fields["field.samples"] = "number";
  (void)nmds.Put(schema, "admin");
  std::size_t i = 0;
  for (auto _ : state) {
    repo::MetadataObject object;
    object.id = "obj" + std::to_string(i++);
    object.type = "daq-data";
    object.fields["schema"] = "schema.daq";
    object.fields["site"] = "UIUC";
    object.fields["samples"] = "1500";
    benchmark::DoNotOptimize(nmds.Put(object, "bench"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NmdsPutWithSchemaValidation);

void BM_NmdsGetLatest(benchmark::State& state) {
  repo::NmdsService nmds;
  repo::MetadataObject object;
  // std::string temporaries take the move-assign path, dodging a GCC 12 -O3
  // -Wrestrict false positive in basic_string::assign(const char*).
  object.id = std::string("hot");
  object.type = std::string("t");
  for (int version = 0; version < 50; ++version) {
    (void)nmds.Put(object, "bench");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nmds.Get("hot"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NmdsGetLatest);

void BM_NfmsNegotiate(benchmark::State& state) {
  repo::NfmsService nfms;
  for (int i = 0; i < 1000; ++i) {
    repo::FileEntry entry;
    entry.logical_name = "most/daq/file" + std::to_string(i);
    entry.server_endpoint = "gftp";
    entry.physical_path = "phys/" + std::to_string(i);
    nfms.RegisterFile(entry);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nfms.Negotiate("most/daq/file500"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NfmsNegotiate);

void BM_FacadeIngestSmallFile(benchmark::State& state) {
  net::Network network;
  repo::RepositoryFacade facade(&network, "repo");
  (void)facade.Start();
  const repo::Bytes content = RandomContent(4096, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(facade.Ingest(
        "bench/f" + std::to_string(i++), content, "daq-data", {}));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_FacadeIngestSmallFile);

}  // namespace

int main(int argc, char** argv) {
  PrintStreamSweep();
  PrintLossyTransferTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
