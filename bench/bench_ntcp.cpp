// E1 + E2 — Fig. 1 (NTCP state machine) and Fig. 2 (server + plugin).
//
// Prints the regenerated state-transition table, then measures the
// transaction lifecycle and the per-plugin dispatch overhead with
// google-benchmark.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "net/network.h"
#include "ntcp/client.h"
#include "ntcp/server.h"
#include "plugins/mplugin.h"
#include "plugins/policy_plugin.h"
#include "plugins/simulation_plugin.h"
#include "structural/substructure.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace nees;

namespace {

std::unique_ptr<plugins::SimulationPlugin> ElasticPlugin(double stiffness) {
  auto plugin = std::make_unique<plugins::SimulationPlugin>();
  structural::Matrix k(1, 1);
  k(0, 0) = stiffness;
  plugin->AddControlPoint(
      "cp", std::make_unique<structural::ElasticSubstructure>(k));
  return plugin;
}

ntcp::Proposal MakeProposal(const std::string& id, double d) {
  ntcp::Proposal proposal;
  proposal.transaction_id = id;
  proposal.actions.push_back({"cp", {d}, {}});
  return proposal;
}

void PrintTransitionTable() {
  std::printf("==== E1 (Fig. 1): NTCP transaction state transitions ====\n");
  util::TextTable table({"from \\ to", "proposed", "accepted", "rejected",
                         "executing", "completed", "cancelled", "failed",
                         "expired"});
  for (int from = 0; from <= static_cast<int>(ntcp::TransactionState::kExpired);
       ++from) {
    std::vector<std::string> row;
    row.push_back(std::string(ntcp::TransactionStateName(
        static_cast<ntcp::TransactionState>(from))));
    for (int to = 0; to <= static_cast<int>(ntcp::TransactionState::kExpired);
         ++to) {
      row.push_back(
          ntcp::IsLegalTransition(static_cast<ntcp::TransactionState>(from),
                                  static_cast<ntcp::TransactionState>(to))
              ? "yes"
              : ".");
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
}

// --- lifecycle micro-benchmarks ----------------------------------------------

void BM_ProposeExecuteLifecycle(benchmark::State& state) {
  net::Network network;
  ntcp::NtcpServer server(&network, "ntcp.bench", ElasticPlugin(1e6));
  (void)server.Start();
  net::RpcClient rpc(&network, "client");
  ntcp::NtcpClient client(&rpc, "ntcp.bench");
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string id = util::Format("t%zu", i++);
    benchmark::DoNotOptimize(client.Propose(MakeProposal(id, 0.001)));
    benchmark::DoNotOptimize(client.Execute(id));
    if (i % 4096 == 0) {
      state.PauseTiming();
      server.GarbageCollect(0);  // keep the table bounded
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProposeExecuteLifecycle);

void BM_ProposeOnly(benchmark::State& state) {
  net::Network network;
  ntcp::NtcpServer server(&network, "ntcp.bench", ElasticPlugin(1e6));
  (void)server.Start();
  net::RpcClient rpc(&network, "client");
  ntcp::NtcpClient client(&rpc, "ntcp.bench");
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.Propose(MakeProposal(util::Format("t%zu", i++), 0.001)));
    if (i % 4096 == 0) {
      state.PauseTiming();
      server.GarbageCollect(0);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProposeOnly);

void BM_GetTransaction(benchmark::State& state) {
  net::Network network;
  ntcp::NtcpServer server(&network, "ntcp.bench", ElasticPlugin(1e6));
  (void)server.Start();
  net::RpcClient rpc(&network, "client");
  ntcp::NtcpClient client(&rpc, "ntcp.bench");
  (void)client.Propose(MakeProposal("t", 0.001));
  (void)client.Execute("t");
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.GetTransaction("t"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GetTransaction);

// E2: dispatch overhead per plugin configuration (server-side only, no
// network) — the cost of the Fig. 2 plugin boundary itself.
void BM_PluginDispatch_Simulation(benchmark::State& state) {
  net::Network network;
  ntcp::NtcpServer server(&network, "ntcp.bench", ElasticPlugin(1e6));
  (void)server.Start();
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string id = util::Format("t%zu", i++);
    server.Propose(MakeProposal(id, 0.001));
    benchmark::DoNotOptimize(server.Execute(id));
    if (i % 4096 == 0) {
      state.PauseTiming();
      server.GarbageCollect(0);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PluginDispatch_Simulation);

void BM_PluginDispatch_PolicyWrapped(benchmark::State& state) {
  net::Network network;
  ntcp::NtcpServer server(
      &network, "ntcp.bench",
      std::make_unique<plugins::LimitPolicyPlugin>(plugins::SitePolicy{},
                                                   ElasticPlugin(1e6)));
  (void)server.Start();
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string id = util::Format("t%zu", i++);
    server.Propose(MakeProposal(id, 0.001));
    benchmark::DoNotOptimize(server.Execute(id));
    if (i % 4096 == 0) {
      state.PauseTiming();
      server.GarbageCollect(0);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PluginDispatch_PolicyWrapped);

void BM_PluginDispatch_MpluginPollingBackend(benchmark::State& state) {
  net::Network network;
  auto mplugin = std::make_unique<plugins::MPlugin>();
  auto* mplugin_raw = mplugin.get();
  ntcp::NtcpServer server(&network, "ntcp.bench", std::move(mplugin));
  (void)server.Start();
  auto models = std::make_shared<std::map<
      std::string, std::unique_ptr<structural::SubstructureModel>>>();
  structural::Matrix k(1, 1);
  k(0, 0) = 1e6;
  (*models)["cp"] = std::make_unique<structural::ElasticSubstructure>(k);
  plugins::PollingBackend backend(mplugin_raw,
                                  plugins::MakeSimulationCompute(models));
  backend.Start();
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string id = util::Format("t%zu", i++);
    server.Propose(MakeProposal(id, 0.001));
    benchmark::DoNotOptimize(server.Execute(id));
    if (i % 4096 == 0) {
      state.PauseTiming();
      server.GarbageCollect(0);
      state.ResumeTiming();
    }
  }
  backend.Stop();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PluginDispatch_MpluginPollingBackend);

// E2: negotiation — rejection rates under tightening site policy.
void PrintNegotiationTable() {
  std::printf("==== E2 (Fig. 2): proposal negotiation under site policy ====\n");
  util::TextTable table({"site limit [m]", "commands", "accepted", "rejected",
                         "reject %"});
  for (double limit : {0.15, 0.10, 0.05, 0.02}) {
    net::Network network;
    plugins::SitePolicy policy;
    policy.max_abs_displacement_m = limit;
    ntcp::NtcpServer server(
        &network, "ntcp.bench",
        std::make_unique<plugins::LimitPolicyPlugin>(policy,
                                                     ElasticPlugin(1e6)));
    (void)server.Start();
    util::Rng rng(7);
    const int commands = 2000;
    int accepted = 0;
    for (int i = 0; i < commands; ++i) {
      // Command amplitudes drawn from the MOST drift distribution scale.
      const double d = rng.Gaussian(0.0, 0.05);
      if (server.Propose(MakeProposal(util::Format("t%d", i), d)).accepted) {
        ++accepted;
      }
    }
    table.AddRow({util::Format("%.2f", limit), std::to_string(commands),
                  std::to_string(accepted),
                  std::to_string(commands - accepted),
                  util::Format("%.1f", 100.0 * (commands - accepted) /
                                           commands)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  PrintTransitionTable();
  PrintNegotiationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
