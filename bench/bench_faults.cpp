// E6 — §3.4: the fault-tolerance result.
//
// Part 1 regenerates the deterministic July 30 narrative at full scale:
// several transient bursts recovered during the day, then a longer outage
// at step 1493 that kills the partially-hardened coordinator while the
// fully fault-tolerant one completes all 1500 steps.
//
// Part 2 sweeps random per-message loss rates for both coordinator
// policies and reports steps completed — the paper-shaped claim is that
// naive completion collapses with any loss while NTCP retries hold the
// line until loss rates get extreme.
#include <cstdio>

#include "most/most.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace nees;

namespace {

psd::RunReport RunWithSchedule(std::size_t steps, psd::FaultPolicy policy,
                               int rpc_attempts,
                               const std::vector<std::pair<std::size_t, int>>&
                                   bursts) {
  net::Network network;
  most::MostOptions options;
  options.steps = steps;
  options.hybrid = false;
  options.with_repository = false;  // isolate the control path
  options.with_streaming = false;
  most::MostExperiment experiment(&network, &util::SystemClock::Instance(),
                                  options);
  if (!experiment.Start().ok()) return {};
  net::RpcClient rpc(&network, "coordinator");
  auto config = experiment.MakeCoordinatorConfig(policy, "fault-run");
  config.retry.max_attempts = rpc_attempts;
  config.retry.initial_backoff_micros = 1000;
  psd::SimulationCoordinator coordinator(config, &rpc,
                                         &util::SystemClock::Instance());
  most::MostFaultSchedule schedule(&network, "coordinator",
                                   most::MostExperiment::kNtcpCu);
  for (const auto& [step, messages] : bursts) {
    schedule.AddTransientBurst(step, messages);
  }
  coordinator.SetStepObserver(
      [&schedule](std::size_t step, const structural::Vector&,
                  const std::vector<ntcp::TransactionResult>&) {
        schedule.OnStep(step);
      });
  return coordinator.Run();
}

psd::RunReport RunWithRandomLoss(std::size_t steps, psd::FaultPolicy policy,
                                 double drop_probability,
                                 std::uint64_t seed) {
  net::Network network(net::DeliveryMode::kImmediate, seed);
  most::MostOptions options;
  options.steps = steps;
  options.hybrid = false;
  options.with_repository = false;
  options.with_streaming = false;
  most::MostExperiment experiment(&network, &util::SystemClock::Instance(),
                                  options);
  if (!experiment.Start().ok()) return {};
  // Loss applies to all coordinator <-> site traffic, both directions.
  net::LinkModel lossy;
  lossy.drop_probability = drop_probability;
  for (const char* site :
       {most::MostExperiment::kNtcpUiuc, most::MostExperiment::kNtcpNcsa,
        most::MostExperiment::kNtcpCu}) {
    network.SetLink("coordinator", site, lossy);
    network.SetLink(site, "coordinator", lossy);
  }
  net::RpcClient rpc(&network, "coordinator");
  auto config = experiment.MakeCoordinatorConfig(policy, "loss-run");
  config.retry.initial_backoff_micros = 1000;
  psd::SimulationCoordinator coordinator(config, &rpc,
                                         &util::SystemClock::Instance());
  return coordinator.Run();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t full_steps =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1500;

  std::printf("==== E6 (§3.4): fault tolerance — the step-1493 narrative "
              "====\n\n");
  // Transients at steps 300/700/1100 (1–2 lost messages each: within the
  // public coordinator's RPC retry budget), fatal 4-message burst at 1493
  // (exhausts 3 RPC attempts; only step-level re-proposal survives it).
  const std::vector<std::pair<std::size_t, int>> schedule = {
      {full_steps / 5, 1},
      {full_steps * 7 / 15, 2},
      {full_steps * 11 / 15, 1},
      {full_steps * 1493 / 1500, 4},
  };

  util::TextTable narrative({"coordinator", "rpc retries", "step re-propose",
                             "outcome", "steps", "faults recovered"});
  {
    // The 2003 public coordinator: NTCP-level retries but "had not been
    // coded to take advantage of all the fault-tolerance features".
    const psd::RunReport report = RunWithSchedule(
        full_steps, psd::FaultPolicy::kNaive, /*rpc_attempts=*/1, schedule);
    narrative.AddRow({"naive (no retries)", "no", "no",
                      report.completed ? "completed" : "TERMINATED",
                      util::Format("%zu/%zu", report.steps_completed,
                                   report.total_steps),
                      std::to_string(report.transient_faults_recovered)});
  }
  {
    // Partially hardened: RPC retries only (max 3 attempts) — survives the
    // transients, dies at the long burst near step 1493.
    net::Network network;
    most::MostOptions options;
    options.steps = full_steps;
    options.hybrid = false;
    options.with_repository = false;
    options.with_streaming = false;
    most::MostExperiment experiment(&network,
                                    &util::SystemClock::Instance(), options);
    (void)experiment.Start();
    net::RpcClient rpc(&network, "coordinator");
    auto config = experiment.MakeCoordinatorConfig(
        psd::FaultPolicy::kFaultTolerant, "partial");
    config.retry.max_attempts = 3;
    config.retry.initial_backoff_micros = 1000;
    config.max_step_attempts = 1;  // no step-level re-proposal
    psd::SimulationCoordinator coordinator(config, &rpc,
                                           &util::SystemClock::Instance());
    most::MostFaultSchedule faults(&network, "coordinator",
                                   most::MostExperiment::kNtcpCu);
    for (const auto& [step, messages] : schedule) {
      faults.AddTransientBurst(step, messages);
    }
    coordinator.SetStepObserver(
        [&faults](std::size_t step, const structural::Vector&,
                  const std::vector<ntcp::TransactionResult>&) {
          faults.OnStep(step);
        });
    const psd::RunReport report = coordinator.Run();
    narrative.AddRow({"public run (2003)", "yes (3)", "no",
                      report.completed ? "completed" : "TERMINATED",
                      util::Format("%zu/%zu", report.steps_completed,
                                   report.total_steps),
                      std::to_string(report.transient_faults_recovered)});
  }
  {
    const psd::RunReport report =
        RunWithSchedule(full_steps, psd::FaultPolicy::kFaultTolerant,
                        /*rpc_attempts=*/5, schedule);
    narrative.AddRow({"fully fault-tolerant", "yes (5)", "yes (3)",
                      report.completed ? "completed" : "TERMINATED",
                      util::Format("%zu/%zu", report.steps_completed,
                                   report.total_steps),
                      std::to_string(report.transient_faults_recovered)});
  }
  std::printf("%s", narrative.ToString().c_str());
  std::printf("(paper: dry run completed; public run terminated at step 1493 "
              "of 1500)\n\n");

  // ---- Part 2: completion vs random loss rate ----------------------------
  std::printf("==== E6 sweep: steps completed vs per-message loss rate "
              "====\n\n");
  const std::size_t sweep_steps = 400;
  util::TextTable sweep({"loss rate", "naive steps", "naive done",
                         "FT steps", "FT done", "FT faults recovered"});
  for (double loss : {0.0, 0.001, 0.01, 0.05, 0.10}) {
    util::SampleStats naive_steps, ft_steps, ft_recovered;
    int naive_done = 0, ft_done = 0;
    const int trials = 3;
    for (int trial = 0; trial < trials; ++trial) {
      const psd::RunReport naive = RunWithRandomLoss(
          sweep_steps, psd::FaultPolicy::kNaive, loss, 100 + trial);
      naive_steps.Add(static_cast<double>(naive.steps_completed));
      naive_done += naive.completed ? 1 : 0;
      const psd::RunReport ft = RunWithRandomLoss(
          sweep_steps, psd::FaultPolicy::kFaultTolerant, loss, 200 + trial);
      ft_steps.Add(static_cast<double>(ft.steps_completed));
      ft_done += ft.completed ? 1 : 0;
      ft_recovered.Add(static_cast<double>(ft.transient_faults_recovered));
    }
    sweep.AddRow({util::Format("%.3f", loss),
                  util::Format("%.0f/%zu", naive_steps.mean(),
                               sweep_steps - 1),
                  util::Format("%d/%d", naive_done, trials),
                  util::Format("%.0f/%zu", ft_steps.mean(), sweep_steps - 1),
                  util::Format("%d/%d", ft_done, trials),
                  util::Format("%.0f", ft_recovered.mean())});
  }
  std::printf("%s", sweep.ToString().c_str());
  std::printf("(shape: naive completion collapses at any loss; NTCP retries "
              "hold until loss\n rates far beyond WAN reality)\n");
  return 0;
}
