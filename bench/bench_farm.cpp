// E15 — multi-tenant farm throughput. One process hosts the shared grid
// fabric (network, OGSI container, registry, NSDS, CHEF) and runs waves of
// namespaced experiment sessions over it:
//
//   * tenancy sweep — 1 / 10 / 50 / 100 concurrent kinetic-sim Mini-MOST
//     tenants, experiments/sec per level (admit -> place -> run -> reap,
//     the reap verified back to the host baseline each wave);
//   * mixed wave — the nees_farm "mixed" template mix (mini-dominated with
//     full MOST and centrifuge tenants riding along);
//   * participant fan-out — a 10,000-scripted-participant CHEF swarm over
//     one shared NSDS-fed viewer store, participants/sec.
//
// Emits BENCH_farm.json. `--quick [baseline.json]` re-measures the
// 100-tenant level (best of two) and fails if it lands > 20% below the
// committed experiments_per_sec_100 (the E13/E14 quick-gate pattern).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "farm/farm.h"
#include "net/endpoint.h"
#include "net/network.h"
#include "util/clock.h"
#include "util/strings.h"

using namespace nees;

namespace {

struct LevelResult {
  std::size_t tenants = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  double wall_seconds = 0.0;
  double experiments_per_sec = 0.0;
  std::size_t peak_services = 0;
  std::size_t peak_registrations = 0;
  std::size_t services_after_reap = 0;
  std::size_t endpoints_interned = 0;
};

constexpr std::size_t kSessionSteps = 80;
constexpr std::size_t kWorkers = 8;

LevelResult RunMiniWave(std::size_t tenants) {
  net::Network network(net::DeliveryMode::kImmediate);
  farm::FarmOptions options;
  options.workers = kWorkers;
  options.mini_steps = kSessionSteps;
  farm::ExperimentFarm farm(&network, network.clock(), options);
  LevelResult level;
  level.tenants = tenants;
  for (std::size_t i = 0; i < tenants; ++i) {
    (void)farm.Admit({farm::SessionKind::kMiniMost, 0, 0});
  }
  const util::Result<farm::FarmReport> run = farm.RunAll();
  if (!run.ok()) {
    level.failed = tenants;
    return level;
  }
  level.completed = run->completed;
  level.failed = run->failed;
  level.wall_seconds = run->wall_seconds;
  level.experiments_per_sec = run->experiments_per_sec;
  level.peak_services = run->peak_services;
  level.peak_registrations = run->peak_registrations;
  level.services_after_reap = run->services_after_reap;
  level.endpoints_interned = run->endpoints_interned;
  return level;
}

int RunQuickGate(const char* baseline_path) {
  constexpr std::size_t kGateTenants = 100;
  // Best of two: one short wave can read low on a loaded box, which would
  // spuriously trip the 20% floor.
  double best = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    const LevelResult sample = RunMiniWave(kGateTenants);
    if (sample.failed != 0) {
      std::fprintf(stderr, "quick gate: %zu failed sessions in the sample\n",
                   sample.failed);
      return 1;
    }
    best = std::max(best, sample.experiments_per_sec);
  }
  std::FILE* f = std::fopen(baseline_path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "quick gate: cannot open baseline %s\n",
                 baseline_path);
    return 1;
  }
  double baseline = 0.0;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    const char* key = std::strstr(line, "\"experiments_per_sec_100\": ");
    if (key != nullptr &&
        std::sscanf(key, "\"experiments_per_sec_100\": %lf", &baseline) == 1) {
      break;
    }
  }
  std::fclose(f);
  if (baseline <= 0.0) {
    std::fprintf(stderr, "quick gate: no experiments_per_sec_100 baseline "
                 "in %s\n", baseline_path);
    return 1;
  }
  const double floor = 0.8 * baseline;
  std::printf(
      "quick gate: 100-tenant wave %.0f experiments/sec "
      "(baseline %.0f, floor %.0f)\n",
      best, baseline, floor);
  if (best < floor) {
    std::fprintf(stderr, "FAIL: farm experiments/sec regressed > 20%% below "
                 "the committed baseline\n");
    return 1;
  }
  std::printf("quick gate OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
    return RunQuickGate(argc > 2 ? argv[2] : "BENCH_farm.json");
  }

  // --- tenancy sweep ---------------------------------------------------------
  const std::vector<std::size_t> levels = {1, 10, 50, 100};
  std::vector<LevelResult> results;
  bool ok = true;
  std::printf("E15: multi-tenant farm, %zu-step kinetic Mini-MOST sessions, "
              "%zu workers\n", kSessionSteps, kWorkers);
  for (const std::size_t tenants : levels) {
    const LevelResult level = RunMiniWave(tenants);
    ok = ok && level.failed == 0;
    std::printf(
        "     %4zu tenants: %zu completed, %zu failed, %.3fs wall -> "
        "%7.1f experiments/sec (%zu services / %zu registrations at peak, "
        "%zu after reap)\n",
        level.tenants, level.completed, level.failed, level.wall_seconds,
        level.experiments_per_sec, level.peak_services,
        level.peak_registrations, level.services_after_reap);
    results.push_back(level);
  }

  // --- mixed wave ------------------------------------------------------------
  LevelResult mixed;
  {
    net::Network network(net::DeliveryMode::kImmediate);
    farm::FarmOptions options;
    options.workers = kWorkers;
    options.mini_steps = kSessionSteps;
    options.most_steps = 200;
    farm::ExperimentFarm farm(&network, network.clock(), options);
    constexpr std::size_t kMixedTenants = 50;
    for (std::size_t i = 0; i < kMixedTenants; ++i) {
      farm::SessionSpec spec;
      spec.kind = i % 10 == 8   ? farm::SessionKind::kMost
                  : i % 10 == 9 ? farm::SessionKind::kCentrifuge
                                : farm::SessionKind::kMiniMost;
      (void)farm.Admit(spec);
    }
    const util::Result<farm::FarmReport> run = farm.RunAll();
    if (run.ok()) {
      mixed.tenants = run->admitted;
      mixed.completed = run->completed;
      mixed.failed = run->failed;
      mixed.wall_seconds = run->wall_seconds;
      mixed.experiments_per_sec = run->experiments_per_sec;
      mixed.peak_services = run->peak_services;
    } else {
      mixed.tenants = kMixedTenants;
      mixed.failed = kMixedTenants;
    }
    ok = ok && mixed.failed == 0;
    std::printf(
        "     mixed %zu (8:1:1 mini/most/centrifuge): %zu completed, "
        "%zu failed, %.3fs -> %.1f experiments/sec\n",
        mixed.tenants, mixed.completed, mixed.failed, mixed.wall_seconds,
        mixed.experiments_per_sec);
  }

  // --- participant fan-out ---------------------------------------------------
  constexpr int kSwarmParticipants = 10000;
  chef::SwarmReport swarm;
  double swarm_seconds = 0.0;
  {
    net::Network network(net::DeliveryMode::kImmediate);
    farm::FarmOptions options;
    options.workers = kWorkers;
    options.mini_steps = kSessionSteps;
    farm::ExperimentFarm farm(&network, network.clock(), options);
    // A small tenant wave first so the shared viewer store has live
    // channels for the swarm to read.
    for (std::size_t i = 0; i < 4; ++i) {
      (void)farm.Admit({farm::SessionKind::kMiniMost, 0, 0});
    }
    const util::Result<farm::FarmReport> seeded = farm.RunAll();
    ok = ok && seeded.ok() && seeded->failed == 0;

    farm::SwarmOptions swarm_options;
    swarm_options.participants = kSwarmParticipants;
    swarm_options.shards = kWorkers;
    const util::Stopwatch watch;
    swarm = farm::RunScaledSwarm(&network, farm::ExperimentFarm::kChef,
                                 swarm_options);
    swarm_seconds = watch.ElapsedSeconds();
    ok = ok && swarm.failures == 0;
  }
  const double participants_per_sec =
      swarm_seconds > 0.0
          ? static_cast<double>(swarm.participants) / swarm_seconds
          : 0.0;
  std::printf(
      "     swarm: %d participants over the shared stream in %.3fs -> "
      "%.0f participants/sec (%d chat posts, %d viewer reads, "
      "%d failures)\n",
      swarm.participants, swarm_seconds, participants_per_sec,
      swarm.chat_posts, swarm.viewer_reads, swarm.failures);

  // --- JSON ------------------------------------------------------------------
  std::string json = "{\n  \"experiment\": \"E15\",\n  \"levels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LevelResult& level = results[i];
    json += util::Format(
        "    {\"tenants\": %zu, \"completed\": %zu, \"failed\": %zu, "
        "\"wall_seconds\": %.4f, \"experiments_per_sec\": %.1f, "
        "\"peak_services\": %zu, \"peak_registrations\": %zu, "
        "\"services_after_reap\": %zu, \"endpoints_interned\": %zu}%s\n",
        level.tenants, level.completed, level.failed, level.wall_seconds,
        level.experiments_per_sec, level.peak_services,
        level.peak_registrations, level.services_after_reap,
        level.endpoints_interned, i + 1 == results.size() ? "" : ",");
  }
  json += "  ],\n";
  json += util::Format(
      "  \"experiments_per_sec_100\": %.1f,\n"
      "  \"mixed_tenants\": %zu,\n  \"mixed_completed\": %zu,\n"
      "  \"mixed_experiments_per_sec\": %.1f,\n"
      "  \"swarm_participants\": %d,\n  \"swarm_wall_seconds\": %.4f,\n"
      "  \"swarm_participants_per_sec\": %.1f,\n"
      "  \"swarm_chat_posts\": %d,\n  \"swarm_viewer_reads\": %d,\n"
      "  \"swarm_failures\": %d\n}\n",
      results.empty() ? 0.0 : results.back().experiments_per_sec,
      mixed.tenants, mixed.completed, mixed.experiments_per_sec,
      swarm.participants, swarm_seconds, participants_per_sec,
      swarm.chat_posts, swarm.viewer_reads, swarm.failures);

  std::FILE* f = std::fopen("BENCH_farm.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_farm.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_farm.json (%zu tenancy levels + mixed + swarm)\n",
              results.size());

  std::printf(
      "shape: one container table, one registry, one stream server carry "
      "every tenant;\nnamespaced endpoints keep the per-experiment name "
      "universes disjoint, so tenancy\nscales until the worker pool — not "
      "the fabric — saturates.\n");
  return ok ? 0 : 1;
}
