// E12 (extension) — §5, UC Davis: "characterize how the properties of soil
// change during shaking or ground improvement", with a robot arm and
// embedded bender elements teleoperated through NTCP.
//
// Regenerates the campaign's characteristic series: shear-wave velocity and
// cone tip resistance vs number of piles installed, and the NTCP op cost of
// robot teleoperation (every action is a propose/execute transaction).
#include <cstdio>

#include "centrifuge/plugin.h"
#include "net/network.h"
#include "ntcp/client.h"
#include "ntcp/server.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace nees;

int main() {
  std::printf("==== E12 (§5, UC Davis): ground improvement campaign over "
              "NTCP ====\n\n");

  net::Network network;
  auto soil = std::make_shared<centrifuge::SoilModel>(
      centrifuge::SoilModel::DefaultProfile(0.3));
  auto arm = std::make_shared<centrifuge::RobotArm>(
      centrifuge::RobotArm::Params{}, soil.get(), 7);
  auto benders =
      std::make_shared<centrifuge::BenderElementArray>(soil.get(), 9);
  benders->AddElement("be1", {0.10, 0.10, -0.05});
  benders->AddElement("be2", {0.35, 0.10, -0.05});

  ntcp::NtcpServer server(
      &network, "ntcp.ucdavis",
      std::make_unique<centrifuge::RobotArmPlugin>(arm, benders));
  if (!server.Start().ok()) return 1;
  net::RpcClient rpc(&network, "davis.operator");
  ntcp::NtcpClient client(&rpc, "ntcp.ucdavis");

  int transaction = 0;
  util::SampleStats op_micros;
  auto run = [&](std::vector<ntcp::ControlPointRequest> actions)
      -> util::Result<ntcp::TransactionResult> {
    ntcp::Proposal proposal;
    proposal.transaction_id = "cam-" + std::to_string(transaction++);
    proposal.actions = std::move(actions);
    const util::Stopwatch watch;
    NEES_RETURN_IF_ERROR(client.Propose(proposal));
    auto result = client.Execute(proposal.transaction_id);
    op_micros.Add(static_cast<double>(watch.ElapsedMicros()));
    return result;
  };

  util::TextTable table({"piles installed", "Vs be1->be2 [m/s]",
                         "cone tip @ -0.25 m [Pa]", "robot time [s]"});
  auto measure_row = [&](int piles) -> bool {
    auto velocity = run({{"bender:be1:be2", {}, {}}});
    if (!velocity.ok()) return false;
    if (!run({{"tool:cone-penetrometer", {}, {}}}).ok()) return false;
    auto cpt = run({{"penetrate", {-0.25}, {}}});
    if (!cpt.ok()) return false;
    table.AddRow({std::to_string(piles),
                  util::Format("%.1f", velocity->results[0].measured_force[0]),
                  util::Format("%.3g", cpt->results[0].measured_force[0]),
                  util::Format("%.0f", arm->elapsed_seconds())});
    return true;
  };

  if (!measure_row(0)) return 1;
  for (int pile = 1; pile <= 4; ++pile) {
    if (!run({{"tool:gripper", {}, {}}}).ok()) return 1;
    const double x = 0.15 + 0.08 * pile;
    if (!run({{"arm", {x, 0.12, 0.0}, {}}}).ok()) return 1;
    if (!run({{"pile", {-0.22}, {}}}).ok()) return 1;
    if (!measure_row(pile)) return 1;
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("NTCP teleoperation: %d transactions, per-op latency %s\n",
              transaction, op_micros.Summary().c_str());
  const auto stats = server.stats();
  std::printf("server: %llu accepted, %llu rejected, %llu executed\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.executions));
  std::printf("(shape: each pile raises the measured shear-wave velocity and "
              "tip resistance —\n the soil-characterization loop the UC Davis "
              "experiment plans, §5, run entirely\n through the same NTCP "
              "used for the structural rigs)\n");
  return 0;
}
