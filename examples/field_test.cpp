// UCLA field test (§5): "field testing of a four-story office building in
// Los Angeles ... gathering acceleration, strain, and displacement data
// using wireless sensor arrays (802.11 wireless telemetry) ... Data and
// video streams will be recorded and archived at a mobile command center
// before transmission to the laboratory using satellite telemetry."
//
// Topology on the simulated network:
//   wireless sensors --lossy 802.11 links--> mobile command center (DAQ)
//   command center --high-latency, narrow satellite link--> lab repository
//   one camera records stills archived alongside the sensor data
//
//   ./field_test [shaking-minutes]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "daq/daq.h"
#include "net/network.h"
#include "nsds/nsds.h"
#include "repo/facade.h"
#include "structural/groundmotion.h"
#include "telepresence/telepresence.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace nees;

int main(int argc, char** argv) {
  const int minutes = argc > 1 ? std::atoi(argv[1]) : 2;

  net::Network network;

  // The lab repository, reachable only over the satellite uplink.
  repo::RepositoryFacade lab(&network, "repo.lab");
  if (!lab.Start().ok()) return 1;
  net::LinkModel satellite;
  satellite.latency_micros = 0;           // latency modeled as metric here;
  satellite.drop_probability = 0.002;     // rare uplink corruption
  network.SetLink("uplink", "repo.lab.gftp", satellite);
  network.SetLink("uplink", "repo.lab", satellite);

  // The mobile command center: DAQ + streaming server + camera.
  daq::DaqSystem command_center;
  const std::vector<std::string> sensors = {
      "ucla.accel.roof", "ucla.accel.floor2", "ucla.strain.col-a",
      "ucla.disp.roof"};
  for (const std::string& channel : sensors) {
    command_center.AddChannel({channel, "mixed", 50.0});
  }
  nsds::NsdsServer live(&network, "nsds.field");
  if (!live.Start().ok()) return 1;
  tele::TelepresenceServer camera(&network, "cam.field", "building-face");
  if (!camera.Start().ok()) return 1;

  // Wireless sensor nodes publish over lossy 802.11 links into the command
  // center's NSDS; the DAQ records what arrives.
  nsds::NsdsSubscriber receiver(&network, "cc.receiver");
  if (!receiver.SubscribeTo("nsds.field", "ucla.").ok()) return 1;
  receiver.SetFrameCallback([&](const nsds::DataFrame& frame) {
    for (const nsds::DataSample& sample : frame.samples) {
      (void)command_center.Record(sample.channel, sample.time_micros,
                                  sample.value);
    }
  });
  net::LinkModel wifi;
  wifi.drop_probability = 0.08;  // 802.11 in the field
  network.SetLink("nsds.field", "cc.receiver", wifi);

  // Harmonic + earthquake-type force histories (§5), sampled at 50 Hz.
  const std::size_t steps = static_cast<std::size_t>(minutes) * 60 * 50;
  structural::SyntheticQuakeParams quake;
  quake.steps = steps;
  quake.dt_seconds = 0.02;
  quake.peak_accel = 1.5;
  const structural::GroundMotion record = structural::SynthesizeQuake(quake);
  util::Rng sensor_noise(2026);

  const auto drop_dir =
      std::filesystem::temp_directory_path() / "nees-field-test";
  std::filesystem::remove_all(drop_dir);
  net::RpcClient uplink(&network, "uplink");
  repo::IngestionTool ingest(&uplink, "repo.lab", "ucla-field", "mobile-cc");
  daq::Harvester harvester(
      drop_dir, [&](const std::filesystem::path& file,
                    const std::vector<nsds::DataSample>& samples) {
        return ingest.IngestDropFile(file, samples);
      });

  std::uint64_t stills = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    const auto t = static_cast<std::int64_t>(i * 20'000);
    const double shaking = record.accel[i];
    // Each wireless node measures a channel-specific view of the response.
    std::vector<nsds::DataSample> frame;
    frame.push_back({"ucla.accel.roof", t,
                     2.4 * shaking + sensor_noise.Gaussian(0, 0.01)});
    frame.push_back({"ucla.accel.floor2", t,
                     1.3 * shaking + sensor_noise.Gaussian(0, 0.01)});
    frame.push_back({"ucla.strain.col-a", t,
                     4e-6 * shaking + sensor_noise.Gaussian(0, 1e-8)});
    frame.push_back({"ucla.disp.roof", t,
                     0.004 * shaking + sensor_noise.Gaussian(0, 1e-5)});
    live.Publish(frame);

    // Trigger a still image at each strong-motion peak (§5: "using the
    // NEESgrid framework to trigger still image capture").
    if (std::abs(shaking) > 0.9 * record.PeakAcceleration()) {
      camera.camera().SetSceneValue(shaking);
      ++stills;
    }
    // Flush the command center's buffers over the satellite every 30 s.
    if (i > 0 && i % 1500 == 0) {
      if (command_center.Flush(drop_dir, "field").ok()) {
        (void)harvester.ScanOnce();
      }
    }
  }
  if (command_center.Flush(drop_dir, "field").ok()) {
    (void)harvester.ScanOnce();
  }

  const auto archived = lab.nfms().List("ucla-field/");
  std::printf("UCLA field test: %d min of shaking, %zu samples published\n",
              minutes, steps * sensors.size());
  std::printf("wireless loss:   %llu frames received of %llu sent "
              "(802.11 telemetry)\n",
              static_cast<unsigned long long>(
                  receiver.stats().frames_received),
              static_cast<unsigned long long>(live.stats().frames_sent));
  std::printf("command center:  %llu samples recorded, %llu ring "
              "overwrites\n",
              static_cast<unsigned long long>(command_center.recorded()),
              static_cast<unsigned long long>(command_center.overwritten()));
  std::printf("satellite uplink: %llu files archived at the lab "
              "repository\n",
              static_cast<unsigned long long>(archived.size()));
  std::printf("still captures:  %llu triggered at strong-motion peaks\n",
              static_cast<unsigned long long>(stills));

  std::size_t archived_samples = 0;
  for (const auto& entry : archived) {
    auto metadata = lab.nmds().Get("file:" + entry.logical_name);
    if (metadata.ok()) {
      long long samples = 0;
      util::ParseInt(metadata->fields.at("samples"), &samples);
      archived_samples += static_cast<std::size_t>(samples);
    }
  }
  std::printf("lab archive:     %zu samples with queryable metadata "
              "(%.1f%% of published)\n",
              archived_samples,
              100.0 * archived_samples / (steps * sensors.size()));
  std::filesystem::remove_all(drop_dir);
  return 0;
}
