// Remote participation demo (§2.2, §3.4, Fig. 8): a small MOST run with the
// full observation stack — three telepresence cameras, NSDS streaming into
// the CHEF data viewers, chat among remote participants, hysteresis plots,
// and VCR playback of the recorded response.
//
//   ./telepresence_demo [steps]
#include <cstdio>
#include <cstdlib>

#include "chef/chef.h"
#include "most/most.h"
#include "telepresence/telepresence.h"

using namespace nees;

int main(int argc, char** argv) {
  const std::size_t steps =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 300;

  net::Network network;
  most::MostOptions options;
  options.steps = steps;
  options.hybrid = false;
  most::MostExperiment experiment(&network, &util::SystemClock::Instance(),
                                  options);
  if (!experiment.Start().ok()) return 1;

  // Three cameras, as during MOST (two lab cameras + one overview).
  tele::TelepresenceServer cam_uiuc(&network, "cam.uiuc", "uiuc-lab");
  tele::TelepresenceServer cam_cu(&network, "cam.cu", "cu-lab");
  tele::TelepresenceServer cam_wide(&network, "cam.wide", "overview");
  for (auto* cam : {&cam_uiuc, &cam_cu, &cam_wide}) {
    if (!cam->Start().ok()) return 1;
  }

  // CHEF portal fed by a live NSDS subscription.
  chef::ChefServer chef_server(&network, "chef.nees");
  if (!chef_server.Start().ok()) return 1;
  nsds::NsdsSubscriber chef_feed(&network, "chef.feed");
  chef_server.ConnectStream(chef_feed);
  if (!chef_feed.SubscribeTo(most::MostExperiment::kNsds, "most.").ok()) {
    return 1;
  }

  // A remote participant: logs in, aims a camera, subscribes to video.
  chef::ChefClient alice(&network, "alice", "chef.nees");
  if (!alice.Login("alice").ok()) return 1;
  tele::TelepresenceClient alice_video(&network, "alice.video");
  (void)alice_video.SubscribeVideo("cam.uiuc");
  (void)alice_video.Control("cam.uiuc", {25.0, -5.0, 4.0});
  (void)alice.PostChat("most", "camera aimed at the UIUC specimen");

  // Run the experiment; each step updates camera scenes and pumps a frame.
  if (!experiment.Start().ok()) return 1;
  net::RpcClient rpc(&network, "demo.coordinator");
  psd::SimulationCoordinator coordinator(
      experiment.MakeCoordinatorConfig(psd::FaultPolicy::kFaultTolerant,
                                       "demo"),
      &rpc);
  coordinator.SetStepObserver(
      [&](std::size_t step, const structural::Vector& displacement,
          const std::vector<ntcp::TransactionResult>& results) {
        // Feed the MOST data pipeline exactly as MostExperiment::Run does.
        std::vector<nsds::DataSample> samples;
        const auto t = static_cast<std::int64_t>(step * 20'000);
        samples.push_back({"most.displacement", t, displacement[0]});
        static constexpr const char* kSites[] = {"UIUC", "NCSA", "CU"};
        for (std::size_t i = 0; i < results.size(); ++i) {
          samples.push_back({std::string("most.force.") + kSites[i], t,
                             results[i].results[0].measured_force[0]});
        }
        experiment.streaming()->Publish(samples);
        for (auto* cam : {&cam_uiuc, &cam_cu, &cam_wide}) {
          cam->camera().SetSceneValue(displacement[0]);
          cam->PumpFrame();
        }
      });
  const psd::RunReport report = coordinator.Run();
  std::printf("experiment: %s (%zu steps)\n",
              report.completed ? "completed" : "terminated",
              report.steps_completed);

  // What the remote participant saw.
  std::printf("video frames received by alice: %llu\n",
              static_cast<unsigned long long>(alice_video.frames_received()));
  auto series = alice.ViewerSeries("most.displacement");
  std::printf("viewer time series points:      %zu\n",
              series.ok() ? series->size() : 0);
  auto loop = alice.ViewerHysteresis("most.displacement", "most.force.UIUC");
  std::printf("hysteresis plot points:         %zu\n",
              loop.ok() ? loop->size() : 0);

  // VCR playback: rewind to the start and step through the strong motion.
  (void)alice.Vcr(chef::VcrCommand::kSeekStart);
  (void)alice.Vcr(chef::VcrCommand::kPlay);
  for (int i = 0; i < 25; ++i) (void)alice.Vcr(chef::VcrCommand::kStep);
  auto at = alice.ViewAt("most.displacement");
  if (at.ok()) {
    std::printf("VCR cursor after 25 play steps: t=%.2f s, drift=%.3f mm\n",
                at->time_micros / 1e6, at->value * 1000);
  }

  // 130 participants join to watch (the MOST head-count).
  const chef::SwarmReport swarm =
      chef::RunParticipantSwarm(&network, "chef.nees", 130);
  std::printf("participant swarm: %d users, %d chat posts, %d viewer reads, "
              "%d failures\n",
              swarm.participants, swarm.chat_posts, swarm.viewer_reads,
              swarm.failures);
  std::printf("chef peak concurrency: %llu\n",
              static_cast<unsigned long long>(
                  chef_server.stats().peak_concurrent));
  return 0;
}
