// Soil-structure interaction follow-on (§5): "Earthquake engineers at RPI,
// UIUC and Lehigh University plan to use the NEESgrid framework to study
// soil-structure interaction in an experiment involving two structural
// sites (UIUC and Lehigh), one geotechnical site (RPI), and a computational
// simulation node at NCSA" — an idealized model of the Santa Monica
// Freeway's Collector-Distributor 36, damaged in the 1994 Northridge quake.
//
// Reduced model: 2 DOFs — foundation/soil level (DOF 0) and deck level
// (DOF 1). RPI's centrifuge carries the (hysteretic) soil spring on DOF 0;
// UIUC and Lehigh each carry a pier column between the two levels; NCSA
// simulates the coupling frame. Four sites, one coordinator, same NTCP.
//
//   ./soil_structure [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "net/network.h"
#include "ntcp/server.h"
#include "plugins/simulation_plugin.h"
#include "psd/coordinator.h"
#include "structural/groundmotion.h"
#include "structural/substructure.h"

using namespace nees;

namespace {

/// A pier column between DOF 0 and DOF 1: 2-DOF coupling stiffness.
std::unique_ptr<structural::SubstructureModel> PierColumn(double k) {
  structural::Matrix coupling(2, 2);
  coupling(0, 0) = k;
  coupling(0, 1) = -k;
  coupling(1, 0) = -k;
  coupling(1, 1) = k;
  return std::make_unique<structural::ElasticSubstructure>(coupling);
}

std::unique_ptr<ntcp::NtcpServer> StartSite(
    net::Network* network, const std::string& endpoint,
    const std::string& control_point,
    std::unique_ptr<structural::SubstructureModel> model) {
  auto plugin = std::make_unique<plugins::SimulationPlugin>();
  plugin->AddControlPoint(control_point, std::move(model));
  auto server = std::make_unique<ntcp::NtcpServer>(network, endpoint,
                                                   std::move(plugin));
  if (!server->Start().ok()) return nullptr;
  return server;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t steps =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 800;

  net::Network network;

  // RPI: the centrifuge soil model — hysteretic spring on the foundation.
  structural::BoucWenSubstructure::Params soil;
  soil.elastic_stiffness = 8.0e6;    // N/m, stiff sand
  soil.yield_displacement = 0.01;    // soil yields early
  soil.alpha = 0.02;
  auto rpi = StartSite(&network, "ntcp.rpi", "soil-box",
                       std::make_unique<structural::BoucWenSubstructure>(soil));

  // UIUC and Lehigh: one pier column each between foundation and deck.
  const double pier_k = 2.5e6;  // N/m per pier
  auto uiuc = StartSite(&network, "ntcp.uiuc", "pier", PierColumn(pier_k));
  auto lehigh = StartSite(&network, "ntcp.lehigh", "pier", PierColumn(pier_k));

  // NCSA: numerical coupling frame (deck stiffness contribution).
  structural::Matrix deck(2, 2);
  deck(1, 1) = 1.0e6;
  auto ncsa = StartSite(&network, "ntcp.ncsa", "deck",
                        std::make_unique<structural::ElasticSubstructure>(deck));
  if (!rpi || !uiuc || !lehigh || !ncsa) return 1;

  // Northridge-flavoured synthetic record.
  structural::SyntheticQuakeParams quake;
  quake.steps = steps;
  quake.peak_accel = 4.0;  // strong motion
  quake.seed = 1994'01'17;  // Northridge's date
  const structural::GroundMotion motion = structural::SynthesizeQuake(quake);

  psd::CoordinatorConfig config;
  config.run_id = "cd36";
  structural::Matrix mass(2, 2);
  mass(0, 0) = 8.0e4;  // foundation + soil mass
  mass(1, 1) = 1.2e5;  // deck mass
  config.mass = mass;
  config.damping = structural::Matrix(2, 2);
  config.damping(0, 0) = 8.0e4;  // heavier radiation damping at the soil
  config.damping(1, 1) = 2.0e4;
  config.iota = {1.0, 1.0};
  config.motion = motion;
  config.sites = {
      {"RPI", "ntcp.rpi", "soil-box", {0}},
      {"UIUC", "ntcp.uiuc", "pier", {0, 1}},
      {"Lehigh", "ntcp.lehigh", "pier", {0, 1}},
      {"NCSA", "ntcp.ncsa", "deck", {0, 1}},
  };

  net::RpcClient rpc(&network, "cd36.coordinator");
  psd::SimulationCoordinator coordinator(config, &rpc);
  const psd::RunReport report = coordinator.Run();

  std::printf("soil-structure experiment (%zu steps, 4 sites): %s\n",
              steps, report.completed ? "COMPLETED" : "TERMINATED");
  if (!report.completed) {
    std::printf("  failure: %s\n", report.failure.ToString().c_str());
    return 1;
  }
  std::printf("  peak foundation drift: %.2f mm\n",
              report.history.PeakDisplacement(0) * 1000);
  std::printf("  peak deck drift:       %.2f mm\n",
              report.history.PeakDisplacement(1) * 1000);
  const double ratio = report.history.PeakDisplacement(1) /
                       report.history.PeakDisplacement(0);
  std::printf("  deck/foundation ratio: %.2f  (soil compliance feeds the "
              "superstructure)\n", ratio);
  for (const psd::SiteStats& site : report.site_stats) {
    std::printf("  %-7s %llu proposals, %llu executes\n", site.name.c_str(),
                static_cast<unsigned long long>(site.proposals),
                static_cast<unsigned long long>(site.executes));
  }
  return 0;
}
