// Quickstart: the NTCP lifecycle in ~100 lines.
//
// Brings up one NTCP server whose backend is a numerical substructure,
// walks a transaction through propose -> execute -> inspect, shows a
// policy rejection, and demonstrates the at-most-once guarantee by losing
// a reply on the simulated network and retrying.
//
//   ./quickstart
#include <cstdio>

#include "net/network.h"
#include "ntcp/client.h"
#include "ntcp/server.h"
#include "plugins/policy_plugin.h"
#include "plugins/simulation_plugin.h"
#include "structural/substructure.h"

using namespace nees;  // example code: brevity over hygiene

int main() {
  // 1. A simulated network (the WAN between experiment sites).
  net::Network network;

  // 2. An NTCP server at "ntcp.site": a 1 MN/m elastic column behind a
  //    site policy that caps displacements at 5 cm.
  auto column = std::make_unique<plugins::SimulationPlugin>();
  structural::Matrix k(1, 1);
  k(0, 0) = 1e6;  // N/m
  column->AddControlPoint(
      "column-top", std::make_unique<structural::ElasticSubstructure>(k));
  plugins::SitePolicy policy;
  policy.max_abs_displacement_m = 0.05;
  ntcp::NtcpServer server(
      &network, "ntcp.site",
      std::make_unique<plugins::LimitPolicyPlugin>(policy, std::move(column)));
  if (!server.Start().ok()) return 1;

  // 3. A client (the simulation coordinator's view of the site).
  net::RpcClient rpc(&network, "coordinator");
  ntcp::NtcpClient client(&rpc, "ntcp.site");

  // 4. Propose: ask the site whether moving the column top to 1 cm is
  //    acceptable. Nothing moves yet.
  ntcp::Proposal proposal;
  proposal.transaction_id = "quickstart-1";
  proposal.actions.push_back({"column-top", {0.01}, {}});
  util::Status accepted = client.Propose(proposal);
  std::printf("propose 1.0 cm      -> %s\n", accepted.ToString().c_str());

  // 5. Execute: the site performs the action and reports measurements.
  auto result = client.Execute("quickstart-1");
  if (result.ok()) {
    std::printf("execute             -> displacement %.4f m, force %.1f N\n",
                result->results[0].measured_displacement[0],
                result->results[0].measured_force[0]);
  }

  // 6. Inspect: the full transaction record, with per-state timestamps,
  //    remains queryable (OGSI service data in the full system).
  auto record = client.GetTransaction("quickstart-1");
  if (record.ok()) {
    std::printf("inspect             -> state=%s, %zu timestamped states\n",
                std::string(ntcp::TransactionStateName(record->state)).c_str(),
                record->state_timestamps.size());
  }

  // 7. Negotiation: a 10 cm command violates site policy and is rejected
  //    at proposal time — before anything anywhere would have moved.
  ntcp::Proposal too_big;
  too_big.transaction_id = "quickstart-2";
  too_big.actions.push_back({"column-top", {0.10}, {}});
  util::Status rejected = client.Propose(too_big);
  std::printf("propose 10 cm       -> %s\n", rejected.ToString().c_str());

  // 8. Fault tolerance: lose the execute reply; the client's retry re-sends
  //    the request and the server returns the cached result — the column is
  //    NOT driven twice (at-most-once semantics).
  ntcp::Proposal retried;
  retried.transaction_id = "quickstart-3";
  retried.actions.push_back({"column-top", {0.02}, {}});
  (void)client.Propose(retried);
  network.DropNext("ntcp.site", "coordinator", 1);  // lose the next reply
  auto retried_result = client.Execute("quickstart-3");
  const auto stats = server.stats();
  std::printf(
      "execute w/ lost msg -> %s (server executions=%llu, duplicates served="
      "%llu)\n",
      retried_result.ok() ? "recovered by retry" : "failed",
      static_cast<unsigned long long>(stats.executions),
      static_cast<unsigned long long>(stats.duplicate_executes));

  std::printf("\nquickstart complete: %llu proposals, %llu accepted, %llu "
              "rejected\n",
              static_cast<unsigned long long>(stats.proposals),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.rejected));
  return 0;
}
