// Mini-MOST (§3.5): the tabletop teaching rig. Runs the hybrid experiment
// twice — once against the emulated stepper-motor hardware through the
// LabVIEW plugin, once against the first-order kinetic simulator that
// stands in "when the actual hardware is not available" — and compares.
//
//   ./mini_most [steps] [trace.jsonl]   # optionally dump the hardware-run trace
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "most/mini_most.h"
#include "obs/trace.h"

using namespace nees;

int main(int argc, char** argv) {
  most::MiniMostOptions options;
  if (argc > 1) options.steps = static_cast<std::size_t>(std::atoll(argv[1]));
  const char* trace_path = argc > 2 ? argv[2] : nullptr;

  std::printf("Mini-MOST: %.0f cm x %.0f cm beam, k = %.0f N/m, %zu steps\n\n",
              options.beam_length_m * 100, options.beam_width_m * 100,
              most::MiniMostBeamStiffness(options), options.steps);

  structural::TimeHistory hardware_history;
  obs::Tracer tracer(&util::SystemClock::Instance());
  {
    net::Network network;
    options.real_hardware = true;
    options.tracer = trace_path != nullptr ? &tracer : nullptr;
    most::MiniMostExperiment rig(&network, &util::SystemClock::Instance(),
                                 options);
    auto report = rig.Run("hw");
    if (!report.ok() || !report->completed) {
      std::printf("hardware run failed: %s\n",
                  (report.ok() ? report->failure : report.status())
                      .ToString()
                      .c_str());
      return 1;
    }
    hardware_history = report->history;
    std::printf("stepper-motor rig : completed %zu steps, peak tip "
                "displacement %.3f mm,\n                    stepper took %lld "
                "motor steps total\n",
                report->steps_completed,
                report->history.PeakDisplacement(0) * 1000,
                static_cast<long long>(rig.stepper_steps()));
    if (trace_path != nullptr) {
      std::ofstream out(trace_path);
      out << tracer.ExportJsonLines();
      if (!out) {
        std::printf("error: could not write trace to %s\n", trace_path);
        return 1;
      }
      std::printf("wrote %zu spans to %s; latency breakdown:\n%s\n",
                  tracer.span_count(), trace_path,
                  tracer.BreakdownTable().c_str());
    }
    options.tracer = nullptr;
  }

  structural::TimeHistory kinetic_history;
  {
    net::Network network;
    options.real_hardware = false;
    most::MiniMostExperiment simulator(&network,
                                       &util::SystemClock::Instance(),
                                       options);
    auto report = simulator.Run("sim");
    if (!report.ok() || !report->completed) return 1;
    kinetic_history = report->history;
    std::printf("kinetic simulator : completed %zu steps, peak tip "
                "displacement %.3f mm\n",
                report->steps_completed,
                report->history.PeakDisplacement(0) * 1000);
  }

  double max_diff = 0.0;
  for (std::size_t i = 0; i < hardware_history.displacement.size() &&
                          i < kinetic_history.displacement.size();
       ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(hardware_history.displacement[i][0] -
                                  kinetic_history.displacement[i][0]));
  }
  const double peak = hardware_history.PeakDisplacement(0);
  std::printf("\nhardware vs simulator: max divergence %.4f mm (%.1f%% of "
              "peak)\n",
              max_diff * 1000, peak > 0 ? 100.0 * max_diff / peak : 0.0);
  std::printf("(the simulator is a debugging stand-in, not a digital twin — "
              "same code path,\n approximate physics)\n");
  return 0;
}
