// The MOST experiment, end to end (§3): dry run (all-simulation), hybrid
// run (emulated rigs at UIUC and CU), and the §3.4 fault narrative — a
// naive coordinator dying at step 1493/1500 while the fault-tolerant one
// completes.
//
//   ./most_experiment                      # 1500 steps, as on July 30, 2003
//   ./most_experiment 300                  # shorter record for a quick look
//   ./most_experiment 300 trace.jsonl      # also dump the hybrid-run trace
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "most/most.h"
#include "obs/trace.h"
#include "util/stats.h"

using namespace nees;

namespace {

void PrintReport(const char* label, const psd::RunReport& report) {
  std::printf("%-22s %s at step %zu/%zu", label,
              report.completed ? "COMPLETED" : "TERMINATED",
              report.steps_completed, report.total_steps);
  if (!report.completed) {
    std::printf("  (%s)", report.failure.ToString().c_str());
  }
  std::printf("  [%.2f s wall, %llu transient faults recovered]\n",
              report.wall_seconds,
              static_cast<unsigned long long>(
                  report.transient_faults_recovered));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t steps =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1500;
  const char* trace_path = argc > 2 ? argv[2] : nullptr;

  most::MostOptions options;
  options.steps = steps;
  std::printf("MOST reproduction: two-bay single-story frame, %zu PSD "
              "steps at dt=%.0f ms\n",
              steps, options.dt_seconds * 1000);
  const most::StiffnessBreakdown stiffness =
      most::ComputeStiffnessBreakdown(options);
  std::printf("substructure stiffness: UIUC %.3g N/m, NCSA %.3g N/m, "
              "CU %.3g N/m\n\n",
              stiffness.left_n_per_m, stiffness.middle_n_per_m,
              stiffness.right_n_per_m);

  // ---- Phase 1: distributed simulation-only dry run ----------------------
  {
    net::Network network;
    options.hybrid = false;
    most::MostExperiment dry(&network, &util::SystemClock::Instance(),
                             options);
    auto report = dry.Run(psd::FaultPolicy::kFaultTolerant, "dry");
    if (!report.ok()) {
      std::printf("dry run failed to start: %s\n",
                  report.status().ToString().c_str());
      return 1;
    }
    PrintReport("dry run (all-sim):", *report);
    std::printf("  peak story drift: %.2f mm\n\n",
                report->history.PeakDisplacement(0) * 1000);
  }

  // ---- Phase 2: hybrid run (physical rigs swapped in transparently) ------
  psd::RunReport hybrid_report;
  {
    obs::Tracer tracer(&util::SystemClock::Instance());
    net::Network network;
    options.hybrid = true;
    options.tracer = trace_path != nullptr ? &tracer : nullptr;
    most::MostExperiment hybrid(&network, &util::SystemClock::Instance(),
                                options);
    auto report = hybrid.Run(psd::FaultPolicy::kFaultTolerant, "hybrid");
    if (!report.ok()) return 1;
    hybrid_report = *report;
    PrintReport("hybrid run:", *report);
    std::printf("  peak story drift: %.2f mm\n",
                report->history.PeakDisplacement(0) * 1000);
    for (const psd::SiteStats& site : report->site_stats) {
      std::printf("  site %-5s per-op latency: %s\n", site.name.c_str(),
                  site.step_micros.Summary().c_str());
    }
    std::printf("\n");
    if (trace_path != nullptr) {
      std::ofstream out(trace_path);
      out << tracer.ExportJsonLines();
      if (!out) {
        std::printf("error: could not write trace to %s\n", trace_path);
        return 1;
      }
      std::printf("wrote %zu spans to %s; latency breakdown:\n%s\n",
                  tracer.span_count(), trace_path,
                  tracer.BreakdownTable().c_str());
    }
    options.tracer = nullptr;
  }

  // ---- Phase 3: the public-run fault narrative ----------------------------
  // Transient bursts early in the day are survivable; a long burst near the
  // end (at ~99.5% of the record, i.e. step 1493 of 1500) kills the naive
  // coordinator. The fault-tolerant coordinator finishes.
  const std::size_t fatal_step = steps * 1493 / 1500;
  for (const auto policy :
       {psd::FaultPolicy::kNaive, psd::FaultPolicy::kFaultTolerant}) {
    net::Network network;
    options.hybrid = false;
    most::MostExperiment experiment(&network,
                                    &util::SystemClock::Instance(), options);
    if (!experiment.Start().ok()) return 1;
    net::RpcClient rpc(&network, "public.coordinator");
    auto config = experiment.MakeCoordinatorConfig(policy, "public");
    config.retry.initial_backoff_micros = 10'000;
    psd::SimulationCoordinator coordinator(config, &rpc,
                                           &util::SystemClock::Instance());
    most::MostFaultSchedule faults(&network, "public.coordinator",
                                   most::MostExperiment::kNtcpCu);
    faults.AddTransientBurst(steps / 5, 1);
    faults.AddTransientBurst(steps / 2, 2);
    faults.SetFatalOutage(fatal_step, 4);
    coordinator.SetStepObserver(
        [&faults](std::size_t step, const structural::Vector&,
                  const std::vector<ntcp::TransactionResult>&) {
          faults.OnStep(step);
        });
    const psd::RunReport report = coordinator.Run();
    PrintReport(policy == psd::FaultPolicy::kNaive
                    ? "public run (naive):"
                    : "public run (FT):",
                report);
  }

  std::printf("\n(The 2003 public run terminated at step 1493 of 1500 after "
              "a final network\n error; its dry run completed. Both outcomes "
              "reproduce above.)\n");
  return 0;
}
