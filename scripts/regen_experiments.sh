#!/usr/bin/env sh
# Regenerates every EXPERIMENTS.md number: configures + builds the tree,
# checks that each bench binary named in EXPERIMENTS.md actually built
# (so a renamed or dropped bench can't silently rot the doc), then runs
# them all.
#
#   scripts/regen_experiments.sh [build-dir]
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)"

# Every `bench_*` mentioned in EXPERIMENTS.md must exist as a built binary.
benches="$(grep -o 'bench_[a-z_]*' "$repo/EXPERIMENTS.md" | sort -u)"
missing=0
for bench in $benches; do
  if [ ! -x "$build/bench/$bench" ]; then
    echo "ERROR: EXPERIMENTS.md references $bench but $build/bench/$bench" \
         "was not built" >&2
    missing=1
  fi
done
[ "$missing" -eq 0 ] || exit 1

for bench in $benches; do
  echo
  echo "######## $bench ########"
  "$build/bench/$bench"
done

# Conformance gate: a fresh 150-step hybrid MOST trace must lint clean.
echo
echo "######## nees_lint (fresh most_experiment trace) ########"
trace="$build/most_trace.jsonl"
"$build/examples/most_experiment" 150 "$trace" > /dev/null
"$build/tools/nees_lint" "$trace"
