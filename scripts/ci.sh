#!/usr/bin/env sh
# CI matrix: builds the tree three times — Release (invariants compiled
# out), RelWithDebInfo under ASan+UBSan (invariants live), and TSan over
# the concurrency-heavy suites (async step engine, RPC signaling, MPlugin
# long poll/wake) — with warnings as errors throughout, runs the full test
# suite in the first two, then gates on protocol conformance: a fresh
# 150-step hybrid MOST trace must pass nees_lint, a 200-seed sharded fuzz
# campaign (two forked workers, campaign template mix, all oracles, ASan +
# live invariants) must come back clean — on failure nees_fuzz prints the
# failing seed, the shrunk fault schedule, and the replay command — and
# the committed regression corpus (pinned seeds + shrunk masks,
# docs/RECOVERY.md) replays under the same sanitizers. Finally a docs
# check fails if README/EXPERIMENTS reference a bench JSON key that no
# longer exists in the committed BENCH_*.json files, or if a doc's quoted
# headline number (bench-cite comments) drifts from the committed JSON,
# and two perf gates re-measure the step engine and the fuzz campaign
# against their committed trajectories.
#
#   scripts/ci.sh [build-dir-prefix]     # default: <repo>/build-ci
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-$repo/build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  build="$1"
  shift
  echo
  echo "######## configure $build ########"
  cmake -B "$build" -S "$repo" -DNEES_WERROR=ON "$@"
  cmake --build "$build" -j "$jobs"
  (cd "$build" && ctest --output-on-failure -j "$jobs")
}

# Release compiles the lockdep runtime out (NEES_LOCKDEP=AUTO): the bench
# binaries under $prefix-release/bench ship without instrumentation, which
# the check after the matrix asserts. The asan tree pins NEES_LOCKDEP=ON so
# the lock-order checker runs composed with ASan/UBSan across the whole
# suite and the fuzz legs below.
run_config "$prefix-release" -DCMAKE_BUILD_TYPE=Release
run_config "$prefix-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
           "-DNEES_SANITIZE=address;undefined" -DNEES_LOCKDEP=ON

echo
echo "######## configure $prefix-tsan (concurrency suites) ########"
cmake -B "$prefix-tsan" -S "$repo" -DNEES_WERROR=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNEES_SANITIZE=thread
cmake --build "$prefix-tsan" -j "$jobs" \
      --target net_test ntcp_test psd_test plugins_test most_test \
               farm_test nees_farm_cli
# The suites that exercise real threads: the completion-driven step engine
# vs thread-per-site, per-call RPC signaling, the MPlugin long-poll/wake
# handshake, the full MOST assembly over the kScheduled network, and the
# multi-tenant farm's worker pool + swarm shards over one shared fabric.
for suite in net_test ntcp_test psd_test plugins_test most_test farm_test; do
  echo "-- tsan: $suite"
  "$prefix-tsan/tests/$suite" --gtest_brief=1
done

echo
echo "######## nees_farm smoke wave (TSan) ########"
# A mixed tenant wave plus a sharded CHEF swarm on the TSan build: many
# namespaced experiments racing over one container/registry/NSDS/CHEF
# host is the farm's whole concurrency story, so it runs instrumented.
"$prefix-tsan/tools/nees_farm" --tenants 12 --mix mixed --workers 4 \
                               --swarm 200 --swarm-shards 4

echo
echo "######## lockdep lock-order report (nees_locks) ########"
# Clean pass on the standard workload (threaded MOST run + virtual-time
# fuzz block), then prove the detector end to end: a deliberately injected
# inversion must come back nonzero.
"$prefix-asan/tools/nees_locks" --steps 60 --seeds 3
if "$prefix-asan/tools/nees_locks" --inject-inversion > /dev/null 2>&1; then
  echo "lockdep check FAILED: injected inversion was not detected" >&2
  exit 1
fi
echo "injected inversion detected (nonzero exit) -- detector is live"

echo
echo "######## clang -Wthread-safety leg (build-only, needs clang) ########"
if command -v clang++ > /dev/null 2>&1; then
  cmake -B "$prefix-tsa" -S "$repo" -DCMAKE_CXX_COMPILER=clang++ \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNEES_THREAD_SAFETY=ON \
        -DNEES_WERROR=ON
  cmake --build "$prefix-tsa" -j "$jobs"
  echo "thread-safety leg OK (zero -Wthread-safety findings)"
else
  echo "clang++ not on PATH: skipping the -Wthread-safety leg"
fi

echo
echo "######## clang-tidy leg (.clang-tidy profile, needs clang-tidy) ########"
if command -v clang-tidy > /dev/null 2>&1; then
  # The release tree's compile_commands.json carries no sanitizer flags.
  find "$repo/src" "$repo/tools" -name '*.cpp' -print0 |
    xargs -0 -P "$jobs" -n 8 clang-tidy -p "$prefix-release" --quiet
  echo "clang-tidy leg OK"
else
  echo "clang-tidy not on PATH: skipping the clang-tidy leg"
fi

echo
echo "######## nees_lint on a fresh most_experiment trace ########"
trace="$prefix-asan/most_trace.jsonl"
"$prefix-asan/examples/most_experiment" 150 "$trace" > /dev/null
"$prefix-asan/tools/nees_lint" "$trace"

echo
echo "######## nees_fuzz campaign smoke (200 seeds, 2 workers, ASan) ########"
# The sharded sweep driver end to end: fork two workers, each owning a
# deterministic shard of the seed range (campaign mix: mini-dominated,
# with standard / full-MOST / centrifuge shapes riding along), merge their
# JSON reports, fail if any worker dies or any seed fails an oracle. The
# asan tree runs with NEES_LOCKDEP=ON, so every seed also checks oracle 5:
# no lock-order inversion, wait-while-holding, or blocking RPC under a
# lock anywhere in the run.
"$prefix-asan/tools/nees_fuzz" --campaign --seeds 200 --workers 2

echo
echo "######## regression corpus replay (pinned seeds, ASan) ########"
# Every pinned (seed, mask, template) triple in the committed corpus runs
# the thorough path: full artifacts, all oracles, double-run determinism.
# Includes the WAL-recovery pins (25/187/49/44, docs/RECOVERY.md), the
# all-seven-fault-classes schedule (11), and the centrifuge retry-ladder
# regressions with their shrunk masks (3/120).
"$prefix-asan/tools/nees_fuzz" --corpus "$repo/tests/data/fuzz_corpus.txt"

echo
echo "######## docs vs bench JSON key check ########"
# Drift gate: every BENCH_*.json the docs cite must be committed, and
# every JSON key the README/EXPERIMENTS tables are derived from must
# still exist in it — renaming a key without refreshing the docs (and
# this list) fails here.
docs_fail=0
for ref in $(grep -ho 'BENCH_[a-z_]*\.json' "$repo/README.md" \
             "$repo/EXPERIMENTS.md" "$repo"/docs/*.md | sort -u); do
  if [ ! -f "$repo/$ref" ]; then
    echo "docs check: $ref is cited by the docs but not committed" >&2
    docs_fail=1
  fi
done
require_keys() {
  file="$1"
  shift
  for key in "$@"; do
    if ! grep -q "\"$key\":" "$repo/$file"; then
      echo "docs check: $file lost key '$key' still cited by the docs" >&2
      docs_fail=1
    fi
  done
}
require_keys BENCH_step_engine.json sites engine mode steps_per_sec \
             propose_phase_ms_mean execute_phase_ms_mean threads_spawned \
             frames_per_step wal wal_records completed
require_keys BENCH_fuzz.json seeds failures wall_seconds seeds_per_hour \
             virtual_events events_per_second site_crashes site_recoveries \
             transactions_recovered inflight_failed \
             campaign_seeds campaign_failures campaign_checked \
             campaign_wall_seconds campaign_seeds_per_hour \
             campaign_virtual_events campaign_events_per_second \
             campaign_mini campaign_standard campaign_full_most \
             campaign_centrifuge campaign_frames_corrupted \
             campaign_auth_refreshes
require_keys BENCH_farm.json tenants experiments_per_sec \
             experiments_per_sec_100 peak_services services_after_reap \
             mixed_tenants mixed_experiments_per_sec swarm_participants \
             swarm_participants_per_sec swarm_failures

# Stale-number gate: headline figures quoted in prose carry a
# machine-readable citation next to them,
#   <!-- bench-cite: FILE KEY VALUE TOL% -->
# and this leg fails if the committed JSON's value for KEY has drifted
# outside VALUE +/- TOL% — i.e. someone regenerated the bench without
# refreshing the prose, or edited the prose without regenerating.
cites="$prefix-asan/bench_cites.txt"
grep -ho 'bench-cite: [^>]*' "$repo/README.md" "$repo/EXPERIMENTS.md" \
     "$repo"/docs/*.md > "$cites" || true
while read -r _ cite_file cite_key cite_value cite_tol; do
  # cite_tol may carry the comment closer ("35% -->"): keep the number.
  cite_tol="${cite_tol%\%*}"
  actual="$(grep -o "\"$cite_key\": [0-9.]*" "$repo/$cite_file" 2>/dev/null \
            | head -1 | awk '{print $2}')"
  if [ -z "$actual" ]; then
    echo "bench-cite: $cite_file has no key '$cite_key'" >&2
    docs_fail=1
    continue
  fi
  if ! awk -v a="$actual" -v c="$cite_value" -v t="$cite_tol" \
       'BEGIN { d = a - c; if (d < 0) d = -d; exit !(d <= t / 100.0 * c) }'
  then
    echo "bench-cite drift: $cite_file $cite_key is $actual, docs cite" \
         "$cite_value (tol $cite_tol%)" >&2
    docs_fail=1
  fi
done < "$cites"
[ "$docs_fail" -eq 0 ] || { echo "docs check FAILED" >&2; exit 1; }
echo "docs check OK"

# Release benches must exist and carry no lockdep instrumentation (exit 3
# is nees_locks' "compiled out" marker, proving NEES_LOCKDEP=AUTO resolved
# to off for the whole Release tree).
test -x "$prefix-release/bench/bench_step_engine"

echo
echo "######## step-engine perf regression gate ########"
# Quick gate: re-measures the 32-site async immediate point (best of two
# sub-second runs) and fails if it lands more than 20% below the committed
# BENCH_step_engine.json trajectory.
"$prefix-release/bench/bench_step_engine" --quick "$repo/BENCH_step_engine.json"

echo
echo "######## fuzz campaign throughput regression gate ########"
# Same pattern for the fuzzer: a short campaign-mix sample (best of two)
# must not land more than 20% below the committed campaign_seeds_per_hour
# in BENCH_fuzz.json.
"$prefix-release/bench/bench_fuzz" --quick "$repo/BENCH_fuzz.json"

echo
echo "######## farm tenancy throughput regression gate ########"
# And for the farm: a 100-tenant Mini-MOST wave (best of two) must not
# land more than 20% below the committed experiments_per_sec_100 in
# BENCH_farm.json.
"$prefix-release/bench/bench_farm" --quick "$repo/BENCH_farm.json"

if "$prefix-release/tools/nees_locks" > /dev/null 2>&1; then rc=0; else rc=$?; fi
if [ "$rc" -ne 3 ]; then
  echo "Release tree unexpectedly has lockdep compiled in (rc=$rc)" >&2
  exit 1
fi
echo "Release benches built with lockdep compiled out"

echo
echo "CI matrix green: Release + ASan/UBSan+lockdep + TSan (+ Clang legs"
echo "when available), tests + lock-order report + conformance lint +"
echo "200-seed fuzz smoke + crash-restart leg + docs check."
