#!/usr/bin/env sh
# CI matrix: builds the tree three times — Release (invariants compiled
# out), RelWithDebInfo under ASan+UBSan (invariants live), and TSan over
# the concurrency-heavy suites (async step engine, RPC signaling, MPlugin
# long poll/wake) — with warnings as errors throughout, runs the full test
# suite in the first two, then gates on protocol conformance: a fresh
# 150-step hybrid MOST trace must pass nees_lint, a fixed 200-seed
# deterministic fuzz block (virtual-time MOST runs, all oracles, ASan +
# live invariants) must come back clean — on failure nees_fuzz prints the
# failing seed, the shrunk fault schedule, and the replay command — and a
# crash-restart leg replays the pinned WAL-recovery seeds
# (docs/RECOVERY.md) one by one under the same sanitizers. Finally a docs
# check fails if README/EXPERIMENTS reference a bench JSON key that no
# longer exists in the committed BENCH_*.json files.
#
#   scripts/ci.sh [build-dir-prefix]     # default: <repo>/build-ci
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-$repo/build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  build="$1"
  shift
  echo
  echo "######## configure $build ########"
  cmake -B "$build" -S "$repo" -DNEES_WERROR=ON "$@"
  cmake --build "$build" -j "$jobs"
  (cd "$build" && ctest --output-on-failure -j "$jobs")
}

run_config "$prefix-release" -DCMAKE_BUILD_TYPE=Release
run_config "$prefix-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
           "-DNEES_SANITIZE=address;undefined"

echo
echo "######## configure $prefix-tsan (concurrency suites) ########"
cmake -B "$prefix-tsan" -S "$repo" -DNEES_WERROR=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNEES_SANITIZE=thread
cmake --build "$prefix-tsan" -j "$jobs" \
      --target net_test ntcp_test psd_test plugins_test most_test
# The suites that exercise real threads: the completion-driven step engine
# vs thread-per-site, per-call RPC signaling, the MPlugin long-poll/wake
# handshake, and the full MOST assembly over the kScheduled network.
for suite in net_test ntcp_test psd_test plugins_test most_test; do
  echo "-- tsan: $suite"
  "$prefix-tsan/tests/$suite" --gtest_brief=1
done

echo
echo "######## nees_lint on a fresh most_experiment trace ########"
trace="$prefix-asan/most_trace.jsonl"
"$prefix-asan/examples/most_experiment" 150 "$trace" > /dev/null
"$prefix-asan/tools/nees_lint" "$trace"

echo
echo "######## nees_fuzz smoke block (200 seeds, ASan + invariants) ########"
"$prefix-asan/tools/nees_fuzz" --smoke --seeds 200

echo
echo "######## crash-restart fuzz leg (pinned WAL-recovery seeds, ASan) ########"
# Seed 25 kills a site mid-execute (WAL crash-mark path); 187 is the
# worked trace of docs/RECOVERY.md (two whole-site crash/restarts on top
# of the original orphaned-accept schedule); 49/44 are the heaviest mixed
# schedules. Each runs individually so a failure names its seed directly.
for seed in 25 187 49 44; do
  "$prefix-asan/tools/nees_fuzz" --seed "$seed"
done

echo
echo "######## docs vs bench JSON key check ########"
# Drift gate: every BENCH_*.json the docs cite must be committed, and
# every JSON key the README/EXPERIMENTS tables are derived from must
# still exist in it — renaming a key without refreshing the docs (and
# this list) fails here.
docs_fail=0
for ref in $(grep -ho 'BENCH_[a-z_]*\.json' "$repo/README.md" \
             "$repo/EXPERIMENTS.md" "$repo"/docs/*.md | sort -u); do
  if [ ! -f "$repo/$ref" ]; then
    echo "docs check: $ref is cited by the docs but not committed" >&2
    docs_fail=1
  fi
done
require_keys() {
  file="$1"
  shift
  for key in "$@"; do
    if ! grep -q "\"$key\":" "$repo/$file"; then
      echo "docs check: $file lost key '$key' still cited by the docs" >&2
      docs_fail=1
    fi
  done
}
require_keys BENCH_step_engine.json sites engine mode steps_per_sec \
             propose_phase_ms_mean execute_phase_ms_mean threads_spawned \
             wal wal_records completed
require_keys BENCH_fuzz.json seeds failures wall_seconds seeds_per_hour \
             virtual_events events_per_second site_crashes site_recoveries \
             transactions_recovered inflight_failed
[ "$docs_fail" -eq 0 ] || { echo "docs check FAILED" >&2; exit 1; }
echo "docs check OK"

echo
echo "CI matrix green: Release + ASan/UBSan + TSan, tests + conformance"
echo "lint + 200-seed fuzz smoke + crash-restart leg + docs check."
