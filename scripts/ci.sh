#!/usr/bin/env sh
# CI matrix: builds the tree three times — Release (invariants compiled
# out), RelWithDebInfo under ASan+UBSan (invariants live), and TSan over
# the concurrency-heavy suites (async step engine, RPC signaling, MPlugin
# long poll/wake) — with warnings as errors throughout, runs the full test
# suite in the first two, then gates on protocol conformance: a fresh
# 150-step hybrid MOST trace must pass nees_lint, and a fixed 200-seed
# deterministic fuzz block (virtual-time MOST runs, all oracles, ASan +
# live invariants) must come back clean — on failure nees_fuzz prints the
# failing seed, the shrunk fault schedule, and the replay command.
#
#   scripts/ci.sh [build-dir-prefix]     # default: <repo>/build-ci
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-$repo/build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  build="$1"
  shift
  echo
  echo "######## configure $build ########"
  cmake -B "$build" -S "$repo" -DNEES_WERROR=ON "$@"
  cmake --build "$build" -j "$jobs"
  (cd "$build" && ctest --output-on-failure -j "$jobs")
}

run_config "$prefix-release" -DCMAKE_BUILD_TYPE=Release
run_config "$prefix-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
           "-DNEES_SANITIZE=address;undefined"

echo
echo "######## configure $prefix-tsan (concurrency suites) ########"
cmake -B "$prefix-tsan" -S "$repo" -DNEES_WERROR=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNEES_SANITIZE=thread
cmake --build "$prefix-tsan" -j "$jobs" \
      --target net_test ntcp_test psd_test plugins_test most_test
# The suites that exercise real threads: the completion-driven step engine
# vs thread-per-site, per-call RPC signaling, the MPlugin long-poll/wake
# handshake, and the full MOST assembly over the kScheduled network.
for suite in net_test ntcp_test psd_test plugins_test most_test; do
  echo "-- tsan: $suite"
  "$prefix-tsan/tests/$suite" --gtest_brief=1
done

echo
echo "######## nees_lint on a fresh most_experiment trace ########"
trace="$prefix-asan/most_trace.jsonl"
"$prefix-asan/examples/most_experiment" 150 "$trace" > /dev/null
"$prefix-asan/tools/nees_lint" "$trace"

echo
echo "######## nees_fuzz smoke block (200 seeds, ASan + invariants) ########"
"$prefix-asan/tools/nees_fuzz" --smoke --seeds 200

echo
echo "CI matrix green: Release + ASan/UBSan + TSan, tests + conformance"
echo "lint + 200-seed fuzz smoke."
