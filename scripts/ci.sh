#!/usr/bin/env sh
# CI matrix: builds the tree twice — Release (invariants compiled out) and
# RelWithDebInfo under ASan+UBSan (invariants live) — with warnings as
# errors in both, runs the full test suite in each, then gates on protocol
# conformance: a fresh 150-step hybrid MOST trace must pass nees_lint.
#
#   scripts/ci.sh [build-dir-prefix]     # default: <repo>/build-ci
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-$repo/build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  build="$1"
  shift
  echo
  echo "######## configure $build ########"
  cmake -B "$build" -S "$repo" -DNEES_WERROR=ON "$@"
  cmake --build "$build" -j "$jobs"
  (cd "$build" && ctest --output-on-failure -j "$jobs")
}

run_config "$prefix-release" -DCMAKE_BUILD_TYPE=Release
run_config "$prefix-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
           "-DNEES_SANITIZE=address;undefined"

echo
echo "######## nees_lint on a fresh most_experiment trace ########"
trace="$prefix-asan/most_trace.jsonl"
"$prefix-asan/examples/most_experiment" 150 "$trace" > /dev/null
"$prefix-asan/tools/nees_lint" "$trace"

echo
echo "CI matrix green: Release + ASan/UBSan, tests + conformance lint."
