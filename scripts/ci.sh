#!/usr/bin/env sh
# CI matrix: builds the tree three times — Release (invariants compiled
# out), RelWithDebInfo under ASan+UBSan (invariants live), and TSan over
# the concurrency-heavy suites (async step engine, RPC signaling, MPlugin
# long poll/wake) — with warnings as errors throughout, runs the full test
# suite in the first two, then gates on protocol conformance: a fresh
# 150-step hybrid MOST trace must pass nees_lint, a fixed 200-seed
# deterministic fuzz block (virtual-time MOST runs, all oracles, ASan +
# live invariants) must come back clean — on failure nees_fuzz prints the
# failing seed, the shrunk fault schedule, and the replay command — and a
# crash-restart leg replays the pinned WAL-recovery seeds
# (docs/RECOVERY.md) one by one under the same sanitizers. Finally a docs
# check fails if README/EXPERIMENTS reference a bench JSON key that no
# longer exists in the committed BENCH_*.json files.
#
#   scripts/ci.sh [build-dir-prefix]     # default: <repo>/build-ci
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-$repo/build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  build="$1"
  shift
  echo
  echo "######## configure $build ########"
  cmake -B "$build" -S "$repo" -DNEES_WERROR=ON "$@"
  cmake --build "$build" -j "$jobs"
  (cd "$build" && ctest --output-on-failure -j "$jobs")
}

# Release compiles the lockdep runtime out (NEES_LOCKDEP=AUTO): the bench
# binaries under $prefix-release/bench ship without instrumentation, which
# the check after the matrix asserts. The asan tree pins NEES_LOCKDEP=ON so
# the lock-order checker runs composed with ASan/UBSan across the whole
# suite and the fuzz legs below.
run_config "$prefix-release" -DCMAKE_BUILD_TYPE=Release
run_config "$prefix-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
           "-DNEES_SANITIZE=address;undefined" -DNEES_LOCKDEP=ON

echo
echo "######## configure $prefix-tsan (concurrency suites) ########"
cmake -B "$prefix-tsan" -S "$repo" -DNEES_WERROR=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNEES_SANITIZE=thread
cmake --build "$prefix-tsan" -j "$jobs" \
      --target net_test ntcp_test psd_test plugins_test most_test
# The suites that exercise real threads: the completion-driven step engine
# vs thread-per-site, per-call RPC signaling, the MPlugin long-poll/wake
# handshake, and the full MOST assembly over the kScheduled network.
for suite in net_test ntcp_test psd_test plugins_test most_test; do
  echo "-- tsan: $suite"
  "$prefix-tsan/tests/$suite" --gtest_brief=1
done

echo
echo "######## lockdep lock-order report (nees_locks) ########"
# Clean pass on the standard workload (threaded MOST run + virtual-time
# fuzz block), then prove the detector end to end: a deliberately injected
# inversion must come back nonzero.
"$prefix-asan/tools/nees_locks" --steps 60 --seeds 3
if "$prefix-asan/tools/nees_locks" --inject-inversion > /dev/null 2>&1; then
  echo "lockdep check FAILED: injected inversion was not detected" >&2
  exit 1
fi
echo "injected inversion detected (nonzero exit) -- detector is live"

echo
echo "######## clang -Wthread-safety leg (build-only, needs clang) ########"
if command -v clang++ > /dev/null 2>&1; then
  cmake -B "$prefix-tsa" -S "$repo" -DCMAKE_CXX_COMPILER=clang++ \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNEES_THREAD_SAFETY=ON \
        -DNEES_WERROR=ON
  cmake --build "$prefix-tsa" -j "$jobs"
  echo "thread-safety leg OK (zero -Wthread-safety findings)"
else
  echo "clang++ not on PATH: skipping the -Wthread-safety leg"
fi

echo
echo "######## clang-tidy leg (.clang-tidy profile, needs clang-tidy) ########"
if command -v clang-tidy > /dev/null 2>&1; then
  # The release tree's compile_commands.json carries no sanitizer flags.
  find "$repo/src" "$repo/tools" -name '*.cpp' -print0 |
    xargs -0 -P "$jobs" -n 8 clang-tidy -p "$prefix-release" --quiet
  echo "clang-tidy leg OK"
else
  echo "clang-tidy not on PATH: skipping the clang-tidy leg"
fi

echo
echo "######## nees_lint on a fresh most_experiment trace ########"
trace="$prefix-asan/most_trace.jsonl"
"$prefix-asan/examples/most_experiment" 150 "$trace" > /dev/null
"$prefix-asan/tools/nees_lint" "$trace"

echo
echo "######## nees_fuzz smoke block (200 seeds, ASan + lockdep) ########"
# The asan tree runs with NEES_LOCKDEP=ON, so every seed also checks
# oracle 5: no lock-order inversion, wait-while-holding, or blocking RPC
# under a lock anywhere in the run.
"$prefix-asan/tools/nees_fuzz" --smoke --seeds 200

echo
echo "######## crash-restart fuzz leg (pinned WAL-recovery seeds, ASan) ########"
# Seed 25 kills a site mid-execute (WAL crash-mark path); 187 is the
# worked trace of docs/RECOVERY.md (two whole-site crash/restarts on top
# of the original orphaned-accept schedule); 49/44 are the heaviest mixed
# schedules. Each runs individually so a failure names its seed directly.
for seed in 25 187 49 44; do
  "$prefix-asan/tools/nees_fuzz" --seed "$seed"
done

echo
echo "######## docs vs bench JSON key check ########"
# Drift gate: every BENCH_*.json the docs cite must be committed, and
# every JSON key the README/EXPERIMENTS tables are derived from must
# still exist in it — renaming a key without refreshing the docs (and
# this list) fails here.
docs_fail=0
for ref in $(grep -ho 'BENCH_[a-z_]*\.json' "$repo/README.md" \
             "$repo/EXPERIMENTS.md" "$repo"/docs/*.md | sort -u); do
  if [ ! -f "$repo/$ref" ]; then
    echo "docs check: $ref is cited by the docs but not committed" >&2
    docs_fail=1
  fi
done
require_keys() {
  file="$1"
  shift
  for key in "$@"; do
    if ! grep -q "\"$key\":" "$repo/$file"; then
      echo "docs check: $file lost key '$key' still cited by the docs" >&2
      docs_fail=1
    fi
  done
}
require_keys BENCH_step_engine.json sites engine mode steps_per_sec \
             propose_phase_ms_mean execute_phase_ms_mean threads_spawned \
             frames_per_step wal wal_records completed
require_keys BENCH_fuzz.json seeds failures wall_seconds seeds_per_hour \
             virtual_events events_per_second site_crashes site_recoveries \
             transactions_recovered inflight_failed
[ "$docs_fail" -eq 0 ] || { echo "docs check FAILED" >&2; exit 1; }
echo "docs check OK"

# Release benches must exist and carry no lockdep instrumentation (exit 3
# is nees_locks' "compiled out" marker, proving NEES_LOCKDEP=AUTO resolved
# to off for the whole Release tree).
test -x "$prefix-release/bench/bench_step_engine"

echo
echo "######## step-engine perf regression gate ########"
# Quick gate: re-measures the 32-site async immediate point (best of two
# sub-second runs) and fails if it lands more than 20% below the committed
# BENCH_step_engine.json trajectory.
"$prefix-release/bench/bench_step_engine" --quick "$repo/BENCH_step_engine.json"

if "$prefix-release/tools/nees_locks" > /dev/null 2>&1; then rc=0; else rc=$?; fi
if [ "$rc" -ne 3 ]; then
  echo "Release tree unexpectedly has lockdep compiled in (rc=$rc)" >&2
  exit 1
fi
echo "Release benches built with lockdep compiled out"

echo
echo "CI matrix green: Release + ASan/UBSan+lockdep + TSan (+ Clang legs"
echo "when available), tests + lock-order report + conformance lint +"
echo "200-seed fuzz smoke + crash-restart leg + docs check."
