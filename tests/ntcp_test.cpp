// Tests for the NTCP core: the Fig. 1 state machine, proposal negotiation,
// at-most-once semantics under duplicated/lost messages, timeouts, SDE
// publication, OGSI inspection of transactions, and client retry recovery.
#include <gtest/gtest.h>

#include "grid/container.h"
#include "net/network.h"
#include "ntcp/client.h"
#include "ntcp/server.h"
#include "ntcp/types.h"
#include "plugins/simulation_plugin.h"
#include "structural/substructure.h"
#include "util/clock.h"
#include "util/periodic.h"

namespace nees::ntcp {
namespace {

using util::ErrorCode;

Proposal MakeProposal(const std::string& id, double displacement,
                      std::int64_t timeout_micros = 60'000'000) {
  Proposal proposal;
  proposal.transaction_id = id;
  ControlPointRequest action;
  action.control_point = "cp";
  action.target_displacement = {displacement};
  proposal.actions.push_back(std::move(action));
  proposal.timeout_micros = timeout_micros;
  return proposal;
}

std::unique_ptr<plugins::SimulationPlugin> MakeElasticPlugin(
    double stiffness = 1000.0) {
  auto plugin = std::make_unique<plugins::SimulationPlugin>();
  structural::Matrix k(1, 1);
  k(0, 0) = stiffness;
  plugin->AddControlPoint(
      "cp", std::make_unique<structural::ElasticSubstructure>(k));
  return plugin;
}

// --- state machine (pure) -----------------------------------------------------

TEST(StateMachineTest, LegalTransitionsMatchFigure1) {
  using S = TransactionState;
  EXPECT_TRUE(IsLegalTransition(S::kProposed, S::kAccepted));
  EXPECT_TRUE(IsLegalTransition(S::kProposed, S::kRejected));
  EXPECT_TRUE(IsLegalTransition(S::kProposed, S::kCancelled));
  EXPECT_TRUE(IsLegalTransition(S::kAccepted, S::kExecuting));
  EXPECT_TRUE(IsLegalTransition(S::kAccepted, S::kCancelled));
  EXPECT_TRUE(IsLegalTransition(S::kAccepted, S::kExpired));
  EXPECT_TRUE(IsLegalTransition(S::kExecuting, S::kCompleted));
  EXPECT_TRUE(IsLegalTransition(S::kExecuting, S::kFailed));
}

TEST(StateMachineTest, IllegalTransitionsRejected) {
  using S = TransactionState;
  EXPECT_FALSE(IsLegalTransition(S::kProposed, S::kExecuting));  // must accept
  EXPECT_FALSE(IsLegalTransition(S::kProposed, S::kCompleted));
  EXPECT_FALSE(IsLegalTransition(S::kExecuting, S::kCancelled));  // no undo
  EXPECT_FALSE(IsLegalTransition(S::kCompleted, S::kExecuting));
  EXPECT_FALSE(IsLegalTransition(S::kRejected, S::kAccepted));
  EXPECT_FALSE(IsLegalTransition(S::kCancelled, S::kExecuting));
}

TEST(StateMachineTest, TerminalStates) {
  using S = TransactionState;
  for (S state : {S::kRejected, S::kCompleted, S::kCancelled, S::kFailed,
                  S::kExpired}) {
    EXPECT_TRUE(IsTerminal(state));
    // Exhaustive: no transition leaves a terminal state.
    for (int to = 0; to <= static_cast<int>(S::kExpired); ++to) {
      EXPECT_FALSE(IsLegalTransition(state, static_cast<S>(to)));
    }
  }
  EXPECT_FALSE(IsTerminal(S::kProposed));
  EXPECT_FALSE(IsTerminal(S::kAccepted));
  EXPECT_FALSE(IsTerminal(S::kExecuting));
}

TEST(StateMachineTest, AllStatesHaveNames) {
  for (int s = 0; s <= static_cast<int>(TransactionState::kExpired); ++s) {
    EXPECT_NE(TransactionStateName(static_cast<TransactionState>(s)),
              "unknown");
  }
}

// --- state-timestamp flat map ------------------------------------------------

TEST(StateTimestampsTest, InsertsStaySortedAndUpdatesOverwrite) {
  StateTimestamps stamps;
  EXPECT_TRUE(stamps.empty());
  // Reverse-alphabetical insertion exercises front-of-vector emplacement
  // (each insert shifts, and the first insert also reserves).
  stamps["proposed"] = 1;
  stamps["executing"] = 3;
  stamps["completed"] = 4;
  stamps["accepted"] = 2;
  EXPECT_EQ(stamps.size(), 4u);
  std::vector<std::string> order;
  for (const auto& [state, micros] : stamps) order.push_back(state);
  EXPECT_EQ(order, (std::vector<std::string>{"accepted", "completed",
                                             "executing", "proposed"}));
  EXPECT_EQ(stamps.find("executing")->second, 3);
  stamps["executing"] = 30;  // update, not duplicate
  EXPECT_EQ(stamps.size(), 4u);
  EXPECT_EQ(stamps.find("executing")->second, 30);
}

TEST(StateTimestampsTest, FindAndContainsMissBetweenKeys) {
  StateTimestamps stamps;
  stamps["accepted"] = 2;
  stamps["proposed"] = 1;
  EXPECT_TRUE(stamps.contains("accepted"));
  EXPECT_FALSE(stamps.contains("cancelled"));  // sorts between the two
  EXPECT_EQ(stamps.find("cancelled"), stamps.end());
  EXPECT_EQ(stamps.find(""), stamps.end());
}

TEST(StateTimestampsTest, EqualityIsOrderInsensitiveByConstruction) {
  StateTimestamps a;
  a["proposed"] = 1;
  a["accepted"] = 2;
  StateTimestamps b;
  b["accepted"] = 2;
  b["proposed"] = 1;
  EXPECT_EQ(a, b);  // both store sorted, so insertion order cannot leak
  b["accepted"] = 99;
  EXPECT_FALSE(a == b);
}

// --- wire encodings -------------------------------------------------------------

TEST(WireTest, ProposalRoundTrip) {
  Proposal original = MakeProposal("txn-7", 0.0123, 5'000'000);
  original.step_index = 42;
  original.actions[0].target_force = {100.0, -50.0};
  util::ByteWriter writer;
  EncodeProposal(original, writer);
  util::ByteReader reader(writer.data());
  auto decoded = DecodeProposal(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(WireTest, TransactionRecordRoundTrip) {
  TransactionRecord record;
  record.proposal = MakeProposal("t", 0.01);
  record.state = TransactionState::kCompleted;
  record.detail = "ok";
  ControlPointResult cp;
  cp.control_point = "cp";
  cp.measured_displacement = {0.0099};
  cp.measured_force = {9.9};
  record.result.results.push_back(cp);
  record.state_timestamps["proposed"] = 100;
  record.state_timestamps["completed"] = 500;

  util::ByteWriter writer;
  EncodeTransactionRecord(record, writer);
  util::ByteReader reader(writer.data());
  auto decoded = DecodeTransactionRecord(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->proposal, record.proposal);
  EXPECT_EQ(decoded->state, record.state);
  EXPECT_EQ(decoded->result, record.result);
  EXPECT_EQ(decoded->state_timestamps, record.state_timestamps);
}

TEST(WireTest, CorruptRecordRejected) {
  util::ByteWriter writer;
  EncodeProposal(MakeProposal("t", 0.01), writer);
  writer.WriteU8(99);  // invalid state byte
  writer.WriteString("");
  writer.WriteU32(0);
  writer.WriteU32(0);
  util::ByteReader reader(writer.data());
  EXPECT_FALSE(DecodeTransactionRecord(reader).ok());
}

// --- server core -----------------------------------------------------------------

class NtcpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_.SetClock(&clock_);
    server_ = std::make_unique<NtcpServer>(&network_, "ntcp.test",
                                           MakeElasticPlugin(), &clock_);
    ASSERT_TRUE(server_->Start().ok());
  }

  util::SimClock clock_{1'000'000};
  net::Network network_;
  std::unique_ptr<NtcpServer> server_;
};

TEST_F(NtcpServerTest, ProposeExecuteLifecycle) {
  const auto outcome = server_->Propose(MakeProposal("t1", 0.02));
  EXPECT_TRUE(outcome.accepted);

  auto record = server_->GetTransaction("t1");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, TransactionState::kAccepted);
  EXPECT_TRUE(record->state_timestamps.contains("proposed"));
  EXPECT_TRUE(record->state_timestamps.contains("accepted"));

  auto result = server_->Execute("t1");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->results.size(), 1u);
  EXPECT_NEAR(result->results[0].measured_force[0], 20.0, 1e-9);  // k=1000

  record = server_->GetTransaction("t1");
  EXPECT_EQ(record->state, TransactionState::kCompleted);
  EXPECT_TRUE(record->state_timestamps.contains("executing"));
  EXPECT_TRUE(record->state_timestamps.contains("completed"));
}

TEST_F(NtcpServerTest, InvalidProposalRejected) {
  Proposal bad = MakeProposal("t2", 0.02);
  bad.actions[0].control_point = "nonexistent";
  const auto outcome = server_->Propose(bad);
  EXPECT_FALSE(outcome.accepted);
  EXPECT_NE(outcome.reason.find("unknown control point"), std::string::npos);
  EXPECT_EQ(server_->GetTransaction("t2")->state, TransactionState::kRejected);
  // Executing a rejected transaction fails.
  EXPECT_EQ(server_->Execute("t2").status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(NtcpServerTest, EmptyTransactionIdRejected) {
  EXPECT_FALSE(server_->Propose(MakeProposal("", 0.02)).accepted);
}

TEST_F(NtcpServerTest, DuplicateProposalIdempotent) {
  const Proposal proposal = MakeProposal("t3", 0.02);
  EXPECT_TRUE(server_->Propose(proposal).accepted);
  EXPECT_TRUE(server_->Propose(proposal).accepted);  // re-send: same answer
  EXPECT_EQ(server_->stats().duplicate_proposals, 1u);
  EXPECT_EQ(server_->stats().accepted, 1u);
}

TEST_F(NtcpServerTest, ConflictingProposalUnderSameIdRejected) {
  EXPECT_TRUE(server_->Propose(MakeProposal("t4", 0.02)).accepted);
  const auto outcome = server_->Propose(MakeProposal("t4", 0.05));
  EXPECT_FALSE(outcome.accepted);
  EXPECT_NE(outcome.reason.find("already in use"), std::string::npos);
}

TEST_F(NtcpServerTest, DuplicateExecuteReturnsCachedResultWithoutRerun) {
  // At-most-once: the second execute must not move the specimen again.
  auto plugin = MakeElasticPlugin();
  auto* plugin_raw = plugin.get();
  NtcpServer server(&network_, "ntcp.amo", std::move(plugin), &clock_);
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(server.Propose(MakeProposal("t5", 0.02)).accepted);
  auto first = server.Execute("t5");
  auto second = server.Execute("t5");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(plugin_raw->executions(), 1u);
  EXPECT_EQ(server.stats().executions, 1u);
  EXPECT_EQ(server.stats().duplicate_executes, 1u);
}

TEST_F(NtcpServerTest, ExecuteUnknownTransaction) {
  EXPECT_EQ(server_->Execute("ghost").status().code(), ErrorCode::kNotFound);
}

TEST_F(NtcpServerTest, CancelAcceptedTransaction) {
  ASSERT_TRUE(server_->Propose(MakeProposal("t6", 0.02)).accepted);
  EXPECT_TRUE(server_->Cancel("t6").ok());
  EXPECT_EQ(server_->GetTransaction("t6")->state,
            TransactionState::kCancelled);
  EXPECT_EQ(server_->Execute("t6").status().code(),
            ErrorCode::kFailedPrecondition);
  // Cancel is idempotent.
  EXPECT_TRUE(server_->Cancel("t6").ok());
}

TEST_F(NtcpServerTest, CannotCancelCompletedTransaction) {
  ASSERT_TRUE(server_->Propose(MakeProposal("t7", 0.02)).accepted);
  ASSERT_TRUE(server_->Execute("t7").ok());
  EXPECT_EQ(server_->Cancel("t7").code(), ErrorCode::kFailedPrecondition);
}

TEST_F(NtcpServerTest, ProposalTimeoutExpiresBeforeExecute) {
  ASSERT_TRUE(server_->Propose(MakeProposal("t8", 0.02, 1'000'000)).accepted);
  clock_.Advance(2'000'000);
  EXPECT_EQ(server_->Execute("t8").status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(server_->GetTransaction("t8")->state, TransactionState::kExpired);
}

TEST_F(NtcpServerTest, ExpireStaleSweepsOldProposals) {
  ASSERT_TRUE(server_->Propose(MakeProposal("a", 0.01, 1'000'000)).accepted);
  ASSERT_TRUE(server_->Propose(MakeProposal("b", 0.01, 10'000'000)).accepted);
  clock_.Advance(5'000'000);
  EXPECT_EQ(server_->ExpireStale(), 1);
  EXPECT_EQ(server_->GetTransaction("a")->state, TransactionState::kExpired);
  EXPECT_EQ(server_->GetTransaction("b")->state, TransactionState::kAccepted);
}

TEST_F(NtcpServerTest, FailedExecutionIsCachedNotRetriedIntoPlugin) {
  class FailingPlugin : public ControlPlugin {
   public:
    util::Status Validate(const Proposal&) override { return util::OkStatus(); }
    util::Result<TransactionResult> Execute(const Proposal&) override {
      ++attempts;
      return util::Unavailable("backend hiccup");
    }
    std::string_view kind() const override { return "failing"; }
    int attempts = 0;
  };
  auto plugin = std::make_unique<FailingPlugin>();
  auto* plugin_raw = plugin.get();
  NtcpServer server(&network_, "ntcp.fail", std::move(plugin), &clock_);
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(server.Propose(MakeProposal("t9", 0.02)).accepted);
  EXPECT_EQ(server.Execute("t9").status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(server.GetTransaction("t9")->state, TransactionState::kFailed);
  // A re-sent execute gets the cached failure; the rig is NOT driven again.
  EXPECT_EQ(server.Execute("t9").status().code(), ErrorCode::kAborted);
  EXPECT_EQ(plugin_raw->attempts, 1);
}

TEST_F(NtcpServerTest, GarbageCollectDropsOldTerminalTransactions) {
  ASSERT_TRUE(server_->Propose(MakeProposal("old", 0.01)).accepted);
  ASSERT_TRUE(server_->Execute("old").ok());
  clock_.Advance(100'000'000);
  ASSERT_TRUE(server_->Propose(MakeProposal("new", 0.01)).accepted);
  ASSERT_TRUE(server_->Execute("new").ok());

  EXPECT_EQ(server_->GarbageCollect(50'000'000), 1);
  EXPECT_EQ(server_->GetTransaction("old").status().code(),
            ErrorCode::kNotFound);
  EXPECT_TRUE(server_->GetTransaction("new").ok());
  // The SDE is gone too.
  EXPECT_FALSE(server_->service_data().GetServiceData("txn.old").has_value());
}

TEST_F(NtcpServerTest, SdePublishedPerTransactionAndLastChanged) {
  ASSERT_TRUE(server_->Propose(MakeProposal("t10", 0.02)).accepted);
  auto sde = server_->service_data().GetServiceData("txn.t10");
  ASSERT_TRUE(sde.has_value());
  EXPECT_EQ(sde->Get("state"), "accepted");
  EXPECT_FALSE(sde->Get("t_proposed").empty());
  EXPECT_FALSE(sde->Get("t_accepted").empty());

  ASSERT_TRUE(server_->Execute("t10").ok());
  sde = server_->service_data().GetServiceData("txn.t10");
  EXPECT_EQ(sde->Get("state"), "completed");
  EXPECT_EQ(sde->Get("results"), "1");

  auto last = server_->service_data().GetServiceData("lastChanged");
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->Get("transaction"), "t10");
  EXPECT_EQ(last->Get("state"), "completed");

  // Server-wide statistics are published alongside.
  auto stats = server_->service_data().GetServiceData("serverStats");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->Get("proposals"), "1");
  EXPECT_EQ(stats->Get("executions"), "1");
  EXPECT_EQ(stats->Get("open_transactions"), "1");
}

TEST_F(NtcpServerTest, HousekeepingSweepViaPeriodicTask) {
  // The deployment pattern: one housekeeping task expires stale proposals
  // and garbage-collects old terminal transactions.
  ASSERT_TRUE(server_->Propose(MakeProposal("stale", 0.01, 1000)).accepted);
  ASSERT_TRUE(server_->Propose(MakeProposal("done", 0.01)).accepted);
  ASSERT_TRUE(server_->Execute("done").ok());
  clock_.Advance(10'000'000);

  util::PeriodicTask housekeeping(std::chrono::hours(1), [this] {
    server_->ExpireStale();
    server_->GarbageCollect(5'000'000);
  });
  housekeeping.TriggerNow();
  housekeeping.Stop();

  EXPECT_EQ(server_->GetTransaction("stale")->state,
            TransactionState::kExpired);
  EXPECT_EQ(server_->GetTransaction("done").status().code(),
            util::ErrorCode::kNotFound);
}

TEST_F(NtcpServerTest, ListTransactions) {
  ASSERT_TRUE(server_->Propose(MakeProposal("x", 0.01)).accepted);
  ASSERT_TRUE(server_->Propose(MakeProposal("y", 0.01)).accepted);
  EXPECT_EQ(server_->ListTransactions().size(), 2u);
}

// --- client over the network -------------------------------------------------------

class NtcpClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_.SetClock(&clock_);
    server_ = std::make_unique<NtcpServer>(&network_, "ntcp.site",
                                           MakeElasticPlugin(), &clock_);
    ASSERT_TRUE(server_->Start().ok());
    rpc_ = std::make_unique<net::RpcClient>(&network_, "coordinator");
    client_ = std::make_unique<NtcpClient>(rpc_.get(), "ntcp.site",
                                           RetryPolicy(), &clock_);
  }

  util::SimClock clock_{1'000'000};
  net::Network network_;
  std::unique_ptr<NtcpServer> server_;
  std::unique_ptr<net::RpcClient> rpc_;
  std::unique_ptr<NtcpClient> client_;
};

TEST_F(NtcpClientTest, FullRemoteLifecycle) {
  ASSERT_TRUE(client_->Propose(MakeProposal("r1", 0.03)).ok());
  auto result = client_->Execute("r1");
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->results[0].measured_force[0], 30.0, 1e-9);

  auto record = client_->GetTransaction("r1");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, TransactionState::kCompleted);

  auto ids = client_->ListTransactions();
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, std::vector<std::string>{"r1"});
}

TEST_F(NtcpClientTest, RejectionSurfacesAsPolicyViolation) {
  Proposal bad = MakeProposal("r2", 0.03);
  bad.actions[0].control_point = "nope";
  const util::Status status = client_->Propose(bad);
  EXPECT_EQ(status.code(), ErrorCode::kPolicyViolation);
}

TEST_F(NtcpClientTest, LostProposeRequestRecoveredByRetry) {
  network_.DropNext("coordinator", "ntcp.site", 1);
  EXPECT_TRUE(client_->Propose(MakeProposal("r3", 0.03)).ok());
  EXPECT_EQ(client_->stats().retries, 1u);
  EXPECT_EQ(client_->stats().recovered, 1u);
}

TEST_F(NtcpClientTest, LostExecuteReplyDoesNotDoubleExecute) {
  // The execute reaches the server but the *reply* is lost. The client
  // retries; the server must serve the cached result (at-most-once).
  ASSERT_TRUE(client_->Propose(MakeProposal("r4", 0.03)).ok());
  network_.DropNext("ntcp.site", "coordinator", 1);
  auto result = client_->Execute("r4");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(server_->stats().executions, 1u);
  EXPECT_EQ(server_->stats().duplicate_executes, 1u);
}

TEST_F(NtcpClientTest, RepeatedLossExhaustsRetries) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  NtcpClient client(rpc_.get(), "ntcp.site", policy, &clock_);
  network_.SetLinkUp("coordinator", "ntcp.site", false);
  const util::Status status = client.Propose(MakeProposal("r5", 0.03));
  EXPECT_EQ(status.code(), ErrorCode::kTimeout);
  EXPECT_EQ(client.stats().gave_up, 1u);
  // Backoff slept on the (virtual) clock between attempts.
  EXPECT_GT(clock_.NowMicros(), 1'000'000 + 200'000);
}

TEST_F(NtcpClientTest, DefinitiveErrorsAreNotRetried) {
  Proposal bad = MakeProposal("r6", 0.03);
  bad.actions[0].control_point = "nope";
  ASSERT_FALSE(client_->Propose(bad).ok());
  EXPECT_EQ(client_->stats().retries, 0u);
}

TEST_F(NtcpClientTest, TransientOutageMidExperimentRecovered) {
  // A short bidirectional outage; the retry loop rides it out (the several
  // transient failures MOST recovered from, §3.4).
  for (int step = 0; step < 10; ++step) {
    if (step == 5) {
      network_.DropNext("coordinator", "ntcp.site", 2);
      network_.DropNext("ntcp.site", "coordinator", 1);
    }
    const std::string id = "step-" + std::to_string(step);
    ASSERT_TRUE(client_->Propose(MakeProposal(id, 0.001 * step)).ok())
        << "step " << step;
    ASSERT_TRUE(client_->Execute(id).ok()) << "step " << step;
  }
  EXPECT_GE(client_->stats().retries, 1u);
  EXPECT_EQ(server_->stats().executions, 10u);
}

// --- asynchronous client operations ----------------------------------------------

TEST_F(NtcpClientTest, AsyncLifecycleMatchesSynchronous) {
  NtcpClient::AsyncOp propose = client_->ProposeAsync(MakeProposal("a1", 0.03));
  ASSERT_TRUE(NtcpClient::FinishPropose(propose).ok());
  NtcpClient::AsyncOp execute = client_->ExecuteAsync("a1");
  auto result = NtcpClient::FinishExecute(execute);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->results[0].measured_force[0], 30.0, 1e-9);
}

TEST_F(NtcpClientTest, ConcurrentInFlightOpsToSameSite) {
  // Several operations against one site, all in flight before any is
  // awaited — the shape a multi-control-point coordinator produces.
  std::vector<NtcpClient::AsyncOp> ops;
  for (int i = 0; i < 4; ++i) {
    ops.push_back(
        client_->ProposeAsync(MakeProposal("c" + std::to_string(i), 0.01)));
  }
  NtcpClient::AwaitAll(ops);
  for (NtcpClient::AsyncOp& op : ops) {
    EXPECT_TRUE(NtcpClient::FinishPropose(op).ok());
  }
  std::vector<NtcpClient::AsyncOp> executes;
  for (int i = 0; i < 4; ++i) {
    executes.push_back(client_->ExecuteAsync("c" + std::to_string(i)));
  }
  NtcpClient::AwaitAll(executes);
  for (NtcpClient::AsyncOp& op : executes) {
    EXPECT_TRUE(NtcpClient::FinishExecute(op).ok());
  }
  EXPECT_EQ(server_->stats().executions, 4u);
}

TEST_F(NtcpClientTest, AsyncRetryRecoversDroppedRequest) {
  network_.DropNext("coordinator", "ntcp.site", 1);
  NtcpClient::AsyncOp op = client_->ProposeAsync(MakeProposal("a2", 0.03));
  ASSERT_TRUE(NtcpClient::FinishPropose(op).ok());
  EXPECT_EQ(client_->stats().retries, 1u);
  EXPECT_EQ(client_->stats().recovered, 1u);
}

TEST_F(NtcpClientTest, AsyncExecuteDroppedReplyStaysAtMostOnce) {
  NtcpClient::AsyncOp propose = client_->ProposeAsync(MakeProposal("a3", 0.03));
  ASSERT_TRUE(NtcpClient::FinishPropose(propose).ok());
  network_.DropNext("ntcp.site", "coordinator", 1);
  NtcpClient::AsyncOp execute = client_->ExecuteAsync("a3");
  ASSERT_TRUE(NtcpClient::FinishExecute(execute).ok());
  // The retry hit the server's result cache, not the plugin.
  EXPECT_EQ(server_->stats().executions, 1u);
  EXPECT_EQ(server_->stats().duplicate_executes, 1u);
}

TEST_F(NtcpClientTest, AsyncOutageExhaustsRetries) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  NtcpClient client(rpc_.get(), "ntcp.site", policy, &clock_);
  network_.SetLinkUp("coordinator", "ntcp.site", false);
  NtcpClient::AsyncOp op = client.ProposeAsync(MakeProposal("a4", 0.03));
  EXPECT_EQ(NtcpClient::FinishPropose(op).code(), ErrorCode::kTimeout);
  EXPECT_EQ(client.stats().gave_up, 1u);
}

TEST_F(NtcpClientTest, BogusCorrelationResponseIsIgnored) {
  // A response whose correlation id matches nothing in flight (a duplicate
  // of an already-resolved call, or a stray) must not disturb later calls.
  net::Message bogus;
  bogus.from = "ntcp.site";
  bogus.to = "coordinator";
  bogus.kind = net::MessageKind::kResponse;
  bogus.correlation_id = 0xdeadbeef;
  bogus.payload = net::EncodeResponseEnvelope(util::OkStatus(), {});
  (void)network_.Send(std::move(bogus));
  NtcpClient::AsyncOp op = client_->ProposeAsync(MakeProposal("a5", 0.03));
  EXPECT_TRUE(NtcpClient::FinishPropose(op).ok());
  EXPECT_EQ(client_->stats().retries, 0u);
}

TEST(NtcpAsyncScheduledTest, OverlappedOpsAndRetriesOverRealLatency) {
  // Scheduled delivery: ops to two sites overlap their round trips, and a
  // dropped request recovers by retry driven from AwaitAll's multiplexed
  // wait (no dedicated thread per operation).
  net::Network network(net::DeliveryMode::kScheduled);
  net::LinkModel wan;
  wan.latency_micros = 2'000;
  network.SetDefaultLink(wan);
  NtcpServer site_a(&network, "site.a", MakeElasticPlugin());
  NtcpServer site_b(&network, "site.b", MakeElasticPlugin());
  ASSERT_TRUE(site_a.Start().ok());
  ASSERT_TRUE(site_b.Start().ok());
  net::RpcClient rpc(&network, "coordinator");
  RetryPolicy policy;
  policy.initial_backoff_micros = 1'000;
  policy.rpc_timeout_micros = 30'000;  // keep the dropped attempt cheap
  NtcpClient client_a(&rpc, "site.a", policy);
  NtcpClient client_b(&rpc, "site.b", policy);

  network.DropNext("coordinator", "site.b", 1);  // forces one async retry
  for (int step = 0; step < 3; ++step) {
    const std::string id = "sched-" + std::to_string(step);
    std::vector<NtcpClient::AsyncOp> proposes;
    proposes.push_back(client_a.ProposeAsync(MakeProposal(id + "-a", 0.01)));
    proposes.push_back(client_b.ProposeAsync(MakeProposal(id + "-b", 0.01)));
    NtcpClient::AwaitAll(proposes);
    for (NtcpClient::AsyncOp& op : proposes) {
      ASSERT_TRUE(NtcpClient::FinishPropose(op).ok()) << "step " << step;
    }
    std::vector<NtcpClient::AsyncOp> executes;
    executes.push_back(client_a.ExecuteAsync(id + "-a"));
    executes.push_back(client_b.ExecuteAsync(id + "-b"));
    NtcpClient::AwaitAll(executes);
    for (NtcpClient::AsyncOp& op : executes) {
      ASSERT_TRUE(NtcpClient::FinishExecute(op).ok()) << "step " << step;
    }
  }
  EXPECT_EQ(client_b.stats().retries, 1u);
  EXPECT_EQ(site_a.stats().executions, 3u);
  EXPECT_EQ(site_b.stats().executions, 3u);
}

// --- OGSI inspection of a live NTCP server -------------------------------------------

TEST(NtcpInspectionTest, RemoteFindServiceDataSeesTransactions) {
  util::SimClock clock(1'000'000);
  net::Network network;
  network.SetClock(&clock);

  grid::ServiceContainer container(&network, "container.uiuc", &clock);
  ASSERT_TRUE(container.Start().ok());

  NtcpServer server(&network, "ntcp.uiuc", MakeElasticPlugin(), &clock);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.PublishTo(container).ok());

  ASSERT_TRUE(server.Propose(MakeProposal("insp-1", 0.02)).accepted);
  ASSERT_TRUE(server.Execute("insp-1").ok());

  grid::ContainerClient observer(&network, "observer");
  auto services = observer.ListServices("container.uiuc");
  ASSERT_TRUE(services.ok());
  EXPECT_EQ(*services, std::vector<std::string>{"ntcp.uiuc"});

  auto sdes = observer.FindServiceData("container.uiuc", "ntcp.uiuc", "txn.");
  ASSERT_TRUE(sdes.ok());
  ASSERT_EQ(sdes->size(), 1u);
  EXPECT_EQ((*sdes)[0].first, "txn.insp-1");
  EXPECT_EQ((*sdes)[0].second.Get("state"), "completed");

  // Remote subscription to transaction changes.
  std::vector<std::string> events;
  ASSERT_TRUE(observer
                  .Subscribe("container.uiuc", "ntcp.uiuc", "txn.",
                             [&](const std::string&, const std::string& key,
                                 const grid::SdeValue& value) {
                               events.push_back(key + ":" +
                                                value.Get("state"));
                             })
                  .ok());
  ASSERT_TRUE(server.Propose(MakeProposal("insp-2", 0.01)).accepted);
  ASSERT_TRUE(server.Execute("insp-2").ok());
  // proposed->accepted, executing, completed all publish.
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.back(), "txn.insp-2:completed");
}

// --- write-ahead log recovery (docs/RECOVERY.md) --------------------------------------

/// Byte offset where the last complete WAL frame starts, so tests can chop
/// the log exactly at a record boundary (frame: [u32 len][u32 crc][body]).
std::size_t LastFrameOffset(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  std::size_t last = 0;
  while (offset + 8 <= bytes.size()) {
    const std::uint32_t length = static_cast<std::uint32_t>(bytes[offset]) |
                                 static_cast<std::uint32_t>(bytes[offset + 1])
                                     << 8 |
                                 static_cast<std::uint32_t>(bytes[offset + 2])
                                     << 16 |
                                 static_cast<std::uint32_t>(bytes[offset + 3])
                                     << 24;
    if (offset + 8 + length > bytes.size()) break;
    last = offset;
    offset += 8 + length;
  }
  return last;
}

class NtcpWalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { network_.SetClock(&clock_); }

  /// Builds a fresh server incarnation over `storage_` and replays the log.
  std::unique_ptr<NtcpServer> Restart(WalRecovery* recovery,
                                      plugins::SimulationPlugin** plugin_out =
                                          nullptr) {
    auto plugin = MakeElasticPlugin();
    if (plugin_out != nullptr) *plugin_out = plugin.get();
    auto server = std::make_unique<NtcpServer>(&network_, "ntcp.wal",
                                               std::move(plugin), &clock_);
    EXPECT_TRUE(server->Start().ok());
    logs_.push_back(std::make_unique<wal::Log>(&storage_));
    auto recovered = server->AttachWal(logs_.back().get());
    EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
    if (recovery != nullptr && recovered.ok()) *recovery = *recovered;
    return server;
  }

  util::SimClock clock_{1'000'000};
  net::Network network_;
  wal::MemoryStorage storage_;
  std::vector<std::unique_ptr<wal::Log>> logs_;
};

TEST_F(NtcpWalRecoveryTest, RestartRebuildsTransactionTable) {
  WalRecovery recovery;
  auto first = Restart(&recovery);
  EXPECT_EQ(recovery.records_replayed, 0u);  // empty log: fresh state
  ASSERT_TRUE(first->Propose(MakeProposal("t1", 0.02)).accepted);
  ASSERT_TRUE(first->Execute("t1").ok());
  ASSERT_TRUE(first->Propose(MakeProposal("t2", 0.03)).accepted);
  first.reset();  // process exits; only the WAL survives

  plugins::SimulationPlugin* plugin = nullptr;
  auto second = Restart(&recovery, &plugin);
  EXPECT_EQ(recovery.transactions_recovered, 2u);
  EXPECT_EQ(recovery.inflight_failed, 0u);
  EXPECT_EQ(second->GetTransaction("t1")->state, TransactionState::kCompleted);
  EXPECT_EQ(second->GetTransaction("t2")->state, TransactionState::kAccepted);

  // At-most-once across the restart: a retried execute is served from the
  // recovered result cache, never re-run into the plugin.
  auto replayed = second->Execute("t1");
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->results.size(), 1u);
  EXPECT_NEAR(replayed->results[0].measured_force[0], 20.0, 1e-9);
  EXPECT_EQ(plugin->executions(), 0u);
  EXPECT_EQ(second->stats().duplicate_executes, 1u);

  // A retried propose for a recovered transaction deduplicates too.
  EXPECT_TRUE(second->Propose(MakeProposal("t2", 0.03)).accepted);
  EXPECT_EQ(second->stats().duplicate_proposals, 1u);

  // The still-accepted transaction remains executable on the new incarnation.
  EXPECT_TRUE(second->Execute("t2").ok());
  EXPECT_EQ(plugin->executions(), 1u);
}

TEST_F(NtcpWalRecoveryTest, InflightExecutionIsCrashMarkedFailed) {
  auto first = Restart(nullptr);
  ASSERT_TRUE(first->Propose(MakeProposal("t1", 0.02)).accepted);
  ASSERT_TRUE(first->Execute("t1").ok());
  first.reset();

  // Drop the final (kCompleted) record: the process died after the durable
  // "executing" intent but before the completion reached the log.
  auto bytes = storage_.Load();
  ASSERT_TRUE(bytes.ok());
  storage_.ForceTruncate(LastFrameOffset(*bytes));

  WalRecovery recovery;
  auto second = Restart(&recovery);
  EXPECT_EQ(recovery.transactions_recovered, 1u);
  EXPECT_EQ(recovery.inflight_failed, 1u);
  auto record = second->GetTransaction("t1");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, TransactionState::kFailed);
  EXPECT_NE(record->detail.find("crash"), std::string::npos);

  // The coordinator's retry observes the failure instead of re-executing: the
  // specimen may or may not have moved, and only a fresh transaction may act.
  auto retried = second->Execute("t1");
  ASSERT_FALSE(retried.ok());
  EXPECT_EQ(retried.status().code(), ErrorCode::kAborted);
  EXPECT_EQ(second->stats().duplicate_executes, 1u);
}

TEST_F(NtcpWalRecoveryTest, TornTailIsDiscardedOnRestart) {
  auto first = Restart(nullptr);
  ASSERT_TRUE(first->Propose(MakeProposal("t1", 0.02)).accepted);
  ASSERT_TRUE(first->Execute("t1").ok());
  first.reset();

  // Tear the final record mid-frame (crash between append and sync).
  auto bytes = storage_.Load();
  ASSERT_TRUE(bytes.ok());
  storage_.ForceTruncate(LastFrameOffset(*bytes) + 3);

  WalRecovery recovery;
  auto second = Restart(&recovery);
  EXPECT_GT(recovery.torn_bytes_truncated, 0u);
  // The torn completion is gone, so the transaction crash-marks kFailed.
  EXPECT_EQ(recovery.inflight_failed, 1u);
  EXPECT_EQ(second->GetTransaction("t1")->state, TransactionState::kFailed);
}

TEST_F(NtcpWalRecoveryTest, DoubleRecoveryIsIdempotent) {
  auto first = Restart(nullptr);
  ASSERT_TRUE(first->Propose(MakeProposal("t1", 0.02)).accepted);
  ASSERT_TRUE(first->Propose(MakeProposal("t2", 0.03)).accepted);
  ASSERT_TRUE(first->Execute("t1").ok());  // t1's completion is the last frame
  first.reset();
  auto bytes = storage_.Load();
  ASSERT_TRUE(bytes.ok());
  storage_.ForceTruncate(LastFrameOffset(*bytes));  // t1 left kExecuting

  WalRecovery recovery;
  auto second = Restart(&recovery);
  EXPECT_EQ(recovery.inflight_failed, 1u);
  second.reset();

  // The crash-mark itself was logged, so a second recovery replays it as a
  // plain transition: same table, nothing new to crash-mark.
  auto third = Restart(&recovery);
  EXPECT_EQ(recovery.transactions_recovered, 2u);
  EXPECT_EQ(recovery.inflight_failed, 0u);
  EXPECT_EQ(third->GetTransaction("t1")->state, TransactionState::kFailed);
  EXPECT_EQ(third->GetTransaction("t2")->state, TransactionState::kAccepted);
}

TEST_F(NtcpWalRecoveryTest, CorruptLogRefusesToRecover) {
  auto first = Restart(nullptr);
  ASSERT_TRUE(first->Propose(MakeProposal("t1", 0.02)).accepted);
  first.reset();
  storage_.CorruptByte(9);  // inside the first frame's body

  auto plugin = MakeElasticPlugin();
  auto server = std::make_unique<NtcpServer>(&network_, "ntcp.wal",
                                             std::move(plugin), &clock_);
  ASSERT_TRUE(server->Start().ok());
  wal::Log log(&storage_);
  auto recovered = server->AttachWal(&log);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), ErrorCode::kDataLoss);
}

}  // namespace
}  // namespace nees::ntcp
