// Tests for the UC Davis centrifuge substrate (§5): soil profile physics,
// robot-arm kinematics and tooling rules, bender-element velocity
// measurement, ground improvement, and end-to-end teleoperation of the
// whole rig through a standard NTCP server.
#include <cmath>

#include <gtest/gtest.h>

#include "centrifuge/plugin.h"
#include "centrifuge/robot.h"
#include "net/network.h"
#include "ntcp/client.h"
#include "ntcp/server.h"

namespace nees::centrifuge {
namespace {

using util::ErrorCode;

// --- soil model ----------------------------------------------------------------

TEST(SoilModelTest, DefaultProfileLayersStiffenWithDepth) {
  SoilModel soil = SoilModel::DefaultProfile(0.3);
  ASSERT_EQ(soil.layer_count(), 3u);
  EXPECT_LT(soil.layer(0).shear_wave_velocity,
            soil.layer(1).shear_wave_velocity);
  EXPECT_LT(soil.layer(1).shear_wave_velocity,
            soil.layer(2).shear_wave_velocity);
  EXPECT_NE(soil.LayerAt(-0.05), nullptr);
  EXPECT_NE(soil.LayerAt(-0.29), nullptr);
  EXPECT_EQ(soil.LayerAt(-0.5), nullptr);
  EXPECT_EQ(soil.LayerAt(0.1), nullptr);
}

TEST(SoilModelTest, TravelTimeMatchesUniformVelocityInOneLayer) {
  SoilModel soil({{0.0, -0.3, 200.0, 1e6, 1600.0}});
  // 0.2 m apart horizontally at the same depth, v = 200 m/s -> 1 ms.
  auto time = soil.TravelTimeSeconds({0.1, 0.1, -0.1}, {0.3, 0.1, -0.1});
  ASSERT_TRUE(time.ok());
  EXPECT_NEAR(*time, 0.2 / 200.0, 1e-9);
}

TEST(SoilModelTest, TravelTimeCrossingLayersIsBetweenExtremes) {
  SoilModel soil = SoilModel::DefaultProfile(0.3);
  auto time = soil.TravelTimeSeconds({0.1, 0.1, -0.02}, {0.1, 0.1, -0.28});
  ASSERT_TRUE(time.ok());
  const double length = 0.26;
  EXPECT_GT(*time, length / 260.0);  // slower than the fastest layer
  EXPECT_LT(*time, length / 120.0);  // faster than the slowest layer
}

TEST(SoilModelTest, DensifyRaisesVelocityInAffectedLayers) {
  SoilModel soil = SoilModel::DefaultProfile(0.3);
  const double before = soil.layer(0).shear_wave_velocity;
  soil.Densify(-0.05, 0.0, 1.2);  // only the top layer intersects
  EXPECT_NEAR(soil.layer(0).shear_wave_velocity, before * 1.2, 1e-9);
  EXPECT_NEAR(soil.layer(2).shear_wave_velocity, 260.0, 1e-9);
}

TEST(SoilModelTest, DegenerateRaysRejected) {
  SoilModel soil = SoilModel::DefaultProfile(0.3);
  EXPECT_FALSE(
      soil.TravelTimeSeconds({0.1, 0.1, -0.1}, {0.1, 0.1, -0.1}).ok());
  EXPECT_FALSE(
      soil.TravelTimeSeconds({0.1, 0.1, 0.5}, {0.1, 0.1, -0.1}).ok());
}

// --- robot arm -----------------------------------------------------------------

class RobotArmTest : public ::testing::Test {
 protected:
  RobotArmTest()
      : soil_(SoilModel::DefaultProfile(0.3)),
        arm_(RobotArm::Params{}, &soil_, 7) {}

  SoilModel soil_;
  RobotArm arm_;
};

TEST_F(RobotArmTest, MovesWithinWorkspaceAndAccountsTime) {
  auto position = arm_.MoveTo({0.3, 0.2, 0.02});
  ASSERT_TRUE(position.ok());
  EXPECT_EQ(position->x, 0.3);
  EXPECT_GT(arm_.elapsed_seconds(), 0.0);
  EXPECT_EQ(arm_.MoveTo({2.0, 0.2, 0.02}).status().code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(arm_.MoveTo({0.3, 0.2, -0.5}).status().code(),
            ErrorCode::kOutOfRange);
}

TEST_F(RobotArmTest, NonProbingToolCannotEnterSoil) {
  ASSERT_TRUE(arm_.ExchangeTool(Tool::kStereoCamera).ok());
  EXPECT_EQ(arm_.MoveTo({0.3, 0.2, -0.05}).status().code(),
            ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(arm_.ExchangeTool(Tool::kNeedleProbe).ok());
  EXPECT_TRUE(arm_.MoveTo({0.3, 0.2, -0.05}).ok());
}

TEST_F(RobotArmTest, ToolChangeRequiresRetractionAndTakesTime) {
  ASSERT_TRUE(arm_.ExchangeTool(Tool::kNeedleProbe).ok());
  ASSERT_TRUE(arm_.MoveTo({0.3, 0.2, -0.05}).ok());
  EXPECT_EQ(arm_.ExchangeTool(Tool::kGripper).code(),
            ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(arm_.MoveTo({0.3, 0.2, 0.02}).ok());
  const double before = arm_.elapsed_seconds();
  ASSERT_TRUE(arm_.ExchangeTool(Tool::kGripper).ok());
  EXPECT_GE(arm_.elapsed_seconds() - before, 30.0);
  EXPECT_EQ(arm_.current_tool(), Tool::kGripper);
}

TEST_F(RobotArmTest, PenetrometerReadsStifferWithDepth) {
  ASSERT_TRUE(arm_.ExchangeTool(Tool::kConePenetrometer).ok());
  auto profile = arm_.PenetrateTo(-0.28, 14);
  ASSERT_TRUE(profile.ok());
  ASSERT_EQ(profile->size(), 14u);
  // Resistance near the surface is well below resistance at depth.
  EXPECT_LT((*profile)[0].second * 2.0, profile->back().second);
  // Wrong tool fails.
  ASSERT_TRUE(arm_.ExchangeTool(Tool::kGripper).ok());
  EXPECT_EQ(arm_.PenetrateTo(-0.1, 5).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(RobotArmTest, NeedleProbeMeasuresLayerDensity) {
  ASSERT_TRUE(arm_.ExchangeTool(Tool::kNeedleProbe).ok());
  auto density = arm_.ProbeDensity(-0.25);
  ASSERT_TRUE(density.ok());
  EXPECT_NEAR(*density, 1800.0, 60.0);  // dense bottom layer +/- noise
}

TEST_F(RobotArmTest, PileInstallationImprovesTheGround) {
  BenderElementArray benders(&soil_, 9);
  benders.AddElement("s", {0.1, 0.1, -0.05});
  benders.AddElement("r", {0.3, 0.1, -0.05});
  auto before = benders.MeasureVelocity("s", "r");
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(arm_.ExchangeTool(Tool::kGripper).ok());
  ASSERT_TRUE(arm_.MoveTo({0.2, 0.1, 0.0}).ok());
  ASSERT_TRUE(arm_.InstallPile(-0.2).ok());
  EXPECT_EQ(arm_.piles_installed(), 1);

  auto after = benders.MeasureVelocity("s", "r");
  ASSERT_TRUE(after.ok());
  EXPECT_GT(*after, *before * 1.05);  // §5: "how the properties of soil
                                      // change during ... ground improvement"
}

TEST_F(RobotArmTest, ImagingToolsProduceViewDependentImages) {
  ASSERT_TRUE(arm_.ExchangeTool(Tool::kStereoCamera).ok());
  auto image1 = arm_.CaptureImage();
  ASSERT_TRUE(image1.ok());
  ASSERT_TRUE(arm_.MoveTo({0.4, 0.3, 0.02}).ok());
  auto image2 = arm_.CaptureImage();
  ASSERT_TRUE(image2.ok());
  EXPECT_NE(*image1, *image2);
  ASSERT_TRUE(arm_.ExchangeTool(Tool::kGripper).ok());
  EXPECT_EQ(arm_.CaptureImage().status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(BenderElementTest, VelocityMatchesProfileWithinNoise) {
  SoilModel soil({{0.0, -0.3, 200.0, 1e6, 1600.0}});
  BenderElementArray benders(&soil, 5);
  benders.AddElement("s", {0.1, 0.1, -0.1});
  benders.AddElement("r", {0.4, 0.1, -0.1});
  auto velocity = benders.MeasureVelocity("s", "r");
  ASSERT_TRUE(velocity.ok());
  EXPECT_NEAR(*velocity, 200.0, 15.0);
  EXPECT_EQ(benders.MeasureVelocity("s", "ghost").status().code(),
            ErrorCode::kNotFound);
}

// --- teleoperation through NTCP ---------------------------------------------------

class CentrifugeNtcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    soil_ = std::make_shared<SoilModel>(SoilModel::DefaultProfile(0.3));
    arm_ = std::make_shared<RobotArm>(RobotArm::Params{}, soil_.get(), 7);
    benders_ = std::make_shared<BenderElementArray>(soil_.get(), 9);
    benders_->AddElement("be1", {0.1, 0.1, -0.05});
    benders_->AddElement("be2", {0.3, 0.1, -0.05});
    server_ = std::make_unique<ntcp::NtcpServer>(
        &network_, "ntcp.ucdavis",
        std::make_unique<RobotArmPlugin>(arm_, benders_));
    ASSERT_TRUE(server_->Start().ok());
    rpc_ = std::make_unique<net::RpcClient>(&network_, "davis.operator");
    client_ = std::make_unique<ntcp::NtcpClient>(rpc_.get(), "ntcp.ucdavis");
  }

  util::Result<ntcp::TransactionResult> Run(
      const std::string& id,
      std::vector<ntcp::ControlPointRequest> actions) {
    ntcp::Proposal proposal;
    proposal.transaction_id = id;
    proposal.actions = std::move(actions);
    NEES_RETURN_IF_ERROR(client_->Propose(proposal));
    return client_->Execute(id);
  }

  net::Network network_;
  std::shared_ptr<SoilModel> soil_;
  std::shared_ptr<RobotArm> arm_;
  std::shared_ptr<BenderElementArray> benders_;
  std::unique_ptr<ntcp::NtcpServer> server_;
  std::unique_ptr<net::RpcClient> rpc_;
  std::unique_ptr<ntcp::NtcpClient> client_;
};

TEST_F(CentrifugeNtcpTest, FullGroundImprovementCampaignOverNtcp) {
  // 1. Baseline shear-wave velocity via the embedded bender elements.
  auto baseline = Run("t1", {{"bender:be1:be2", {}, {}}});
  ASSERT_TRUE(baseline.ok());
  const double v_before = baseline->results[0].measured_force[0];

  // 2. Mount the gripper, move over the target, install a pile.
  ASSERT_TRUE(Run("t2", {{"tool:gripper", {}, {}}}).ok());
  ASSERT_TRUE(Run("t3", {{"arm", {0.2, 0.1, 0.0}, {}}}).ok());
  ASSERT_TRUE(Run("t4", {{"pile", {-0.2}, {}}}).ok());

  // 3. Re-measure: the ground improved.
  auto after = Run("t5", {{"bender:be1:be2", {}, {}}});
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->results[0].measured_force[0], v_before * 1.05);

  // 4. Swap to the penetrometer and verify the profile from the same
  //    coordinatorless NTCP client (one transaction, two actions).
  auto cpt = Run("t6", {{"tool:cone-penetrometer", {}, {}},
                        {"penetrate", {-0.25}, {}}});
  ASSERT_TRUE(cpt.ok());
  EXPECT_GT(cpt->results[1].measured_force[0], 1e6);
}

TEST_F(CentrifugeNtcpTest, NegotiationRejectsUnsafeActionsBeforeMotion) {
  // Outside the workspace: rejected at PROPOSE time; the arm never moved.
  ntcp::Proposal bad;
  bad.transaction_id = "bad1";
  bad.actions.push_back({"arm", {5.0, 0.1, 0.0}, {}});
  // Validate only checks shape; the workspace check happens at execute —
  // but an unknown control point or malformed action is caught at propose.
  ntcp::Proposal malformed;
  malformed.transaction_id = "bad2";
  malformed.actions.push_back({"penetrate", {0.1}, {}});  // positive depth
  EXPECT_EQ(client_->Propose(malformed).code(), ErrorCode::kPolicyViolation);

  ntcp::Proposal unknown;
  unknown.transaction_id = "bad3";
  unknown.actions.push_back({"warp-drive", {1.0}, {}});
  EXPECT_EQ(client_->Propose(unknown).code(), ErrorCode::kPolicyViolation);

  EXPECT_DOUBLE_EQ(arm_->elapsed_seconds(), 0.0);
}

TEST_F(CentrifugeNtcpTest, ToolPrerequisiteFailuresAreCleanTransactions) {
  // Penetrating without the cone mounted fails the transaction; the
  // at-most-once machinery records it and a retry is refused.
  auto result = Run("t1", {{"penetrate", {-0.2}, {}}});
  EXPECT_EQ(result.status().code(), ErrorCode::kFailedPrecondition);
  auto record = client_->GetTransaction("t1");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, ntcp::TransactionState::kFailed);
}

}  // namespace
}  // namespace nees::centrifuge
