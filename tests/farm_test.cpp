// Tests for the multi-tenant experiment farm: mixed waves over one shared
// grid host, reap-to-baseline soft-state hygiene, farm-vs-standalone
// bit-identity for a full MOST tenant, per-tenant lint cleanliness of the
// shared trace, and the scaled CHEF swarm over the shared NSDS stream.
#include <string>

#include <gtest/gtest.h>

#include "check/checker.h"
#include "farm/farm.h"
#include "most/most.h"
#include "net/endpoint.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nees::farm {
namespace {

TEST(FarmTest, MixedWaveCompletesAndReapsToBaseline) {
  net::Network network(net::DeliveryMode::kImmediate);
  FarmOptions options;
  options.workers = 4;
  options.mini_steps = 40;
  options.most_steps = 60;
  ExperimentFarm farm(&network, network.clock(), options);

  constexpr std::size_t kTenants = 12;
  for (std::size_t i = 0; i < kTenants; ++i) {
    SessionSpec spec;
    spec.kind = i % 10 == 8   ? SessionKind::kMost
                : i % 10 == 9 ? SessionKind::kCentrifuge
                              : SessionKind::kMiniMost;
    const std::string tenant = farm.Admit(spec);
    EXPECT_FALSE(tenant.empty());
  }
  EXPECT_EQ(farm.admitted(), kTenants);

  const util::Result<FarmReport> run = farm.RunAll();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->admitted, kTenants);
  EXPECT_EQ(run->completed, kTenants);
  EXPECT_EQ(run->failed, 0u);
  ASSERT_EQ(run->sessions.size(), kTenants);
  for (const SessionResult& session : run->sessions) {
    EXPECT_TRUE(session.ok) << session.tenant << ": " << session.error;
    EXPECT_NE(session.history_digest, 0u) << session.tenant;
  }

  // Every tenant placed real services on the shared fabric...
  EXPECT_GT(run->peak_services, farm.baseline_services());
  EXPECT_GT(run->peak_registrations, farm.baseline_registrations());
  // ...and the reap removed all of them, back to the host baseline.
  EXPECT_EQ(run->services_after_reap, farm.baseline_services());
  EXPECT_EQ(run->registrations_after_reap, farm.baseline_registrations());

  // The admission queue is cleared; a second wave reuses the same host.
  EXPECT_EQ(farm.admitted(), 0u);
  (void)farm.Admit({SessionKind::kMiniMost, 20, 0});
  const util::Result<FarmReport> second = farm.RunAll();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->completed, 1u);
  EXPECT_EQ(second->services_after_reap, farm.baseline_services());
}

TEST(FarmTest, FarmHostedMostMatchesStandaloneBitIdentical) {
  constexpr std::size_t kSteps = 60;
  constexpr std::uint64_t kSeed = 424242;

  // Standalone: the pre-tenancy assembly on its own network, trimmed the
  // same way the farm trims its tenants (no repository, no DAQ cadence) so
  // the comparison isolates the tenancy plumbing.
  structural::TimeHistory standalone;
  {
    net::Network network(net::DeliveryMode::kImmediate);
    most::MostOptions options;
    options.steps = kSteps;
    options.seed = kSeed;
    options.step_engine = psd::StepEngine::kSequential;
    options.with_repository = false;
    options.daq_flush_every_steps = 0;
    most::MostExperiment experiment(&network, network.clock(),
                                    std::move(options));
    const util::Result<psd::RunReport> report =
        experiment.Run(psd::FaultPolicy::kFaultTolerant, "standalone-run");
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report->completed) << report->failure.ToString();
    standalone = report->history;
  }

  // Farm-hosted: same steps/seed/engine, but namespaced endpoints on the
  // shared container/registry and streaming into the shared NSDS.
  net::Network network(net::DeliveryMode::kImmediate);
  FarmOptions options;
  options.workers = 2;
  options.keep_histories = true;
  ExperimentFarm farm(&network, network.clock(), options);
  (void)farm.Admit({SessionKind::kMost, kSteps, kSeed});
  const util::Result<FarmReport> run = farm.RunAll();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->sessions.size(), 1u);
  const SessionResult& hosted = run->sessions[0];
  ASSERT_TRUE(hosted.ok) << hosted.error;

  EXPECT_EQ(hosted.history.dt_seconds, standalone.dt_seconds);
  ASSERT_EQ(hosted.history.displacement.size(),
            standalone.displacement.size());
  for (std::size_t step = 0; step < standalone.displacement.size(); ++step) {
    ASSERT_EQ(hosted.history.displacement[step].size(),
              standalone.displacement[step].size());
    for (std::size_t dof = 0; dof < standalone.displacement[step].size();
         ++dof) {
      // Bit-identical, not approximately equal: the namespace layer must
      // not perturb a single arithmetic step.
      EXPECT_EQ(hosted.history.displacement[step][dof],
                standalone.displacement[step][dof])
          << "step " << step << " dof " << dof;
    }
  }
}

TEST(FarmTest, ConcurrentTenantsStayLintCleanOnSharedTrace) {
  net::Network network(net::DeliveryMode::kImmediate);
  obs::Tracer tracer(network.clock());
  FarmOptions options;
  options.workers = 3;
  options.mini_steps = 30;
  options.tracer = &tracer;
  ExperimentFarm farm(&network, network.clock(), options);
  for (std::size_t i = 0; i < 5; ++i) {
    (void)farm.Admit({SessionKind::kMiniMost, 0, 0});
  }
  (void)farm.Admit({SessionKind::kCentrifuge, 1, 0});
  const util::Result<FarmReport> run = farm.RunAll();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->failed, 0u);

  // One shared tracer carries every tenant's NTCP spans; namespaced
  // transaction ids keep the at-most-once-per-transaction rule satisfiable
  // across tenants.
  const check::LintReport lint = check::LintSpans(tracer.Snapshot());
  EXPECT_TRUE(lint.ok()) << lint.violations.size() << " violations, first: "
                         << (lint.violations.empty()
                                 ? std::string()
                                 : lint.violations[0].message);
}

TEST(FarmTest, ScaledSwarmOverSharedStreamReportsNoFailures) {
  net::Network network(net::DeliveryMode::kImmediate);
  FarmOptions options;
  options.workers = 4;
  options.mini_steps = 30;
  ExperimentFarm farm(&network, network.clock(), options);
  for (std::size_t i = 0; i < 3; ++i) {
    (void)farm.Admit({SessionKind::kMiniMost, 0, 0});
  }
  const util::Result<FarmReport> run = farm.RunAll();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->failed, 0u);

  SwarmOptions swarm_options;
  swarm_options.participants = 300;
  swarm_options.shards = 4;
  const chef::SwarmReport swarm =
      RunScaledSwarm(&network, ExperimentFarm::kChef, swarm_options);
  EXPECT_EQ(swarm.participants, 300);
  EXPECT_EQ(swarm.failures, 0);
  EXPECT_GT(swarm.chat_posts, 0);
  EXPECT_GT(swarm.viewer_reads, 0);
}

TEST(FarmTest, ReportsEndpointFootprintMatchingTheInternTable) {
  net::Network network(net::DeliveryMode::kImmediate);
  ExperimentFarm farm(&network, network.clock(), {});
  (void)farm.Admit({SessionKind::kMiniMost, 20, 0});
  const util::Result<FarmReport> run = farm.RunAll();
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  net::EndpointTable& table = net::EndpointTable::Instance();
  EXPECT_EQ(run->endpoints_interned, table.size());
  obs::MetricsRegistry metrics;
  table.PublishGauges(metrics);
  EXPECT_EQ(metrics.GaugeValue("net.endpoints.interned"),
            static_cast<double>(table.size()));
  EXPECT_GT(metrics.GaugeValue("net.endpoints.interned_bytes"), 0.0);
}

}  // namespace
}  // namespace nees::farm
