// Integration tests for the full MOST assembly: dry run vs hybrid run,
// simulation/physical agreement (the NTCP transparency claim), the §3.4
// fault narrative in miniature, and the end-to-end data path (DAQ ->
// repository, NSDS streaming, OGSI inspection).
#include <cmath>

#include <gtest/gtest.h>

#include "grid/container.h"
#include "most/mini_most.h"
#include "most/most.h"
#include "testbed/shorewestern.h"
#include "nsds/nsds.h"
#include "util/clock.h"

namespace nees::most {
namespace {

MostOptions SmallOptions(std::size_t steps, bool hybrid) {
  MostOptions options;
  options.steps = steps;
  options.hybrid = hybrid;
  options.daq_flush_every_steps = 50;
  return options;
}

TEST(MostModelTest, StiffnessBreakdownMatchesFem) {
  const MostOptions options;
  const StiffnessBreakdown breakdown = ComputeStiffnessBreakdown(options);
  EXPECT_GT(breakdown.left_n_per_m, 0.0);
  // Pin-top column is 4x softer than the rigid-top column (3EI vs 12EI).
  EXPECT_NEAR(breakdown.right_n_per_m / breakdown.left_n_per_m, 4.0, 1e-9);
  EXPECT_NEAR(breakdown.middle_n_per_m, breakdown.right_n_per_m, 1e-9);

  // Cross-check the single-column terms against the FEM frame module.
  structural::FrameModel column;
  const auto base = column.AddNode(0, 0);
  const auto top = column.AddNode(0, options.column_height_m);
  column.FixAll(base);
  column.Fix(top, structural::Dof::kRz);
  column.Fix(top, structural::Dof::kUy);
  column.AddElement(base, top, options.column_section);
  const auto dof = column.DofIndex(top, structural::Dof::kUx);
  ASSERT_TRUE(dof.has_value());
  EXPECT_NEAR(column.AssembleStiffness()(*dof, *dof),
              breakdown.right_n_per_m, 1.0);
}

TEST(MostModelTest, FrameIsWellPosedAndPeriodRealistic) {
  const MostOptions options;
  structural::FrameModel frame = BuildMostFrame(options);
  EXPECT_EQ(frame.FreeDofCount(), 9u);
  const auto k = frame.AssembleStiffness();
  EXPECT_TRUE(structural::CholeskyFactor(k).ok());

  // The reduced 1-DOF period should be sub-second (a stiff steel story).
  const StiffnessBreakdown breakdown = ComputeStiffnessBreakdown(options);
  const double omega = std::sqrt(breakdown.total() / options.story_mass_kg);
  const double period = 2.0 * M_PI / omega;
  EXPECT_GT(period, 0.2);
  EXPECT_LT(period, 1.5);
  // Central difference is stable at the MOST dt.
  EXPECT_LT(options.dt_seconds, 2.0 / omega);
}

class MostRunTest : public ::testing::Test {
 protected:
  util::SimClock clock_{1'000'000};
};

TEST_F(MostRunTest, DryRunCompletesAllSteps) {
  net::Network network;
  network.SetClock(&clock_);
  MostExperiment experiment(&network, &clock_, SmallOptions(150, false));
  auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "dry");
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed) << report->failure.ToString();
  EXPECT_EQ(report->steps_completed, 149u);
  // Every site executed every step exactly once.
  for (const char* endpoint : {MostExperiment::kNtcpUiuc,
                               MostExperiment::kNtcpNcsa,
                               MostExperiment::kNtcpCu}) {
    EXPECT_EQ(experiment.ServerStats(endpoint).executions, 149u) << endpoint;
  }
}

TEST_F(MostRunTest, DryRunMatchesNewmarkReference) {
  net::Network network;
  network.SetClock(&clock_);
  MostExperiment experiment(&network, &clock_, SmallOptions(200, false));
  auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "dry");
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed);

  auto reference = experiment.ReferenceSolution();
  ASSERT_TRUE(reference.ok());
  const double peak_ref = reference->PeakDisplacement(0);
  ASSERT_GT(peak_ref, 1e-4);

  double max_diff = 0.0;
  for (std::size_t i = 0; i < report->history.displacement.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(report->history.displacement[i][0] -
                                  reference->displacement[i][0]));
  }
  // Explicit vs implicit integration: small but nonzero divergence.
  EXPECT_LT(max_diff, 0.05 * peak_ref);
}

TEST_F(MostRunTest, HybridRunAgreesWithDryRun) {
  // The paper's development methodology (§3): verify with all-simulation,
  // then swap in physical substructures — transparently to the coordinator.
  net::Network network_dry;
  network_dry.SetClock(&clock_);
  MostExperiment dry(&network_dry, &clock_, SmallOptions(150, false));
  auto dry_report = dry.Run(psd::FaultPolicy::kFaultTolerant, "dry");
  ASSERT_TRUE(dry_report.ok());
  ASSERT_TRUE(dry_report->completed);

  net::Network network_hybrid;
  network_hybrid.SetClock(&clock_);
  MostExperiment hybrid(&network_hybrid, &clock_, SmallOptions(150, true));
  auto hybrid_report = hybrid.Run(psd::FaultPolicy::kFaultTolerant, "pub");
  ASSERT_TRUE(hybrid_report.ok());
  ASSERT_TRUE(hybrid_report->completed) << hybrid_report->failure.ToString();

  const double peak = dry_report->history.PeakDisplacement(0);
  ASSERT_GT(peak, 1e-4);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < dry_report->history.displacement.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(dry_report->history.displacement[i][0] -
                                  hybrid_report->history.displacement[i][0]));
  }
  // Rig imperfections (settling, sensor noise) bound the divergence.
  EXPECT_LT(max_diff, 0.10 * peak);
}

TEST_F(MostRunTest, AsyncEngineBitIdenticalToSequential) {
  // E5/E6 determinism gate: in kImmediate delivery the completion-driven
  // engine resolves each site's call inline in issue order, so the hybrid
  // displacement record must match the sequential baseline bit for bit —
  // including across a recovered transient fault. The async engine runs
  // twice, unbatched and with per-site RPC batching, so the batch envelope
  // is held to the same bit-for-bit standard.
  struct EngineCase {
    psd::StepEngine engine;
    bool batch;
  };
  const EngineCase cases[] = {
      {psd::StepEngine::kSequential, false},
      {psd::StepEngine::kAsync, false},
      {psd::StepEngine::kAsync, true},
  };
  structural::TimeHistory histories[3];
  std::size_t engine_index = 0;
  for (const EngineCase& c : cases) {
    const psd::StepEngine engine = c.engine;
    util::SimClock clock{1'000'000};  // identical start time per run
    net::Network network;
    network.SetClock(&clock);
    MostOptions options = SmallOptions(120, true);
    options.step_engine = engine;
    MostExperiment experiment(&network, &clock, options);
    ASSERT_TRUE(experiment.Start().ok());
    net::RpcClient rpc(&network, "det.coordinator");
    auto config = experiment.MakeCoordinatorConfig(
        psd::FaultPolicy::kFaultTolerant, "det");
    config.retry.initial_backoff_micros = 1'000;
    config.batch_site_rpcs = c.batch;
    psd::SimulationCoordinator coordinator(config, &rpc, &clock);
    MostFaultSchedule faults(&network, "det.coordinator",
                             MostExperiment::kNtcpCu);
    faults.AddTransientBurst(60, 1);
    coordinator.SetStepObserver(
        [&](std::size_t step, const structural::Vector&,
            const std::vector<ntcp::TransactionResult>&) {
          faults.OnStep(step);
        });
    const psd::RunReport report = coordinator.Run();
    ASSERT_TRUE(report.completed) << report.failure.ToString();
    EXPECT_GE(report.transient_faults_recovered, 1u);
    if (engine == psd::StepEngine::kAsync) {
      EXPECT_EQ(report.threads_spawned, 0u);
    }
    histories[engine_index++] = report.history;
  }
  for (std::size_t variant = 1; variant < 3; ++variant) {
    ASSERT_EQ(histories[0].displacement.size(),
              histories[variant].displacement.size());
    for (std::size_t i = 0; i < histories[0].displacement.size(); ++i) {
      ASSERT_EQ(histories[0].displacement[i][0],
                histories[variant].displacement[i][0])
          << (variant == 1 ? "unbatched" : "batched")
          << " async diverged at step " << i;
    }
  }
}

TEST_F(MostRunTest, FaultNarrativeNaiveDiesFaultTolerantFinishes) {
  // Miniature §3.4: transient losses early (ridden out by RPC retries in
  // both configs... but the naive coordinator has no retries at all, so
  // the FIRST loss kills it), plus a fatal-sized burst near the end that
  // kills anything without step-level re-proposal.
  // Naive: one lost message at step 100 terminates the run at 100/119.
  {
    net::Network network;
    network.SetClock(&clock_);
    MostExperiment experiment(&network, &clock_, SmallOptions(120, false));
    ASSERT_TRUE(experiment.Start().ok());
    net::RpcClient rpc(&network, "naive.coordinator");
    psd::SimulationCoordinator coordinator(
        experiment.MakeCoordinatorConfig(psd::FaultPolicy::kNaive, "naive"),
        &rpc, &clock_);
    MostFaultSchedule faults(&network, "naive.coordinator",
                             MostExperiment::kNtcpCu);
    faults.AddTransientBurst(100, 1);
    coordinator.SetStepObserver(
        [&](std::size_t step, const structural::Vector&,
            const std::vector<ntcp::TransactionResult>&) {
          faults.OnStep(step);
        });
    const psd::RunReport report = coordinator.Run();
    EXPECT_FALSE(report.completed);
    EXPECT_EQ(report.steps_completed, 100u);
  }

  // Fault tolerant: the same burst plus two more elsewhere; completes.
  {
    net::Network network;
    network.SetClock(&clock_);
    MostExperiment experiment(&network, &clock_, SmallOptions(120, false));
    ASSERT_TRUE(experiment.Start().ok());
    net::RpcClient rpc(&network, "ft.coordinator");
    auto config = experiment.MakeCoordinatorConfig(
        psd::FaultPolicy::kFaultTolerant, "ft");
    config.retry.initial_backoff_micros = 1000;
    psd::SimulationCoordinator coordinator(config, &rpc, &clock_);
    MostFaultSchedule faults(&network, "ft.coordinator",
                             MostExperiment::kNtcpCu);
    faults.AddTransientBurst(30, 1);
    faults.AddTransientBurst(70, 2);
    faults.AddTransientBurst(100, 1);
    coordinator.SetStepObserver(
        [&](std::size_t step, const structural::Vector&,
            const std::vector<ntcp::TransactionResult>&) {
          faults.OnStep(step);
        });
    const psd::RunReport report = coordinator.Run();
    EXPECT_TRUE(report.completed) << report.failure.ToString();
    EXPECT_GE(report.transient_faults_recovered, 3u);
  }
}

TEST_F(MostRunTest, DataPathArchivesAndStreams) {
  net::Network network;
  network.SetClock(&clock_);
  MostOptions options = SmallOptions(120, false);
  MostExperiment experiment(&network, &clock_, options);
  ASSERT_TRUE(experiment.Start().ok());

  // A remote viewer subscribes to the structural response stream.
  nsds::NsdsSubscriber viewer(&network, "chef.viewer");
  ASSERT_TRUE(viewer.SubscribeTo(MostExperiment::kNsds, "most.").ok());

  auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "data");
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed);

  // Streaming: the viewer saw displacement and per-site force channels.
  const auto latest = viewer.Latest();
  EXPECT_TRUE(latest.contains("most.displacement"));
  EXPECT_TRUE(latest.contains("most.force.UIUC"));
  EXPECT_TRUE(latest.contains("most.force.CU"));
  EXPECT_GT(viewer.stats().frames_received, 100u);

  // Repository: DAQ drops were ingested with metadata.
  auto files = experiment.repository()->nfms().List("most/daq/");
  ASSERT_GE(files.size(), 2u);
  auto content = experiment.repository()->Fetch(files[0].logical_name);
  ASSERT_TRUE(content.ok());
  EXPECT_FALSE(content->empty());
  auto metadata =
      experiment.repository()->nmds().Get("file:" + files[0].logical_name);
  ASSERT_TRUE(metadata.ok());
  EXPECT_EQ(metadata->type, "daq-data");

  // Registry: all three NTCP servers are discoverable.
  EXPECT_EQ(experiment.registry()->Query("ntcp").size(), 3u);
}

TEST_F(MostRunTest, TransactionsInspectableViaOgsi) {
  net::Network network;
  network.SetClock(&clock_);
  MostExperiment experiment(&network, &clock_, SmallOptions(30, false));
  auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "insp");
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed);

  grid::ContainerClient observer(&network, "remote.observer");
  auto sdes =
      observer.FindServiceData("container.nees", MostExperiment::kNtcpUiuc,
                               "txn.");
  ASSERT_TRUE(sdes.ok());
  EXPECT_EQ(sdes->size(), 29u);  // one transaction per step
  for (const auto& [key, value] : *sdes) {
    EXPECT_EQ(value.Get("state"), "completed") << key;
  }
  auto last = observer.FindServiceData("container.nees",
                                       MostExperiment::kNtcpUiuc,
                                       "lastChanged");
  ASSERT_TRUE(last.ok());
  ASSERT_EQ(last->size(), 1u);
}

TEST_F(MostRunTest, OperatorSplittingModeTracksCentralDifference) {
  // MOST's dt is comfortably inside the CD stability limit, so both
  // integrators should produce closely matching responses.
  net::Network cd_network;
  cd_network.SetClock(&clock_);
  MostExperiment cd(&cd_network, &clock_, SmallOptions(200, false));
  auto cd_report = cd.Run(psd::FaultPolicy::kFaultTolerant, "cd");
  ASSERT_TRUE(cd_report.ok());
  ASSERT_TRUE(cd_report->completed);

  net::Network os_network;
  os_network.SetClock(&clock_);
  MostOptions os_options = SmallOptions(200, false);
  os_options.integrator = psd::PsdIntegrator::kOperatorSplitting;
  MostExperiment os(&os_network, &clock_, os_options);
  auto os_report = os.Run(psd::FaultPolicy::kFaultTolerant, "os");
  ASSERT_TRUE(os_report.ok());
  ASSERT_TRUE(os_report->completed) << os_report->failure.ToString();

  const double peak = cd_report->history.PeakDisplacement(0);
  ASSERT_GT(peak, 1e-4);
  EXPECT_NEAR(os_report->history.PeakDisplacement(0), peak, 0.05 * peak);
}

TEST_F(MostRunTest, SafetyInterlockMidRunStopsTheExperiment) {
  // Failure injection at the rig: the UIUC column's force limit is set so
  // low that strong motion trips the interlock mid-run. The coordinator
  // must stop with kSafetyInterlock (never retried — retrying into a
  // tripped rig would be exactly wrong) and no site may keep executing.
  net::Network network;
  network.SetClock(&clock_);
  MostOptions options = SmallOptions(200, true);
  MostExperiment experiment(&network, &clock_, options);
  ASSERT_TRUE(experiment.Start().ok());

  net::RpcClient rpc(&network, "interlock.coordinator");
  psd::SimulationCoordinator coordinator(
      experiment.MakeCoordinatorConfig(psd::FaultPolicy::kFaultTolerant,
                                       "interlock"),
      &rpc, &clock_);

  // Trip the interlock from "the control room" partway through.
  bool tripped = false;
  coordinator.SetStepObserver(
      [&](std::size_t step, const structural::Vector&,
          const std::vector<ntcp::TransactionResult>&) {
        if (step == 60 && !tripped) {
          tripped = true;
          // The Shore-Western operator hits the emergency stop.
          net::RpcClient operator_rpc(&network, "uiuc.operator");
          testbed::ShoreWesternClient panel(&operator_rpc,
                                            MostExperiment::kShoreWestern);
          ASSERT_TRUE(panel.EStop().ok());
        }
      });
  const psd::RunReport report = coordinator.Run();
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.failure.code(), util::ErrorCode::kSafetyInterlock);
  EXPECT_EQ(report.steps_completed, 61u);
  // The other sites stopped with it: executions equal completed steps + the
  // one aborted step at most.
  EXPECT_LE(experiment.ServerStats(MostExperiment::kNtcpCu).executions, 62u);
}

TEST_F(MostRunTest, RunsOverScheduledNetworkWithRealLatency) {
  // The same stack over the threaded, real-latency network: proves nothing
  // depends on the deterministic immediate mode.
  net::Network network(net::DeliveryMode::kScheduled);
  net::LinkModel wan;
  wan.latency_micros = 200;  // 0.2 ms each way
  network.SetDefaultLink(wan);
  MostOptions options = SmallOptions(60, false);
  options.with_repository = false;  // keep the threaded run lean
  options.daq_flush_every_steps = 0;
  MostExperiment experiment(&network, &util::SystemClock::Instance(),
                            options);
  auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "sched");
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed) << report->failure.ToString();
  EXPECT_EQ(report->steps_completed, 59u);
  // The async engine overlaps the three sites, so a step pays ~2 RTTs
  // (propose + execute), not 6: real WAN latency, but no serialization.
  EXPECT_GT(report->wall_seconds, 59 * 2 * 0.0004);
  EXPECT_EQ(report->threads_spawned, 0u);
}

// --- Mini-MOST (§3.5) ---------------------------------------------------------

TEST(MiniMostTest, BeamStiffnessMatchesBeamTheory) {
  MiniMostOptions options;
  // 3EI/L^3 with I = b h^3 / 12.
  const double inertia = 0.10 * std::pow(0.006, 3) / 12.0;
  EXPECT_NEAR(MiniMostBeamStiffness(options),
              3.0 * 200e9 * inertia / 1.0, 1e-6);
}

TEST(MiniMostTest, HardwareModeCompletesAndUsesTheStepper) {
  net::Network network;
  MiniMostOptions options;
  options.steps = 200;
  MiniMostExperiment experiment(&network, &util::SystemClock::Instance(),
                                options);
  auto report = experiment.Run("hw");
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed) << report->failure.ToString();
  EXPECT_EQ(report->steps_completed, 199u);
  EXPECT_GT(experiment.stepper_steps(), 0);
  EXPECT_EQ(experiment.ServerStats().executions, 199u);
}

TEST(MiniMostTest, KineticSimulatorTracksHardwareWithinTolerance) {
  MiniMostOptions options;
  options.steps = 200;

  net::Network hw_network;
  MiniMostExperiment hardware(&hw_network, &util::SystemClock::Instance(),
                              options);
  auto hw_report = hardware.Run("hw");
  ASSERT_TRUE(hw_report.ok());
  ASSERT_TRUE(hw_report->completed);

  net::Network sim_network;
  options.real_hardware = false;
  MiniMostExperiment simulator(&sim_network, &util::SystemClock::Instance(),
                               options);
  auto sim_report = simulator.Run("sim");
  ASSERT_TRUE(sim_report.ok());
  ASSERT_TRUE(sim_report->completed);
  EXPECT_EQ(simulator.stepper_steps(), 0);  // no hardware touched

  const double peak = hw_report->history.PeakDisplacement(0);
  ASSERT_GT(peak, 1e-5);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < hw_report->history.displacement.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(hw_report->history.displacement[i][0] -
                                  sim_report->history.displacement[i][0]));
  }
  // "Applicable for testing": close enough to debug against.
  EXPECT_LT(max_diff, 0.35 * peak);
}

TEST(MiniMostTest, TravelLimitRejectsExcessiveShaking) {
  net::Network network;
  MiniMostOptions options;
  options.steps = 300;
  options.peak_accel = 200.0;  // absurd tabletop shaking
  MiniMostExperiment experiment(&network, &util::SystemClock::Instance(),
                                options);
  auto report = experiment.Run("over");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->completed);
  // The LabVIEW plugin's travel limit rejects the command at propose time.
  EXPECT_EQ(report->failure.code(), util::ErrorCode::kPolicyViolation);
}

TEST_F(MostRunTest, HystereticColumnsDissipateEnergy) {
  net::Network network;
  network.SetClock(&clock_);
  MostOptions options = SmallOptions(150, true);
  options.hysteretic_columns = true;
  options.peak_accel = 6.0;  // drive the columns past yield
  MostExperiment experiment(&network, &clock_, options);
  auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "hyst");
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed) << report->failure.ToString();

  // Peak response should be bounded and the record should complete — the
  // hysteretic system absorbs the stronger shaking.
  EXPECT_LT(report->history.PeakDisplacement(0), 0.15);
  EXPECT_GT(report->history.PeakDisplacement(0), 1e-4);
}

}  // namespace
}  // namespace nees::most
