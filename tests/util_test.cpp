// Unit and property tests for the nees::util foundation layer.
#include <algorithm>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/clock.h"
#include "util/frame_pool.h"
#include "util/logging.h"
#include "util/open_hash.h"
#include "util/periodic.h"
#include "util/queue.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/sha256.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/uuid.h"

namespace nees::util {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = TimeoutError("link down");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kTimeout);
  EXPECT_EQ(status.message(), "link down");
  EXPECT_EQ(status.ToString(), "Timeout: link down");
}

TEST(StatusTest, TransientClassification) {
  EXPECT_TRUE(TimeoutError("x").transient());
  EXPECT_TRUE(Unavailable("x").transient());
  EXPECT_FALSE(PermissionDenied("x").transient());
  EXPECT_FALSE(PolicyViolation("x").transient());
  EXPECT_FALSE(OkStatus().transient());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(ErrorCode::kSafetyInterlock);
       ++code) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(code)), "Unknown");
  }
}

// GCC 12 at -O3 warns that ~Result<int> may destroy an uninitialized Status
// alternative; the variant index check makes that path unreachable (GCC
// bug 105593 family), so the warning is suppressed for this test only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST(ResultTest, HoldsError) {
  Result<int> result(NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

Status FailingHelper() { return Internal("boom"); }
Status ChainHelper() {
  NEES_RETURN_IF_ERROR(FailingHelper());
  return OkStatus();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(ChainHelper().code(), ErrorCode::kInternal);
}

Result<int> ProduceValue() { return 5; }
Status ConsumeValue(int* out) {
  NEES_ASSIGN_OR_RETURN(*out, ProduceValue());
  return OkStatus();
}

TEST(ResultTest, AssignOrReturnExtracts) {
  int value = 0;
  ASSERT_TRUE(ConsumeValue(&value).ok());
  EXPECT_EQ(value, 5);
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.UniformDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, UniformIntCoversFullRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(99);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(2024);
  SampleStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  SampleStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Exponential(2.5));
  EXPECT_NEAR(stats.mean(), 2.5, 0.1);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.Split();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

// --- SHA-256 (FIPS 180-4 known-answer tests) ---------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::HexHash(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::HexHash("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::HexHash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string text = "The MOST experiment ran 1500 steps over 5 hours.";
  Sha256 hasher;
  for (char c : text) hasher.Update(&c, 1);
  EXPECT_EQ(ToHex(hasher.Finish()), Sha256::HexHash(text));
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(ToHex(hasher.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, HmacRfc4231Case1) {
  // RFC 4231 test case 2: key "Jefe", data "what do ya want for nothing?".
  const auto mac = HmacSha256("Jefe", "what do ya want for nothing?");
  EXPECT_EQ(ToHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Sha256Test, HmacLongKeyIsHashed) {
  const std::string long_key(131, 0xaa);
  const auto mac = HmacSha256(
      long_key, "Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(ToHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- Bytes -------------------------------------------------------------------

TEST(BytesTest, RoundTripScalars) {
  ByteWriter writer;
  writer.WriteU8(7);
  writer.WriteU16(65535);
  writer.WriteU32(123456789);
  writer.WriteU64(0xDEADBEEFCAFEBABEULL);
  writer.WriteI64(-42);
  writer.WriteDouble(3.14159);
  writer.WriteBool(true);
  writer.WriteString("hello");

  ByteReader reader(writer.data());
  EXPECT_EQ(reader.ReadU8().value(), 7);
  EXPECT_EQ(reader.ReadU16().value(), 65535);
  EXPECT_EQ(reader.ReadU32().value(), 123456789u);
  EXPECT_EQ(reader.ReadU64().value(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(reader.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(reader.ReadDouble().value(), 3.14159);
  EXPECT_TRUE(reader.ReadBool().value());
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, RoundTripDoubleVector) {
  ByteWriter writer;
  writer.WriteDoubleVector({1.5, -2.5, 0.0, 1e300});
  ByteReader reader(writer.data());
  const auto values = reader.ReadDoubleVector();
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values, (std::vector<double>{1.5, -2.5, 0.0, 1e300}));
}

TEST(BytesTest, UnderrunReturnsDataLoss) {
  ByteWriter writer;
  writer.WriteU8(1);
  ByteReader reader(writer.data());
  EXPECT_TRUE(reader.ReadU8().ok());
  EXPECT_EQ(reader.ReadU32().status().code(), ErrorCode::kDataLoss);
}

TEST(BytesTest, CorruptStringLengthRejected) {
  ByteWriter writer;
  writer.WriteU32(1000);  // claims 1000 bytes, provides none
  ByteReader reader(writer.data());
  EXPECT_EQ(reader.ReadString().status().code(), ErrorCode::kDataLoss);
}

TEST(BytesTest, EmptyBuffer) {
  std::vector<std::uint8_t> empty;
  ByteReader reader(empty);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_FALSE(reader.ReadU8().ok());
}

// Property: arbitrary byte sequences never crash the reader.
class BytesFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BytesFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  std::vector<std::uint8_t> junk(rng.UniformInt(0, 200));
  for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.NextU64());
  ByteReader reader(junk);
  // Repeatedly read mixed types; every call must return a valid Result.
  while (!reader.AtEnd()) {
    if (!reader.ReadString().ok()) break;
  }
  ByteReader reader2(junk);
  while (!reader2.AtEnd()) {
    if (!reader2.ReadDoubleVector().ok()) break;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytesFuzzTest, ::testing::Range(0, 20));

// --- Queue -------------------------------------------------------------------

TEST(QueueTest, FifoOrder) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  queue.Push(3);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_EQ(queue.Pop().value(), 3);
}

TEST(QueueTest, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> queue;
  EXPECT_FALSE(queue.TryPop().has_value());
}

TEST(QueueTest, BoundedTryPushRespectsCapacity) {
  BlockingQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  queue.TryPop();
  EXPECT_TRUE(queue.TryPush(3));
}

TEST(QueueTest, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Close();
  EXPECT_FALSE(queue.Push(2));
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(QueueTest, PopForTimesOut) {
  BlockingQueue<int> queue;
  EXPECT_FALSE(queue.PopFor(std::chrono::milliseconds(5)).has_value());
}

TEST(QueueTest, ProducerConsumerAcrossThreads) {
  BlockingQueue<int> queue(16);
  const int kCount = 1000;
  std::thread producer([&queue] {
    for (int i = 0; i < kCount; ++i) queue.Push(i);
    queue.Close();
  });
  long long sum = 0;
  int received = 0;
  while (auto item = queue.Pop()) {
    sum += *item;
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kCount);
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

// --- Clock -------------------------------------------------------------------

TEST(ClockTest, SystemClockMonotonic) {
  auto& clock = SystemClock::Instance();
  const auto t0 = clock.NowMicros();
  const auto t1 = clock.NowMicros();
  EXPECT_GE(t1, t0);
}

TEST(ClockTest, SimClockAdvancesManually) {
  SimClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SleepMicros(25);  // virtual sleep advances instantly
  EXPECT_EQ(clock.NowMicros(), 175);
  clock.SetMicros(9);
  EXPECT_EQ(clock.NowMicros(), 9);
}

TEST(ClockTest, StopwatchMeasuresNonNegative) {
  Stopwatch watch;
  EXPECT_GE(watch.ElapsedMicros(), 0);
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
}

// --- Strings -----------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("ntcp.propose", "ntcp."));
  EXPECT_FALSE(StartsWith("nt", "ntcp."));
  EXPECT_TRUE(EndsWith("data.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "data.csv"));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(Format("step %d of %d", 1493, 1500), "step 1493 of 1500");
}

TEST(StringsTest, ParseDouble) {
  double value = 0;
  EXPECT_TRUE(ParseDouble(" 3.5 ", &value));
  EXPECT_DOUBLE_EQ(value, 3.5);
  EXPECT_FALSE(ParseDouble("3.5x", &value));
  EXPECT_FALSE(ParseDouble("", &value));
}

TEST(StringsTest, ParseInt) {
  long long value = 0;
  EXPECT_TRUE(ParseInt("-17", &value));
  EXPECT_EQ(value, -17);
  EXPECT_FALSE(ParseInt("17.5", &value));
}

// --- UUID --------------------------------------------------------------------

TEST(UuidTest, UniqueAndWellFormed) {
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::string id = NewUuid();
    EXPECT_EQ(id.size(), 32u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(UuidTest, DeterministicFromRng) {
  Rng a(5), b(5);
  EXPECT_EQ(NewUuidFrom(a), NewUuidFrom(b));
}

// --- Stats -------------------------------------------------------------------

TEST(StatsTest, BasicMoments) {
  SampleStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.stddev(), 1.2909944, 1e-6);
}

TEST(StatsTest, Percentiles) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) stats.Add(i);
  EXPECT_NEAR(stats.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(stats.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(stats.Percentile(100), 100.0, 1e-9);
}

TEST(StatsTest, EmptyIsSafe) {
  SampleStats stats;
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.Percentile(50), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(StatsTest, TextTableAligns) {
  TextTable table({"site", "steps"});
  table.AddRow({"UIUC", "1500"});
  table.AddRow({"CU", "1493"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| site |"), std::string::npos);
  EXPECT_NE(out.find("| CU   |"), std::string::npos);
}

// --- PeriodicTask -------------------------------------------------------------

TEST(PeriodicTaskTest, RunsRepeatedlyUntilStopped) {
  std::atomic<int> count{0};
  {
    PeriodicTask task(std::chrono::milliseconds(2), [&count] { ++count; });
    while (task.runs() < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    task.Stop();
    const int at_stop = count;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(count, at_stop);  // no runs after Stop
  }
  EXPECT_GE(count, 3);
}

TEST(PeriodicTaskTest, TriggerNowRunsInline) {
  std::atomic<int> count{0};
  PeriodicTask task(std::chrono::hours(1), [&count] { ++count; });
  task.TriggerNow();
  task.TriggerNow();
  EXPECT_EQ(count, 2);
  task.Stop();
}

TEST(PeriodicTaskTest, StopIsIdempotentAndDestructionIsSafe) {
  PeriodicTask task(std::chrono::milliseconds(1), [] {});
  task.Stop();
  task.Stop();
}

// --- OpenHashMap -------------------------------------------------------------

TEST(OpenHashMapTest, InsertFindErase) {
  OpenHashMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  map[7] = 70;
  map[8] = 80;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 70);
  EXPECT_EQ(map.Find(9), nullptr);
  EXPECT_TRUE(map.Erase(7));
  EXPECT_FALSE(map.Erase(7));
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(8), 80);
  EXPECT_EQ(map.size(), 1u);
}

TEST(OpenHashMapTest, FindNeverInsertsAndZeroKeyIsRejected) {
  OpenHashMap<std::uint32_t, int> map;
  EXPECT_EQ(map.Find(1), nullptr);  // empty table: no slots yet
  EXPECT_EQ(map.size(), 0u);
  map[1] = 10;
  EXPECT_EQ(map.Find(0), nullptr);  // 0 is the empty-slot sentinel
  EXPECT_FALSE(map.Erase(0));
}

TEST(OpenHashMapTest, GrowKeepsAllEntries) {
  OpenHashMap<std::uint64_t, std::uint64_t> map;
  constexpr std::uint64_t kCount = 5000;  // forces several rehashes
  for (std::uint64_t key = 1; key <= kCount; ++key) map[key] = key * 3;
  EXPECT_EQ(map.size(), kCount);
  for (std::uint64_t key = 1; key <= kCount; ++key) {
    ASSERT_NE(map.Find(key), nullptr) << key;
    EXPECT_EQ(*map.Find(key), key * 3);
  }
}

TEST(OpenHashMapTest, EraseBackwardShiftPreservesProbeChains) {
  // Sequential correlation-id style keys land in collision chains after
  // mixing; erasing from the middle of the table must never orphan a key
  // behind the erased slot (the classic tombstone-free deletion bug).
  OpenHashMap<std::uint64_t, int> map;
  constexpr std::uint64_t kCount = 512;
  for (std::uint64_t key = 1; key <= kCount; ++key) map[key] = 1;
  for (std::uint64_t key = 2; key <= kCount; key += 2) {
    ASSERT_TRUE(map.Erase(key));
  }
  for (std::uint64_t key = 1; key <= kCount; ++key) {
    if (key % 2 == 1) {
      ASSERT_NE(map.Find(key), nullptr) << "lost odd key " << key;
    } else {
      ASSERT_EQ(map.Find(key), nullptr) << "ghost even key " << key;
    }
  }
  EXPECT_EQ(map.size(), kCount / 2);
}

TEST(OpenHashMapTest, ForEachVisitsEveryEntryOnce) {
  OpenHashMap<std::uint32_t, int> map;
  for (std::uint32_t key = 1; key <= 100; ++key) map[key] = 1;
  int visited = 0;
  std::set<std::uint32_t> seen;
  map.ForEach([&](std::uint32_t key, int&) {
    ++visited;
    seen.insert(key);
  });
  EXPECT_EQ(visited, 100);
  EXPECT_EQ(seen.size(), 100u);
}

// --- FramePool ---------------------------------------------------------------

TEST(FramePoolTest, ReleaseThenAcquireReusesBuffer) {
  FramePool& pool = FramePool::Instance();
  // A capacity this specific cannot be satisfied from frames other tests
  // released, so the first acquire mints and the second must reuse.
  constexpr std::size_t kBytes = 1'234'567;
  const FramePool::Stats before = pool.stats();
  std::vector<std::uint8_t> frame = pool.Acquire(kBytes);
  frame.assign(16, 0xAB);
  pool.Release(std::move(frame));
  std::vector<std::uint8_t> again = pool.Acquire(kBytes);
  const FramePool::Stats after = pool.stats();
  EXPECT_TRUE(again.empty());  // contents discarded
  EXPECT_GE(again.capacity(), kBytes);  // capacity kept
  EXPECT_GE(after.reused, before.reused + 1);
  EXPECT_GE(after.returned, before.returned + 1);
  pool.Release(std::move(again));
}

TEST(FramePoolTest, LargeRequestDoesNotRegrowSmallFrames) {
  // Size classes: a large acquire must mint fresh rather than repeatedly
  // realloc a recycled small buffer (which would defeat the pool).
  FramePool& pool = FramePool::Instance();
  constexpr std::size_t kLarge = 4096;  // comfortably in the large class
  // Drain every recyclable large frame so the gated acquire cannot hit one
  // (the pool is process-wide; earlier tests may have stocked it).
  std::vector<std::vector<std::uint8_t>> drained;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t minted_before = pool.stats().minted;
    std::vector<std::uint8_t> frame = pool.Acquire(kLarge);
    const bool fresh = pool.stats().minted > minted_before;
    drained.push_back(std::move(frame));
    if (fresh) break;  // freelist exhausted: large list is now empty
  }
  pool.Release(std::vector<std::uint8_t>(64, 0));  // a small frame waits
  const FramePool::Stats before = pool.stats();
  std::vector<std::uint8_t> frame = pool.Acquire(kLarge);
  const FramePool::Stats after = pool.stats();
  EXPECT_EQ(after.minted, before.minted + 1);
  EXPECT_GE(frame.capacity(), kLarge);
  pool.Release(std::move(frame));
  for (auto& d : drained) pool.Release(std::move(d));
}

// --- ByteWriter frame reuse --------------------------------------------------

TEST(BytesTest, WriterAdoptsRecycledBufferWithoutAllocating) {
  std::vector<std::uint8_t> recycled;
  recycled.reserve(256);
  recycled.assign(10, 0xFF);  // stale contents must be discarded
  const std::uint8_t* storage = recycled.data();
  ByteWriter writer(std::move(recycled));
  EXPECT_EQ(writer.size(), 0u);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteString("abc");
  std::vector<std::uint8_t> out = writer.Take();
  EXPECT_EQ(out.data(), storage);  // same backing storage, no new buffer
  ByteReader reader(out);
  EXPECT_EQ(*reader.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*reader.ReadString(), "abc");
}

TEST(BytesTest, WriteBytesOverloadsAgree) {
  const std::vector<std::uint8_t> body = {1, 2, 3, 4, 5};
  ByteWriter by_vector;
  by_vector.WriteBytes(body);
  ByteWriter by_pointer;
  by_pointer.WriteBytes(body.data(), body.size());
  ByteWriter by_span;
  by_span.WriteBytes(std::span<const std::uint8_t>(body));
  EXPECT_EQ(by_vector.data(), by_pointer.data());
  EXPECT_EQ(by_vector.data(), by_span.data());
  ByteReader reader(by_span.data());
  auto view = reader.ReadBytesView();
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(std::equal(view->begin(), view->end(), body.begin()));
}

// --- Logging -----------------------------------------------------------------

TEST(LoggingTest, CaptureSeesRecords) {
  LogCapture capture;
  NEES_LOG_INFO("test.component") << "transaction " << 42 << " retried";
  const auto records = capture.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].component, "test.component");
  EXPECT_EQ(records[0].message, "transaction 42 retried");
  EXPECT_EQ(capture.CountContaining("retried"), 1);
}

TEST(LoggingTest, MinLevelFilters) {
  Logger::Instance().SetMinLevel(LogLevel::kWarn);
  LogCapture capture;
  NEES_LOG_DEBUG("t") << "hidden";
  NEES_LOG_ERROR("t") << "visible";
  Logger::Instance().SetMinLevel(LogLevel::kInfo);
  EXPECT_EQ(capture.CountContaining("hidden"), 0);
  EXPECT_EQ(capture.CountContaining("visible"), 1);
}

}  // namespace
}  // namespace nees::util
