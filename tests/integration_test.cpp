// Cross-module integration tests:
//  * a fully SECURED distributed hybrid experiment — GSI handshakes at every
//    NTCP site, ACLs restricting control to the coordinator identity,
//    proxy-credential login, and the run completing under fault injection;
//  * CAS capability-gated repository writes (§3.3's planned CAS-based
//    access control);
//  * the Minnesota-style multi-DOF controller (§5) driven through the
//    standard coordinator.
#include <gtest/gtest.h>

#include "most/most.h"
#include "plugins/simulation_plugin.h"
#include "psd/coordinator.h"
#include "repo/facade.h"
#include "security/auth.h"
#include "security/cas.h"
#include "util/clock.h"

namespace nees {
namespace {

using util::ErrorCode;

// --- secured MOST -------------------------------------------------------------

class SecuredExperimentTest : public ::testing::Test {
 protected:
  SecuredExperimentTest()
      : rng_(7), ca_("/O=NEES/CN=NEES CA", clock_, rng_) {}

  void SetUp() override {
    network_.SetClock(&clock_);

    // Three secured NTCP sites, each with its own AuthService instance
    // (its own token secret), all trusting the one NEES CA.
    for (const auto& [endpoint, stiffness] :
         std::vector<std::pair<std::string, double>>{
             {"ntcp.uiuc", 4.4e5}, {"ntcp.ncsa", 1.78e6},
             {"ntcp.cu", 1.78e6}}) {
      auto plugin = std::make_unique<plugins::SimulationPlugin>();
      structural::Matrix k(1, 1);
      k(0, 0) = stiffness;
      plugin->AddControlPoint(
          "cp", std::make_unique<structural::ElasticSubstructure>(k));
      auto server = std::make_unique<ntcp::NtcpServer>(
          &network_, endpoint, std::move(plugin), &clock_);
      ASSERT_TRUE(server->Start().ok());

      security::TrustStore trust;
      trust.AddRoot(ca_.root_certificate());
      auto auth = std::make_unique<security::AuthService>(
          std::move(trust), &clock_, util::Rng(1000 + auths_.size()));
      // Only the coordinator identity may drive the site; anyone
      // authenticated may observe.
      auth->acl().Allow("/O=NEES/CN=coordinator", "ntcp.");
      auth->acl().Allow("*", "ntcp.getTransaction");
      auth->acl().Allow("*", "ntcp.listTransactions");
      auth->Attach(server->rpc());
      servers_.push_back(std::move(server));
      auths_.push_back(std::move(auth));
    }
  }

  psd::CoordinatorConfig MakeConfig(std::size_t steps) {
    psd::CoordinatorConfig config;
    config.run_id = "secured";
    config.mass = structural::Matrix::Identity(1) * 5e4;
    config.damping = structural::Matrix::Identity(1) * 1.8e4;
    config.iota = {1.0};
    config.motion = structural::SinePulse(0.02, steps, 3.0, 1.0);
    config.sites = {{"UIUC", "ntcp.uiuc", "cp", {0}},
                    {"NCSA", "ntcp.ncsa", "cp", {0}},
                    {"CU", "ntcp.cu", "cp", {0}}};
    config.retry.initial_backoff_micros = 1000;
    return config;
  }

  util::SimClock clock_{1'000'000'000};
  util::Rng rng_;
  net::Network network_;
  security::CertificateAuthority ca_;
  std::vector<std::unique_ptr<ntcp::NtcpServer>> servers_;
  std::vector<std::unique_ptr<security::AuthService>> auths_;
};

TEST_F(SecuredExperimentTest, UnauthenticatedCoordinatorIsRejected) {
  net::RpcClient rpc(&network_, "anon.coordinator");
  psd::SimulationCoordinator coordinator(MakeConfig(50), &rpc, &clock_);
  const psd::RunReport report = coordinator.Run();
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.steps_completed, 0u);
}

TEST_F(SecuredExperimentTest, ProxyCredentialRunsFullExperiment) {
  // The coordinator logs in to each site with a delegated proxy of the
  // coordinator identity, then runs 150 steps with mid-run faults.
  const security::Credential identity =
      ca_.IssueIdentity("/O=NEES/CN=coordinator", 0, rng_);
  const security::Credential proxy =
      identity.CreateProxy(3'600'000'000, clock_, rng_);

  net::RpcClient rpc(&network_, "secure.coordinator");
  security::AuthClient login(&rpc, proxy, &clock_, util::Rng(5));
  for (const char* site : {"ntcp.uiuc", "ntcp.ncsa", "ntcp.cu"}) {
    ASSERT_TRUE(login.Login(site).ok()) << site;
  }

  psd::SimulationCoordinator coordinator(MakeConfig(150), &rpc, &clock_);
  coordinator.SetStepObserver(
      [&](std::size_t step, const structural::Vector&,
          const std::vector<ntcp::TransactionResult>&) {
        if (step == 60) network_.DropNext("secure.coordinator", "ntcp.cu", 2);
      });
  const psd::RunReport report = coordinator.Run();
  ASSERT_TRUE(report.completed) << report.failure.ToString();
  EXPECT_GE(report.transient_faults_recovered, 1u);
  for (const auto& server : servers_) {
    EXPECT_EQ(server->stats().executions, 149u);
  }
}

TEST_F(SecuredExperimentTest, ObserverIdentityCannotDriveTheRig) {
  const security::Credential observer =
      ca_.IssueIdentity("/O=NEES/CN=observer", 0, rng_);
  net::RpcClient rpc(&network_, "observer.client");
  security::AuthClient login(&rpc, observer, &clock_, util::Rng(5));
  ASSERT_TRUE(login.Login("ntcp.uiuc").ok());

  ntcp::NtcpClient client(&rpc, "ntcp.uiuc", ntcp::RetryPolicy(), &clock_);
  ntcp::Proposal proposal;
  proposal.transaction_id = "rogue";
  proposal.actions.push_back({"cp", {0.01}, {}});
  EXPECT_EQ(client.Propose(proposal).code(), ErrorCode::kPermissionDenied);
  // But observation is allowed.
  EXPECT_TRUE(client.ListTransactions().ok());
}

TEST_F(SecuredExperimentTest, PerTargetTokensAreIndependent) {
  const security::Credential identity =
      ca_.IssueIdentity("/O=NEES/CN=coordinator", 0, rng_);
  net::RpcClient rpc(&network_, "multi.client");
  security::AuthClient login(&rpc, identity, &clock_, util::Rng(5));
  // Log in to UIUC only: calls to CU must still be rejected (its
  // AuthService has a different token secret).
  ASSERT_TRUE(login.Login("ntcp.uiuc").ok());
  ntcp::NtcpClient uiuc(&rpc, "ntcp.uiuc", ntcp::RetryPolicy(), &clock_);
  ntcp::NtcpClient cu(&rpc, "ntcp.cu", ntcp::RetryPolicy(), &clock_);
  EXPECT_TRUE(uiuc.ListTransactions().ok());
  EXPECT_EQ(cu.ListTransactions().status().code(),
            ErrorCode::kUnauthenticated);
}

// --- CAS-gated repository -------------------------------------------------------

class CasRepositoryTest : public ::testing::Test {
 protected:
  CasRepositoryTest()
      : rng_(7),
        ca_("/O=NEES/CN=CA", clock_, rng_),
        cas_(ca_.IssueIdentity("/O=NEES/CN=cas", 0, rng_), &clock_,
             util::Rng(9)) {}

  void SetUp() override {
    network_.SetClock(&clock_);
    repository_ = std::make_unique<repo::RepositoryFacade>(&network_,
                                                           "repo.nees");
    ASSERT_TRUE(repository_->Start().ok());
    repository_->EnableCapabilityAuthorization(cas_.public_key(), &clock_);
    cas_.Grant("/O=NEES/CN=ingest", repo::kRepositoryResource, "write");
  }

  std::string IssueWriteToken(const std::string& subject) {
    auto capability =
        cas_.Issue(subject, repo::kRepositoryResource, "write");
    return capability.ok() ? security::CapabilityToToken(*capability) : "";
  }

  util::SimClock clock_{1'000'000};
  util::Rng rng_;
  net::Network network_;
  security::CertificateAuthority ca_;
  security::CommunityAuthorizationService cas_;
  std::unique_ptr<repo::RepositoryFacade> repository_;
};

TEST_F(CasRepositoryTest, WriteWithoutCapabilityRejected) {
  net::RpcClient rpc(&network_, "tool");
  repo::NmdsClient nmds(&rpc, "repo.nees");
  repo::MetadataObject object;
  object.id = "x";
  object.type = "t";
  EXPECT_EQ(nmds.Put(object).status().code(), ErrorCode::kUnauthenticated);

  repo::GridFtpClient gridftp(&rpc);
  EXPECT_EQ(gridftp.Upload("repo.nees.gftp", "f", {1, 2, 3}).code(),
            ErrorCode::kUnauthenticated);
}

TEST_F(CasRepositoryTest, CapabilityHolderWritesAndOwnsMetadata) {
  net::RpcClient rpc(&network_, "tool");
  rpc.SetAuthToken(IssueWriteToken("/O=NEES/CN=ingest"));

  repo::NmdsClient nmds(&rpc, "repo.nees");
  repo::MetadataObject object;
  object.id = "cas.obj";
  object.type = "daq-data";
  ASSERT_TRUE(nmds.Put(object).ok());
  // Ownership derives from the capability subject.
  EXPECT_EQ(repository_->nmds().Get("cas.obj")->owner, "/O=NEES/CN=ingest");

  repo::GridFtpClient gridftp(&rpc);
  ASSERT_TRUE(gridftp.Upload("repo.nees.gftp", "files/cas", {1, 2, 3}).ok());
  EXPECT_TRUE(repository_->store().Exists("files/cas"));
}

TEST_F(CasRepositoryTest, ReadsStayOpen) {
  ASSERT_TRUE(repository_->Ingest("open/read", {1, 2, 3}, "t", {}).ok());
  net::RpcClient rpc(&network_, "anon");
  repo::NfmsClient nfms(&rpc, "repo.nees");
  nfms.RegisterTransport(std::make_unique<repo::GridFtpTransport>(&rpc));
  auto content = nfms.Fetch("open/read");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 3u);
}

TEST_F(CasRepositoryTest, ExpiredCapabilityRejected) {
  net::RpcClient rpc(&network_, "tool");
  rpc.SetAuthToken(IssueWriteToken("/O=NEES/CN=ingest"));
  clock_.Advance(2 * 3'600'000'000LL);  // past the capability TTL
  repo::NmdsClient nmds(&rpc, "repo.nees");
  repo::MetadataObject object;
  object.id = "late";
  object.type = "t";
  EXPECT_EQ(nmds.Put(object).status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(CasRepositoryTest, WrongActionCapabilityRejected) {
  cas_.Grant("/O=NEES/CN=reader", repo::kRepositoryResource, "read");
  auto capability =
      cas_.Issue("/O=NEES/CN=reader", repo::kRepositoryResource, "read");
  ASSERT_TRUE(capability.ok());
  net::RpcClient rpc(&network_, "tool");
  rpc.SetAuthToken(security::CapabilityToToken(*capability));
  repo::NmdsClient nmds(&rpc, "repo.nees");
  repo::MetadataObject object;
  object.id = "x";
  object.type = "t";
  EXPECT_EQ(nmds.Put(object).status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(CasRepositoryTest, IngestionToolWorksWithCapability) {
  const auto dir = std::filesystem::temp_directory_path() / "nees-cas-ingest";
  std::filesystem::remove_all(dir);
  daq::DaqSystem daq;
  daq.AddChannel({"ch", "m", 100.0});
  ASSERT_TRUE(daq.Record("ch", 1, 0.5).ok());
  ASSERT_TRUE(daq.Flush(dir, "run").ok());

  net::RpcClient rpc(&network_, "ingest.tool");
  rpc.SetAuthToken(IssueWriteToken("/O=NEES/CN=ingest"));
  repo::IngestionTool tool(&rpc, "repo.nees", "cas-exp", "site");
  daq::Harvester harvester(
      dir, [&](const std::filesystem::path& file,
               const std::vector<nsds::DataSample>& samples) {
        return tool.IngestDropFile(file, samples);
      });
  EXPECT_EQ(*harvester.ScanOnce(), 1);
  EXPECT_EQ(repository_->nfms().List("cas-exp/").size(), 1u);
  std::filesystem::remove_all(dir);
}

// --- multi-story MS-PSDS via condensation ------------------------------------------

TEST(MultiStoryTest, ThreeStoryCondensedHybridMatchesMonolithicModel) {
  // §3: MS-PSDS "allows for testing a wide range of large structures that
  // might otherwise be beyond the capabilities of many laboratories". A
  // three-story frame is condensed to its 3 story DOFs; the first-story
  // column goes to a "physical" site as a 1-DOF substructure while the
  // condensed remainder is simulated. The distributed response must match
  // the monolithic condensed model.
  util::SimClock clock;
  net::Network network;
  network.SetClock(&clock);

  // Build the full frame and condense to story lateral DOFs.
  most::MostOptions options;
  structural::FrameModel frame;
  std::vector<std::size_t> story_nodes;
  for (int level = 0; level <= 3; ++level) {
    const std::size_t left =
        frame.AddNode(0, level * options.column_height_m);
    const std::size_t right =
        frame.AddNode(options.bay_width_m, level * options.column_height_m);
    if (level == 0) {
      frame.FixAll(left);
      frame.FixAll(right);
    } else {
      frame.AddElement(left - 2, left, options.column_section);
      frame.AddElement(right - 2, right, options.column_section);
      frame.AddElement(left, right, options.beam_section);
      story_nodes.push_back(left);
    }
  }
  std::vector<std::size_t> retained;
  for (std::size_t node : story_nodes) {
    auto dof = frame.DofIndex(node, structural::Dof::kUx);
    ASSERT_TRUE(dof.has_value());
    retained.push_back(*dof);
  }
  auto condensed = frame.CondenseStiffness(retained);
  ASSERT_TRUE(condensed.ok());
  ASSERT_EQ(condensed->rows(), 3u);

  // Split: a 1-DOF "physical" spring on story 1 carrying a fraction of the
  // first-story stiffness, and the numerical remainder K_rest = K - K_phys.
  const double k_physical = 0.3 * (*condensed)(0, 0);
  structural::Matrix k_rest = *condensed;
  k_rest(0, 0) -= k_physical;
  structural::Matrix k_phys(1, 1);
  k_phys(0, 0) = k_physical;

  auto physical_plugin = std::make_unique<plugins::SimulationPlugin>();
  physical_plugin->AddControlPoint(
      "story1-column",
      std::make_unique<structural::ElasticSubstructure>(k_phys));
  ntcp::NtcpServer physical_site(&network, "ntcp.lab",
                                 std::move(physical_plugin), &clock);
  ASSERT_TRUE(physical_site.Start().ok());

  auto numeric_plugin = std::make_unique<plugins::SimulationPlugin>();
  numeric_plugin->AddControlPoint(
      "condensed-frame",
      std::make_unique<structural::ElasticSubstructure>(k_rest));
  ntcp::NtcpServer numeric_site(&network, "ntcp.sim",
                                std::move(numeric_plugin), &clock);
  ASSERT_TRUE(numeric_site.Start().ok());

  psd::CoordinatorConfig config;
  config.run_id = "threestory";
  config.mass = structural::Matrix(3, 3);
  for (int i = 0; i < 3; ++i) config.mass(i, i) = 2e4;
  config.damping = structural::Matrix(3, 3);
  for (int i = 0; i < 3; ++i) config.damping(i, i) = 8e3;
  config.iota = {1.0, 1.0, 1.0};
  config.motion = structural::SinePulse(0.002, 600, 2.0, 3.0);
  config.sites = {{"lab", "ntcp.lab", "story1-column", {0}},
                  {"sim", "ntcp.sim", "condensed-frame", {0, 1, 2}}};

  net::RpcClient rpc(&network, "threestory.coordinator");
  psd::SimulationCoordinator coordinator(config, &rpc, &clock);
  const psd::RunReport report = coordinator.Run();
  ASSERT_TRUE(report.completed) << report.failure.ToString();

  // Monolithic reference with the full condensed K.
  structural::ElasticSubstructure monolithic(*condensed);
  structural::CentralDifferencePsd psd_ref(config.mass, config.damping,
                                           config.iota);
  auto reference = psd_ref.Integrate(
      config.motion,
      [&](std::size_t, const structural::Vector& d) {
        return monolithic.Restore(d);
      });
  ASSERT_TRUE(reference.ok());
  for (std::size_t i = 0; i < reference->displacement.size(); ++i) {
    for (int dof = 0; dof < 3; ++dof) {
      ASSERT_NEAR(report.history.displacement[i][dof],
                  reference->displacement[i][dof], 1e-10)
          << "step " << i << " dof " << dof;
    }
  }
  // Stories drift more the higher they are (a shear-building shape).
  EXPECT_GT(report.history.PeakDisplacement(2),
            report.history.PeakDisplacement(0));
}

// --- Minnesota-style multi-DOF control (§5) ---------------------------------------

TEST(MultiDofControlTest, SixDofControllerThroughCoordinator) {
  // §5: "an experiment is planned that will use the NEESgrid framework to
  // operate a six-degree-of-freedom controller". One control point with 6
  // DOFs behind one NTCP server, driven by a 6-DOF coordinator.
  util::SimClock clock;
  net::Network network;
  network.SetClock(&clock);

  structural::Matrix k(6, 6);
  for (int i = 0; i < 6; ++i) k(i, i) = 1e6 * (i + 1);
  auto plugin = std::make_unique<plugins::SimulationPlugin>();
  plugin->AddControlPoint(
      "crosshead", std::make_unique<structural::ElasticSubstructure>(k));
  ntcp::NtcpServer server(&network, "ntcp.umn", std::move(plugin), &clock);
  ASSERT_TRUE(server.Start().ok());

  psd::CoordinatorConfig config;
  config.run_id = "umn";
  config.mass = structural::Matrix::Identity(6) * 1e4;
  config.damping = structural::Matrix(6, 6);
  for (int i = 0; i < 6; ++i) config.damping(i, i) = 5e3;
  config.iota = structural::Vector(6, 1.0);
  config.motion = structural::SinePulse(0.005, 200, 2.0, 4.0);
  config.sites = {{"UMN", "ntcp.umn", "crosshead", {0, 1, 2, 3, 4, 5}}};

  net::RpcClient rpc(&network, "umn.coordinator");
  psd::SimulationCoordinator coordinator(config, &rpc, &clock);
  const psd::RunReport report = coordinator.Run();
  ASSERT_TRUE(report.completed) << report.failure.ToString();
  // Stiffer DOFs respond less (k scales with index, mass constant).
  EXPECT_GT(report.history.PeakDisplacement(0),
            report.history.PeakDisplacement(5));
  EXPECT_GT(report.history.PeakDisplacement(5), 0.0);
}

}  // namespace
}  // namespace nees
