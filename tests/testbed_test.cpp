// Tests for the emulated physical rigs: actuator servo behaviour, stepper
// quantization, sensor models, specimen safety interlocks, the
// Shore-Western line protocol, and the xPC target emulation.
#include <cmath>

#include <gtest/gtest.h>

#include "net/network.h"
#include "structural/substructure.h"
#include "testbed/motion.h"
#include "testbed/sensors.h"
#include "testbed/shorewestern.h"
#include "testbed/specimen.h"
#include "testbed/xpc.h"
#include "util/stats.h"

namespace nees::testbed {
namespace {

using util::ErrorCode;

// --- actuator ------------------------------------------------------------------

TEST(ActuatorTest, SettlesAtTarget) {
  ServoHydraulicActuator actuator({});
  auto position = actuator.MoveTo(0.01, 5.0);
  ASSERT_TRUE(position.ok());
  EXPECT_NEAR(*position, 0.01, 1e-4);
  EXPECT_GT(actuator.elapsed_motion_seconds(), 0.0);
}

TEST(ActuatorTest, RespectsStrokeLimit) {
  ServoHydraulicActuator::Params params;
  params.stroke_m = 0.1;
  ServoHydraulicActuator actuator(params);
  EXPECT_EQ(actuator.MoveTo(0.2, 5.0).status().code(), ErrorCode::kOutOfRange);
}

TEST(ActuatorTest, LargeMoveTakesLongerThanSmallMove) {
  ServoHydraulicActuator a({}), b({});
  ASSERT_TRUE(a.MoveTo(0.001, 10.0).ok());
  ASSERT_TRUE(b.MoveTo(0.1, 10.0).ok());
  EXPECT_GT(b.elapsed_motion_seconds(), a.elapsed_motion_seconds());
}

TEST(ActuatorTest, VelocityLimitBoundsTravelTime) {
  ServoHydraulicActuator::Params params;
  params.max_velocity_ms = 0.05;
  ServoHydraulicActuator actuator(params);
  // 0.1 m at 0.05 m/s needs at least 2 s of motion.
  ASSERT_TRUE(actuator.MoveTo(0.1, 10.0).ok());
  EXPECT_GE(actuator.elapsed_motion_seconds(), 2.0);
}

TEST(ActuatorTest, TimesOutWhenBudgetTooSmall) {
  ServoHydraulicActuator actuator({});
  auto result = actuator.MoveTo(0.1, 0.05);  // far too little time
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
}

TEST(ActuatorTest, ResetRehomes) {
  ServoHydraulicActuator actuator({});
  ASSERT_TRUE(actuator.MoveTo(0.01, 5.0).ok());
  actuator.Reset();
  EXPECT_EQ(actuator.position(), 0.0);
  EXPECT_EQ(actuator.elapsed_motion_seconds(), 0.0);
}

TEST(ActuatorTest, SequentialMovesTrackTargets) {
  ServoHydraulicActuator actuator({});
  for (double target : {0.005, -0.003, 0.012, 0.0}) {
    auto position = actuator.MoveTo(target, 5.0);
    ASSERT_TRUE(position.ok());
    EXPECT_NEAR(*position, target, 1e-4);
  }
}

// --- stepper -------------------------------------------------------------------

TEST(StepperTest, PositionQuantizedToWholeSteps) {
  StepperMotor::Params params;
  params.step_size_m = 1e-5;
  StepperMotor stepper(params);
  auto position = stepper.MoveTo(1.04e-4, 1.0);  // 10.4 steps -> 10 steps
  ASSERT_TRUE(position.ok());
  EXPECT_NEAR(*position, 1.0e-4, 1e-12);
  EXPECT_EQ(stepper.total_steps_taken(), 10);
}

TEST(StepperTest, StepRateLimitsTravel) {
  StepperMotor::Params params;
  params.step_size_m = 1e-5;
  params.steps_per_second = 100;
  StepperMotor stepper(params);
  // 1000 steps needed, budget of 0.5 s allows only 50.
  auto position = stepper.MoveTo(0.01, 0.5);
  EXPECT_EQ(position.status().code(), ErrorCode::kTimeout);
  EXPECT_NEAR(stepper.position(), 50 * 1e-5, 1e-12);
}

TEST(StepperTest, BidirectionalMoves) {
  StepperMotor stepper({});
  ASSERT_TRUE(stepper.MoveTo(0.001, 10.0).ok());
  ASSERT_TRUE(stepper.MoveTo(-0.001, 10.0).ok());
  EXPECT_NEAR(stepper.position(), -0.001, 1e-9);
}

TEST(StepperTest, StrokeLimit) {
  StepperMotor::Params params;
  params.stroke_m = 0.01;
  StepperMotor stepper(params);
  EXPECT_EQ(stepper.MoveTo(0.02, 1.0).status().code(), ErrorCode::kOutOfRange);
}

// --- sensors -------------------------------------------------------------------

TEST(SensorTest, NoiseStatisticsMatchModel) {
  SensorParams params;
  params.noise_std = 0.1;
  Sensor sensor("s", params, 7);
  util::SampleStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(sensor.Measure(5.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.1, 0.01);
  EXPECT_EQ(sensor.sample_count(), 20000u);
}

TEST(SensorTest, GainAndBias) {
  SensorParams params;
  params.gain = 2.0;
  params.bias = 1.0;
  Sensor sensor("s", params, 7);
  EXPECT_DOUBLE_EQ(sensor.Measure(3.0), 7.0);
}

TEST(SensorTest, QuantizationSnapsToLsb) {
  SensorParams params;
  params.quantization = 0.5;
  Sensor sensor("s", params, 7);
  EXPECT_DOUBLE_EQ(sensor.Measure(1.26), 1.5);
  EXPECT_DOUBLE_EQ(sensor.Measure(1.24), 1.0);
}

TEST(SensorTest, SaturatesAtRange) {
  SensorParams params;
  params.range = 10.0;
  Sensor sensor("s", params, 7);
  EXPECT_DOUBLE_EQ(sensor.Measure(100.0), 10.0);
  EXPECT_DOUBLE_EQ(sensor.Measure(-100.0), -10.0);
}

TEST(SensorTest, PresetsAreReasonablyAccurate) {
  Sensor lvdt = MakeLvdt(1);
  Sensor load = MakeLoadCell(2);
  // 1 cm displacement measured within 0.1 mm; 1 kN within 100 N.
  EXPECT_NEAR(lvdt.Measure(0.01), 0.01, 1e-4);
  EXPECT_NEAR(load.Measure(1000.0), 1000.0, 100.0);
}

// --- specimen ------------------------------------------------------------------

PhysicalSpecimen MakeElasticSpecimen(double stiffness, SafetyLimits limits) {
  PhysicalSpecimen::Config config;
  config.name = "test-rig";
  config.limits = limits;
  structural::Matrix k(1, 1);
  k(0, 0) = stiffness;
  return PhysicalSpecimen(
      config, std::make_unique<ServoHydraulicActuator>(
                  ServoHydraulicActuator::Params{}),
      std::make_unique<structural::ElasticSubstructure>(k));
}

TEST(SpecimenTest, MeasuredForceTracksStiffness) {
  auto specimen = MakeElasticSpecimen(1e6, {});
  auto measurement = specimen.ApplyDisplacement(0.01);
  ASSERT_TRUE(measurement.ok());
  EXPECT_NEAR(measurement->displacement_m, 0.01, 2e-4);
  EXPECT_NEAR(measurement->force_n, 1e4, 300.0);
}

TEST(SpecimenTest, TravelLimitRejectsWithoutMoving) {
  SafetyLimits limits;
  limits.max_displacement_m = 0.005;
  auto specimen = MakeElasticSpecimen(1e6, limits);
  auto result = specimen.ApplyDisplacement(0.01);
  EXPECT_EQ(result.status().code(), ErrorCode::kSafetyInterlock);
  EXPECT_FALSE(specimen.interlock_tripped());  // rejected, not tripped
  EXPECT_EQ(specimen.motion().position(), 0.0);
}

TEST(SpecimenTest, ForceLimitTripsInterlock) {
  SafetyLimits limits;
  limits.max_force_n = 5e3;  // 1e6 N/m * 0.01 m = 1e4 N > limit
  auto specimen = MakeElasticSpecimen(1e6, limits);
  auto result = specimen.ApplyDisplacement(0.01);
  EXPECT_EQ(result.status().code(), ErrorCode::kSafetyInterlock);
  EXPECT_TRUE(specimen.interlock_tripped());

  // While tripped, every command fails.
  EXPECT_EQ(specimen.ApplyDisplacement(0.001).status().code(),
            ErrorCode::kSafetyInterlock);
  specimen.ResetInterlock();
  EXPECT_TRUE(specimen.ApplyDisplacement(0.001).ok());
}

TEST(SpecimenTest, EStopLatches) {
  auto specimen = MakeElasticSpecimen(1e6, {});
  specimen.EStop();
  EXPECT_TRUE(specimen.interlock_tripped());
  EXPECT_FALSE(specimen.ApplyDisplacement(0.001).ok());
}

TEST(SpecimenTest, RigPresetsApplyDisplacement) {
  auto uiuc = MakeUiucColumnRig(5e6, 1);
  auto cu = MakeCuColumnRig(5e6, 2);
  auto mini = MakeMiniMostRig(2000.0, 3);
  EXPECT_TRUE(uiuc->ApplyDisplacement(0.005).ok());
  EXPECT_TRUE(cu->ApplyDisplacement(0.005).ok());
  EXPECT_TRUE(mini->ApplyDisplacement(0.002).ok());
}

TEST(SpecimenTest, HystereticRigShowsPathDependence) {
  auto rig = MakeUiucColumnRig(5e6, 1);
  // Drive far past yield, then return to zero: residual force differs from
  // the virgin state (the "cannot undo" property, §2.1).
  ASSERT_TRUE(rig->ApplyDisplacement(0.1).ok());
  auto back = rig->ApplyDisplacement(0.0);
  ASSERT_TRUE(back.ok());
  EXPECT_GT(std::fabs(back->force_n), 1e3);
}

// --- Shore-Western emulator ------------------------------------------------------

class ShoreWesternTest : public ::testing::Test {
 protected:
  void SetUp() override {
    emulator_ = std::make_unique<ShoreWesternEmulator>(
        &network_, "sw.uiuc", MakeElasticSpecimenPtr());
    ASSERT_TRUE(emulator_->Start().ok());
    rpc_ = std::make_unique<net::RpcClient>(&network_, "plugin");
    client_ = std::make_unique<ShoreWesternClient>(rpc_.get(), "sw.uiuc");
  }

  static std::unique_ptr<PhysicalSpecimen> MakeElasticSpecimenPtr() {
    PhysicalSpecimen::Config config;
    config.name = "uiuc";
    structural::Matrix k(1, 1);
    k(0, 0) = 1e6;
    return std::make_unique<PhysicalSpecimen>(
        config,
        std::make_unique<ServoHydraulicActuator>(
            ServoHydraulicActuator::Params{}),
        std::make_unique<structural::ElasticSubstructure>(k));
  }

  net::Network network_;
  std::unique_ptr<ShoreWesternEmulator> emulator_;
  std::unique_ptr<net::RpcClient> rpc_;
  std::unique_ptr<ShoreWesternClient> client_;
};

TEST_F(ShoreWesternTest, Hello) {
  auto reply = client_->SendLine("HELLO");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "OK ShoreWestern SC6000 sim");
}

TEST_F(ShoreWesternTest, MoveAndRead) {
  auto move = client_->Move(0.01);
  ASSERT_TRUE(move.ok());
  EXPECT_NEAR(move->position_m, 0.01, 2e-4);
  EXPECT_NEAR(move->force_n, 1e4, 300.0);
  EXPECT_GT(move->motion_seconds, 0.0);

  auto read = client_->Read();
  ASSERT_TRUE(read.ok());
  EXPECT_NEAR(read->displacement_m, 0.01, 2e-4);
}

TEST_F(ShoreWesternTest, ProtocolErrors) {
  EXPECT_EQ(*client_->SendLine("MOVE"), "ERR MOVE requires one argument");
  EXPECT_EQ(*client_->SendLine("MOVE abc"), "ERR bad number");
  EXPECT_EQ(*client_->SendLine("FROB 1"), "ERR unknown command FROB");
  EXPECT_EQ(*client_->SendLine("  "), "ERR empty command");
}

TEST_F(ShoreWesternTest, EStopAndResetFlow) {
  ASSERT_TRUE(client_->EStop().ok());
  auto move = client_->Move(0.001);
  EXPECT_EQ(move.status().code(), ErrorCode::kSafetyInterlock);
  ASSERT_TRUE(client_->Reset().ok());
  EXPECT_TRUE(client_->Move(0.001).ok());
}

TEST_F(ShoreWesternTest, SetLimitsAccepted) {
  EXPECT_TRUE(client_->SetLimits(0.1, 1e5).ok());
}

TEST_F(ShoreWesternTest, NetworkFaultSurfacesAsTimeout) {
  network_.DropNext("plugin", "sw.uiuc", 1);
  auto reply = client_->SendLine("HELLO");
  EXPECT_EQ(reply.status().code(), ErrorCode::kTimeout);
}

// --- xPC target ------------------------------------------------------------------

TEST(XpcTest, ExecutesAndCountsTicks) {
  XpcTarget::Params params;
  XpcTarget target(params, [] {
    PhysicalSpecimen::Config config;
    structural::Matrix k(1, 1);
    k(0, 0) = 1e6;
    return std::make_unique<PhysicalSpecimen>(
        config,
        std::make_unique<ServoHydraulicActuator>(
            ServoHydraulicActuator::Params{}),
        std::make_unique<structural::ElasticSubstructure>(k));
  }());
  auto measurement = target.Execute(0.01);
  ASSERT_TRUE(measurement.ok());
  EXPECT_GT(target.total_ticks(), 0);
  EXPECT_EQ(target.missed_deadlines(), 0);
}

TEST(XpcTest, OverloadedTickBudgetCountsMisses) {
  XpcTarget::Params params;
  params.tick_rate_hz = 1000.0;
  params.tick_cost_s = 0.002;  // 2x the period: overloaded
  XpcTarget target(params, [] {
    PhysicalSpecimen::Config config;
    structural::Matrix k(1, 1);
    k(0, 0) = 1e6;
    return std::make_unique<PhysicalSpecimen>(
        config,
        std::make_unique<ServoHydraulicActuator>(
            ServoHydraulicActuator::Params{}),
        std::make_unique<structural::ElasticSubstructure>(k));
  }());
  ASSERT_TRUE(target.Execute(0.005).ok());
  EXPECT_GT(target.missed_deadlines(), 0);
}

}  // namespace
}  // namespace nees::testbed
