// Tests for the nees-lint protocol conformance checker: a realistic server
// scenario (including transactions that expire mid-experiment) must lint
// clean, the seeded corruption helpers must be caught with exactly the
// expected rule sets, hand-built bad traces must trip each rule, and a
// full traced MOST run must conform end-to-end.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "check/checker.h"
#include "check/corrupt.h"
#include "check/invariant.h"
#include "most/most.h"
#include "net/network.h"
#include "ntcp/server.h"
#include "ntcp/types.h"
#include "plugins/simulation_plugin.h"
#include "structural/substructure.h"
#include "util/clock.h"

namespace nees::check {
namespace {

ntcp::Proposal MakeProposal(const std::string& id, std::int64_t step,
                            std::int64_t timeout_micros = 60'000'000) {
  ntcp::Proposal proposal;
  proposal.transaction_id = id;
  proposal.step_index = step;
  ntcp::ControlPointRequest action;
  action.control_point = "cp";
  action.target_displacement = {0.001};
  proposal.actions.push_back(std::move(action));
  proposal.timeout_micros = timeout_micros;
  return proposal;
}

std::unique_ptr<plugins::SimulationPlugin> MakeElasticPlugin() {
  auto plugin = std::make_unique<plugins::SimulationPlugin>();
  structural::Matrix k(1, 1);
  k(0, 0) = 1000.0;
  plugin->AddControlPoint(
      "cp", std::make_unique<structural::ElasticSubstructure>(k));
  return plugin;
}

/// Drives one NTCP server through the interesting protocol paths —
/// complete, duplicate propose+execute, expire on the execute path, expire
/// via the sweep, cancel — and returns the recorded trace.
std::vector<obs::SpanRecord> RecordScenarioSpans() {
  util::SimClock clock{1'000'000};
  obs::Tracer tracer(&clock, &clock);
  net::Network network;
  network.SetClock(&clock);
  ntcp::NtcpServer server(&network, "ntcp.test", MakeElasticPlugin(), &clock);
  server.set_tracer(&tracer);

  // Step 0: the happy path, then a duplicated propose and execute.
  const ntcp::Proposal ok = MakeProposal("t-ok", 0);
  EXPECT_TRUE(server.Propose(ok).accepted);
  EXPECT_TRUE(server.Execute("t-ok").ok());
  EXPECT_TRUE(server.Propose(ok).accepted);      // duplicate -> same answer
  EXPECT_TRUE(server.Execute("t-ok").ok());      // duplicate -> cached result

  // Step 1: expires mid-experiment on the execute path.
  EXPECT_TRUE(server.Propose(MakeProposal("t-exp", 1, 1'000)).accepted);
  clock.Advance(2'000);
  EXPECT_EQ(server.Execute("t-exp").status().code(),
            util::ErrorCode::kFailedPrecondition);

  // Step 2: expires via the periodic sweep instead.
  EXPECT_TRUE(server.Propose(MakeProposal("t-sweep", 2, 1'000)).accepted);
  clock.Advance(2'000);
  EXPECT_EQ(server.ExpireStale(), 1);

  // Step 3: cancelled before execution.
  EXPECT_TRUE(server.Propose(MakeProposal("t-can", 3)).accepted);
  EXPECT_TRUE(server.Cancel("t-can").ok());

  EXPECT_EQ(server.stats().expired, 2u);
  EXPECT_EQ(server.stats().duplicate_proposals, 1u);
  EXPECT_EQ(server.stats().duplicate_executes, 1u);
  return tracer.Snapshot();
}

obs::SpanRecord Event(std::uint64_t id, const std::string& txn,
                      const std::string& from, const std::string& to,
                      std::int64_t at, std::int64_t step = -1,
                      std::int64_t timeout = 60'000'000) {
  obs::SpanRecord event;
  event.id = id;
  event.name = "ntcp.txn";
  event.category = "txn";
  event.start_micros = at;
  event.end_micros = at;
  event.tags = {{"txn", txn},   {"endpoint", "ntcp.hand"},
                {"from", from}, {"to", to},
                {"step", std::to_string(step)},
                {"at", std::to_string(at)},
                {"timeout", std::to_string(timeout)}};
  return event;
}

std::set<Rule> Rules(const LintReport& report) {
  std::set<Rule> rules;
  for (const Violation& violation : report.violations) {
    rules.insert(violation.rule);
  }
  return rules;
}

// --- real server traces ------------------------------------------------------

TEST(CheckTest, ExpiredMidExperimentTraceIsLintClean) {
  const LintReport report = LintSpans(RecordScenarioSpans());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.stats.transactions, 4u);
  EXPECT_EQ(report.stats.endpoints, 1u);
  // 4 creations + accept x4 + executing/completed + expired x2 + cancelled
  // + 2 dup events.
  EXPECT_GE(report.stats.protocol_events, 13u);
}

TEST(CheckTest, SeededCorruptionsReportExactRules) {
  const std::vector<obs::SpanRecord> spans = RecordScenarioSpans();
  ASSERT_TRUE(LintSpans(spans).ok());

  auto illegal = SeedIllegalTransition(spans);
  ASSERT_TRUE(illegal.ok());
  EXPECT_EQ(Rules(LintSpans(*illegal)),
            (std::set<Rule>{Rule::kIllegalTransition}));

  auto duplicate = SeedDuplicateExecute(spans);
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(Rules(LintSpans(*duplicate)),
            (std::set<Rule>{Rule::kIllegalTransition,
                            Rule::kDuplicateExecute}));

  auto skipped = SeedSkippedStep(spans);
  ASSERT_TRUE(skipped.ok());
  const LintReport skip_report = LintSpans(*skipped);
  EXPECT_EQ(Rules(skip_report), (std::set<Rule>{Rule::kStepMonotonicity}));
  ASSERT_EQ(skip_report.violations.size(), 1u);
  EXPECT_EQ(skip_report.violations[0].step, 2);  // step 1 erased: 0 -> 2

  const LintReport expiry_report = LintSpans(SeedBogusExpiry(spans));
  EXPECT_EQ(Rules(expiry_report), (std::set<Rule>{Rule::kBogusExpiry}));
  ASSERT_EQ(expiry_report.violations.size(), 1u);
  EXPECT_EQ(expiry_report.violations[0].transaction_id, "seeded-expiry");
}

TEST(CheckTest, TracedMostRunConforms) {
  util::SimClock sim;
  obs::Tracer tracer(&sim, &sim);
  net::Network network;
  network.SetClock(&sim);
  most::MostOptions options;
  options.steps = 10;
  options.hybrid = false;
  options.tracer = &tracer;
  most::MostExperiment experiment(&network, &sim, options);
  auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "lintmost");
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed);

  const LintReport lint = LintSpans(tracer.Snapshot());
  EXPECT_TRUE(lint.ok()) << lint.ToString();
  EXPECT_EQ(lint.stats.endpoints, 3u);  // uiuc, ncsa, cu
  EXPECT_EQ(lint.stats.transactions, 3 * report->steps_completed);
}

TEST(CheckTest, TracedAsyncEngineRunWithFaultsConforms) {
  // The completion-driven engine overlaps all three sites' transactions and
  // multiplexes retries on the coordinator thread; its trace must still obey
  // every protocol rule — including across recovered transient faults.
  util::SimClock sim;
  obs::Tracer tracer(&sim, &sim);
  net::Network network;
  network.SetClock(&sim);
  most::MostOptions options;
  options.steps = 40;
  options.hybrid = false;
  options.tracer = &tracer;
  options.step_engine = psd::StepEngine::kAsync;
  most::MostExperiment experiment(&network, &sim, options);
  ASSERT_TRUE(experiment.Start().ok());

  net::RpcClient rpc(&network, "lintasync.coordinator");
  auto config = experiment.MakeCoordinatorConfig(
      psd::FaultPolicy::kFaultTolerant, "lintasync");
  config.retry.initial_backoff_micros = 1'000;
  psd::SimulationCoordinator coordinator(config, &rpc, &sim);
  most::MostFaultSchedule faults(&network, "lintasync.coordinator",
                                 most::MostExperiment::kNtcpCu);
  faults.AddTransientBurst(10, 1);
  faults.AddTransientBurst(25, 2);
  coordinator.SetStepObserver(
      [&](std::size_t step, const structural::Vector&,
          const std::vector<ntcp::TransactionResult>&) { faults.OnStep(step); });
  const psd::RunReport report = coordinator.Run();
  ASSERT_TRUE(report.completed) << report.failure.ToString();
  EXPECT_GE(report.transient_faults_recovered, 2u);
  EXPECT_EQ(report.threads_spawned, 0u);

  const LintReport lint = LintSpans(tracer.Snapshot());
  EXPECT_TRUE(lint.ok()) << lint.ToString();
  EXPECT_EQ(lint.stats.endpoints, 3u);
  EXPECT_GE(lint.stats.transactions, 3 * report.steps_completed);
}

// --- hand-built traces tripping each rule ------------------------------------

TEST(CheckTest, MissingCreationReported) {
  const LintReport report =
      LintSpans({Event(1, "ghost", "proposed", "accepted", 100)});
  EXPECT_EQ(Rules(report), (std::set<Rule>{Rule::kIllegalTransition,
                                           Rule::kNonTerminal}));
}

TEST(CheckTest, NonTerminalTransactionReported) {
  const LintReport report =
      LintSpans({Event(1, "open", "none", "proposed", 100, /*step=*/5)});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, Rule::kNonTerminal);
  EXPECT_EQ(report.violations[0].transaction_id, "open");
  EXPECT_EQ(report.violations[0].step, 5);
}

TEST(CheckTest, OrphanParentReported) {
  obs::SpanRecord orphan;
  orphan.id = 1;
  orphan.parent_id = 99;
  orphan.name = "site.propose";
  orphan.category = "coordination";
  orphan.start_micros = 0;
  orphan.end_micros = 10;
  EXPECT_EQ(Rules(LintSpans({orphan})), (std::set<Rule>{Rule::kSpanNesting}));
}

TEST(CheckTest, ChildEscapingStepSpanReported) {
  obs::SpanRecord step;
  step.id = 1;
  step.name = "psd.step";
  step.category = "step";
  step.start_micros = 0;
  step.end_micros = 100;
  obs::SpanRecord child;
  child.id = 2;
  child.parent_id = 1;
  child.name = "site.execute";
  child.category = "coordination";
  child.start_micros = 50;
  child.end_micros = 200;  // outlives the PSD step it claims to serve
  EXPECT_EQ(Rules(LintSpans({step, child})),
            (std::set<Rule>{Rule::kSpanNesting}));
}

TEST(CheckTest, ReorderedStepReported) {
  const LintReport report = LintSpans({
      Event(1, "a", "none", "proposed", 100, /*step=*/1),
      Event(2, "a", "proposed", "cancelled", 110, /*step=*/1),
      Event(3, "b", "none", "proposed", 120, /*step=*/0),  // goes backwards
      Event(4, "b", "proposed", "cancelled", 130, /*step=*/0),
  });
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, Rule::kStepMonotonicity);
  EXPECT_EQ(report.violations[0].transaction_id, "b");
}

TEST(CheckTest, DuplicateForUnknownTransactionReported) {
  obs::SpanRecord dup;
  dup.id = 1;
  dup.name = "ntcp.dup";
  dup.category = "txn";
  dup.start_micros = 100;
  dup.end_micros = 100;
  dup.tags = {{"txn", "never-created"},
              {"endpoint", "ntcp.hand"},
              {"kind", "execute"},
              {"state", "completed"}};
  EXPECT_EQ(Rules(LintSpans({dup})), (std::set<Rule>{Rule::kAtMostOnce}));
}

// --- crash consistency (docs/RECOVERY.md restart state machine) --------------

obs::SpanRecord Marker(std::uint64_t id, const std::string& name,
                       std::int64_t at,
                       const std::string& endpoint = "ntcp.hand") {
  obs::SpanRecord event;
  event.id = id;
  event.name = name;
  event.category = "fault";
  event.start_micros = at;
  event.end_micros = at;
  event.tags = {{"endpoint", endpoint}};
  return event;
}

TEST(CheckTest, CrashRestartRecoveryTraceIsClean) {
  // The canonical crash window: intent durable, process dies mid-execute,
  // the revived incarnation replays the log and crash-marks the in-flight
  // transaction executing -> failed.
  std::vector<obs::SpanRecord> spans = {
      Event(1, "t-c", "none", "proposed", 100, /*step=*/0),
      Event(2, "t-c", "proposed", "accepted", 110, /*step=*/0),
      Event(3, "t-c", "accepted", "executing", 120, /*step=*/0),
      Marker(4, "site.crash", 130),
      Marker(5, "site.restart", 140),
      Marker(6, "ntcp.recover", 150),
  };
  obs::SpanRecord mark = Event(7, "t-c", "executing", "failed", 160,
                               /*step=*/0);
  mark.tags.push_back({"cause", "crash-recovery"});
  spans.push_back(mark);
  const LintReport report = LintSpans(spans);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(CheckTest, ProtocolEventFromDeadEndpointReported) {
  obs::SpanRecord dup;
  dup.id = 6;
  dup.name = "ntcp.dup";
  dup.category = "txn";
  dup.start_micros = 200;
  dup.end_micros = 200;
  dup.tags = {{"txn", "t-d"},
              {"endpoint", "ntcp.hand"},
              {"kind", "execute"},
              {"state", "completed"}};
  const LintReport report = LintSpans({
      Event(1, "t-d", "none", "proposed", 100, /*step=*/0),
      Event(2, "t-d", "proposed", "accepted", 110, /*step=*/0),
      Event(3, "t-d", "accepted", "executing", 120, /*step=*/0),
      Event(4, "t-d", "executing", "completed", 130, /*step=*/0),
      Marker(5, "site.crash", 140),
      dup,  // a dead process cannot answer retries
  });
  EXPECT_EQ(Rules(report), (std::set<Rule>{Rule::kCrashConsistency}));
}

TEST(CheckTest, RecoveryWithoutCrashReported) {
  EXPECT_EQ(Rules(LintSpans({Marker(1, "ntcp.recover", 100)})),
            (std::set<Rule>{Rule::kCrashConsistency}));
}

TEST(CheckTest, RestartWithoutCrashReported) {
  EXPECT_EQ(Rules(LintSpans({Marker(1, "site.restart", 100)})),
            (std::set<Rule>{Rule::kCrashConsistency}));
}

TEST(CheckTest, DoubleCrashWithoutRestartReported) {
  EXPECT_EQ(Rules(LintSpans({Marker(1, "site.crash", 100),
                             Marker(2, "site.crash", 110)})),
            (std::set<Rule>{Rule::kCrashConsistency}));
}

TEST(CheckTest, CrashRecoveryOnWrongEdgeReported) {
  // cause=crash-recovery on anything but executing -> failed is a lie about
  // what recovery is allowed to do.
  std::vector<obs::SpanRecord> spans = {
      Event(1, "t-w", "none", "proposed", 100, /*step=*/0),
      Marker(2, "site.crash", 110),
      Marker(3, "site.restart", 120),
  };
  obs::SpanRecord mark = Event(4, "t-w", "proposed", "cancelled", 130,
                               /*step=*/0);
  mark.tags.push_back({"cause", "crash-recovery"});
  spans.push_back(mark);
  EXPECT_EQ(Rules(LintSpans(spans)),
            (std::set<Rule>{Rule::kCrashConsistency}));
}

// --- text round trip ---------------------------------------------------------

TEST(CheckTest, LintTraceTextReportsLineNumbers) {
  const std::string text = obs::ExportJsonLines({
      Event(1, "a", "none", "proposed", 100, /*step=*/0),
      Event(2, "a", "proposed", "cancelled", 110, /*step=*/0),
      Event(3, "a", "cancelled", "executing", 120, /*step=*/0),  // illegal
  });
  auto report = LintTraceText(text);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->violations.size(), 1u);
  EXPECT_EQ(report->violations[0].rule, Rule::kIllegalTransition);
  EXPECT_EQ(report->violations[0].line, 3);
  // The offending trace line is embedded in the printable form.
  EXPECT_NE(report->violations[0].ToString().find("line=3"),
            std::string::npos);
}

TEST(CheckTest, MalformedTraceTextRejected) {
  EXPECT_FALSE(LintTraceText("not a trace\n").ok());
}

// --- invariant macro ---------------------------------------------------------

#if defined(NEES_ENABLE_INVARIANTS) && defined(GTEST_HAS_DEATH_TEST)
TEST(InvariantDeathTest, ViolatedInvariantAborts) {
  int checked = 2;
  EXPECT_DEATH(NEES_CHECK_INVARIANT(checked == 3, "forced failure"),
               "invariant violated");
  NEES_CHECK_INVARIANT(checked == 2, "passing check must be silent");
}
#endif

}  // namespace
}  // namespace nees::check
