// Tests for the structural substrate: linear algebra against hand-derived
// results, beam mechanics against closed-form solutions, integrator accuracy
// against analytic SDOF dynamics, and substructure model physics.
#include <cmath>

#include <gtest/gtest.h>

#include "structural/element.h"
#include "structural/frame.h"
#include "structural/groundmotion.h"
#include "structural/integrator.h"
#include "structural/linalg.h"
#include "structural/substructure.h"

namespace nees::structural {
namespace {

// --- linear algebra ------------------------------------------------------------

TEST(MatrixTest, BasicOps) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const Matrix b = Matrix::Identity(2) * 2.0;
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 6.0);
  const Matrix product = a * b;
  EXPECT_DOUBLE_EQ(product(0, 1), 4.0);
  const Matrix transpose = a.Transpose();
  EXPECT_DOUBLE_EQ(transpose(0, 1), 3.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vector v = {1, 1, 1};
  const Vector result = a * v;
  EXPECT_DOUBLE_EQ(result[0], 6.0);
  EXPECT_DOUBLE_EQ(result[1], 15.0);
}

TEST(LuTest, SolveKnownSystem) {
  Matrix a(3, 3);
  a(0, 0) = 4;  a(0, 1) = 1;  a(0, 2) = 0;
  a(1, 0) = 1;  a(1, 1) = 3;  a(1, 2) = 1;
  a(2, 0) = 0;  a(2, 1) = 1;  a(2, 2) = 2;
  const Vector x_true = {1.0, -2.0, 3.0};
  const Vector b = a * x_true;
  auto x = SolveLinear(a, b);
  ASSERT_TRUE(x.ok());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-12);
}

TEST(LuTest, SingularMatrixRejected) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_FALSE(LuFactorization::Compute(a).ok());
}

TEST(LuTest, NonSquareRejected) {
  EXPECT_FALSE(LuFactorization::Compute(Matrix(2, 3)).ok());
}

TEST(LuTest, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  auto x = SolveLinear(a, {2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LuTest, Determinant) {
  Matrix a(2, 2);
  a(0, 0) = 3;
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 4;
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), 10.0, 1e-10);
}

TEST(CholeskyTest, FactorsSpdMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_LT((*l * l->Transpose()).Distance(a), 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 5;
  a(1, 0) = 5;
  a(1, 1) = 1;
  EXPECT_FALSE(CholeskyFactor(a).ok());
  Matrix asym(2, 2);
  asym(0, 1) = 1.0;
  EXPECT_FALSE(CholeskyFactor(asym).ok());
}

TEST(InverseTest, InverseTimesOriginalIsIdentity) {
  Matrix a(3, 3);
  a(0, 0) = 2; a(0, 1) = 1; a(0, 2) = 1;
  a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 2;
  a(2, 0) = 1; a(2, 1) = 0; a(2, 2) = 0;
  auto inverse = Inverse(a);
  ASSERT_TRUE(inverse.ok());
  EXPECT_LT((a * *inverse).Distance(Matrix::Identity(3)), 1e-10);
}

TEST(EigenTest, KnownEigenvalues) {
  // diag(1, 5) rotated is still {1, 5}; use a simple symmetric matrix:
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  auto largest = LargestEigenvalue(a);
  auto smallest = SmallestEigenvalue(a);
  ASSERT_TRUE(largest.ok());
  ASSERT_TRUE(smallest.ok());
  EXPECT_NEAR(*largest, 3.0, 1e-6);
  EXPECT_NEAR(*smallest, 1.0, 1e-6);
}

// --- beam mechanics --------------------------------------------------------------

Section TestSection() {
  Section section;
  section.youngs_modulus = 200e9;
  section.area = 0.01;               // m^2
  section.moment_of_inertia = 2e-5;  // m^4
  section.mass_per_length = 78.5;    // kg/m (steel, 0.01 m^2)
  return section;
}

TEST(ElementTest, LocalStiffnessIsSymmetric) {
  const Matrix k = BeamColumnElement::LocalStiffness(TestSection(), 3.0);
  EXPECT_TRUE(k.IsSymmetric(1e-3));
}

TEST(ElementTest, RigidBodyTranslationProducesNoForce) {
  const Matrix k = BeamColumnElement::LocalStiffness(TestSection(), 3.0);
  const Vector rigid = {1.0, 0.0, 0.0, 1.0, 0.0, 0.0};  // uniform axial shift
  EXPECT_LT(NormInf(k * rigid), 1e-3);
  const Vector rigid_lateral = {0.0, 1.0, 0.0, 0.0, 1.0, 0.0};
  EXPECT_LT(NormInf(k * rigid_lateral), 1e-3);
}

TEST(ElementTest, GlobalStiffnessRotationInvariantTrace) {
  BeamColumnElement element{0, 1, TestSection()};
  const Matrix horizontal = element.GlobalStiffness(0, 0, 3, 0);
  const Matrix vertical = element.GlobalStiffness(0, 0, 0, 3);
  double trace_h = 0, trace_v = 0;
  for (int i = 0; i < 6; ++i) {
    trace_h += horizontal(i, i);
    trace_v += vertical(i, i);
  }
  EXPECT_NEAR(trace_h, trace_v, trace_h * 1e-10);
}

TEST(ElementTest, ConsistentMassTotalMatchesMemberMass) {
  const Section section = TestSection();
  const double length = 3.0;
  const Matrix m = BeamColumnElement::LocalConsistentMass(section, length);
  // Rigid translation in y: v^T M v = total mass.
  const Vector rigid = {0, 1, 0, 0, 1, 0};
  EXPECT_NEAR(Dot(rigid, m * rigid), section.mass_per_length * length, 1e-6);
}

TEST(FrameTest, CantileverTipDeflectionMatchesTheory) {
  // Vertical cantilever of length L loaded laterally at the tip:
  // delta = P L^3 / (3 E I).
  const Section section = TestSection();
  const double length = 3.0;
  FrameModel frame;
  const std::size_t base = frame.AddNode(0, 0);
  const std::size_t tip = frame.AddNode(0, length);
  frame.FixAll(base);
  frame.AddElement(base, tip, section);

  const auto dof = frame.DofIndex(tip, Dof::kUx);
  ASSERT_TRUE(dof.has_value());
  Vector load(frame.FreeDofCount(), 0.0);
  const double p = 1000.0;
  load[*dof] = p;
  auto d = frame.SolveStatic(load);
  ASSERT_TRUE(d.ok());
  const double expected =
      p * std::pow(length, 3) /
      (3.0 * section.youngs_modulus * section.moment_of_inertia);
  EXPECT_NEAR((*d)[*dof], expected, expected * 1e-9);
}

TEST(FrameTest, CondensedCantileverStiffnessIs3EIoverL3) {
  const Section section = TestSection();
  const double length = 3.0;
  FrameModel frame;
  const std::size_t base = frame.AddNode(0, 0);
  const std::size_t tip = frame.AddNode(0, length);
  frame.FixAll(base);
  frame.AddElement(base, tip, section);

  const auto dof = frame.DofIndex(tip, Dof::kUx);
  ASSERT_TRUE(dof.has_value());
  auto condensed = frame.CondenseStiffness({*dof});
  ASSERT_TRUE(condensed.ok());
  EXPECT_NEAR((*condensed)(0, 0), CantileverLateralStiffness(section, length),
              1.0);
}

TEST(FrameTest, FixedRotationColumnGives12EIoverL3) {
  const Section section = TestSection();
  const double length = 3.0;
  FrameModel frame;
  const std::size_t base = frame.AddNode(0, 0);
  const std::size_t tip = frame.AddNode(0, length);
  frame.FixAll(base);
  frame.Fix(tip, Dof::kRz);  // rotation restrained (rigid beam above)
  frame.Fix(tip, Dof::kUy);
  frame.AddElement(base, tip, section);

  const auto dof = frame.DofIndex(tip, Dof::kUx);
  ASSERT_TRUE(dof.has_value());
  const Matrix k = frame.AssembleStiffness();
  EXPECT_NEAR(k(*dof, *dof), FixedFixedLateralStiffness(section, length), 1.0);
}

TEST(FrameTest, AssembledStiffnessSymmetricPositiveDefinite) {
  // Two-bay single-story frame (the MOST configuration, Fig. 4).
  const Section section = TestSection();
  FrameModel frame;
  const std::size_t b0 = frame.AddNode(0, 0);
  const std::size_t b1 = frame.AddNode(4, 0);
  const std::size_t b2 = frame.AddNode(8, 0);
  const std::size_t t0 = frame.AddNode(0, 3);
  const std::size_t t1 = frame.AddNode(4, 3);
  const std::size_t t2 = frame.AddNode(8, 3);
  frame.FixAll(b0);
  frame.FixAll(b1);
  frame.FixAll(b2);
  frame.AddElement(b0, t0, section);
  frame.AddElement(b1, t1, section);
  frame.AddElement(b2, t2, section);
  frame.AddElement(t0, t1, section);
  frame.AddElement(t1, t2, section);

  const Matrix k = frame.AssembleStiffness();
  EXPECT_EQ(k.rows(), 9u);  // 3 free nodes x 3 DOFs
  EXPECT_TRUE(k.IsSymmetric(1e-3));
  EXPECT_TRUE(CholeskyFactor(k).ok());  // SPD: restrained structure

  const Matrix m = frame.AssembleMass();
  EXPECT_TRUE(m.IsSymmetric(1e-6));
  EXPECT_TRUE(CholeskyFactor(m).ok());
}

TEST(FrameTest, LumpedMassAddsToTranslationalDofs) {
  FrameModel frame;
  const std::size_t base = frame.AddNode(0, 0);
  const std::size_t tip = frame.AddNode(0, 3);
  frame.FixAll(base);
  frame.AddElement(base, tip, TestSection());
  frame.AddLumpedMass(tip, 500.0);
  const Matrix with_mass = frame.AssembleMass();
  const auto ux = frame.DofIndex(tip, Dof::kUx);
  ASSERT_TRUE(ux.has_value());
  FrameModel bare;
  const std::size_t b2 = bare.AddNode(0, 0);
  const std::size_t t2 = bare.AddNode(0, 3);
  bare.FixAll(b2);
  bare.AddElement(b2, t2, TestSection());
  const Matrix without_mass = bare.AssembleMass();
  EXPECT_NEAR(with_mass(*ux, *ux) - without_mass(*ux, *ux), 500.0, 1e-9);
}

TEST(FrameTest, RayleighDampingHitsTargetRatios) {
  // SDOF sanity: with M=1, K=w^2, damping ratio at w should equal zeta.
  const double omega = 10.0;
  Matrix m = Matrix::Identity(1);
  Matrix k = Matrix::Identity(1) * (omega * omega);
  const Matrix c = FrameModel::RayleighDamping(m, k, omega, omega * 3, 0.05);
  // zeta(w) = c / (2 m w)... for Rayleigh: zeta = (alpha/w + beta*w)/2.
  const double zeta = c(0, 0) / (2.0 * omega);
  EXPECT_NEAR(zeta, 0.05, 1e-12);
}

// --- ground motion -----------------------------------------------------------------

TEST(GroundMotionTest, SyntheticQuakeHitsTargetPga) {
  SyntheticQuakeParams params;
  params.steps = 1500;
  params.peak_accel = 3.0;
  const GroundMotion motion = SynthesizeQuake(params);
  EXPECT_EQ(motion.steps(), 1500u);
  EXPECT_NEAR(motion.PeakAcceleration(), 3.0, 1e-9);
  EXPECT_NEAR(motion.duration(), 30.0, 1e-9);
}

TEST(GroundMotionTest, Deterministic) {
  SyntheticQuakeParams params;
  const GroundMotion a = SynthesizeQuake(params);
  const GroundMotion b = SynthesizeQuake(params);
  EXPECT_EQ(a.accel, b.accel);
  params.seed += 1;
  const GroundMotion c = SynthesizeQuake(params);
  EXPECT_NE(a.accel, c.accel);
}

TEST(GroundMotionTest, EnvelopeShapesRecord) {
  SyntheticQuakeParams params;
  params.steps = 1000;
  const GroundMotion motion = SynthesizeQuake(params);
  EXPECT_EQ(motion.accel[0], 0.0);  // envelope starts at zero
  // Tail should be much quieter than the strong phase.
  double strong = 0.0, tail = 0.0;
  for (std::size_t i = 200; i < 400; ++i) strong += std::fabs(motion.accel[i]);
  for (std::size_t i = 900; i < 1000; ++i) tail += std::fabs(motion.accel[i]);
  EXPECT_GT(strong / 200.0, 3.0 * (tail / 100.0));
}

TEST(GroundMotionTest, HarmonicAndPulseShapes) {
  const GroundMotion h = Harmonic(0.01, 100, 2.0, 1.0);
  EXPECT_NEAR(h.accel[25], 2.0, 1e-9);  // quarter period
  const GroundMotion p = SinePulse(0.01, 100, 2.0, 1.0);
  EXPECT_NEAR(p.accel[25], 2.0, 1e-9);
  EXPECT_EQ(p.accel[60], 0.0);  // pulse over after half period
}

TEST(GroundMotionTest, CsvExport) {
  const GroundMotion h = Harmonic(0.01, 3, 1.0, 1.0);
  const std::string csv = ToCsv(h);
  EXPECT_NE(csv.find("t,accel"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

// --- integrators --------------------------------------------------------------------

// SDOF parameters: m = 100 kg, k = 4e4 N/m -> omega = 20 rad/s, T = 0.314 s.
struct Sdof {
  double m = 100.0;
  double k = 4.0e4;
  double omega() const { return std::sqrt(k / m); }
};

TEST(NewmarkTest, FreeVibrationPeriodAndAmplitude) {
  const Sdof sys;
  Matrix m = Matrix::Identity(1) * sys.m;
  Matrix c(1, 1);
  Matrix k = Matrix::Identity(1) * sys.k;
  // Impulse start: emulate initial velocity via a one-step acceleration...
  // Simpler: short pulse then free vibration; verify periodicity.
  GroundMotion motion = SinePulse(0.005, 2000, 5.0, 10.0);
  NewmarkBeta newmark(m, c, k, {1.0});
  auto history = newmark.Integrate(motion);
  ASSERT_TRUE(history.ok());

  // Find the time between successive positive-going zero crossings late in
  // the record; should equal the natural period.
  const double expected_period = 2.0 * M_PI / sys.omega();
  std::vector<double> crossings;
  for (std::size_t i = 1000; i + 1 < history->displacement.size(); ++i) {
    const double a = history->displacement[i][0];
    const double b = history->displacement[i + 1][0];
    if (a < 0 && b >= 0) {
      crossings.push_back(0.005 * (i + (-a) / (b - a)));
    }
  }
  ASSERT_GE(crossings.size(), 3u);
  const double measured_period = crossings[2] - crossings[1];
  EXPECT_NEAR(measured_period, expected_period, expected_period * 0.01);

  // Average-acceleration Newmark adds no numerical damping: amplitude holds.
  double early_peak = 0, late_peak = 0;
  for (std::size_t i = 200; i < 400; ++i) {
    early_peak = std::max(early_peak, std::fabs(history->displacement[i][0]));
  }
  for (std::size_t i = 1600; i < 1800; ++i) {
    late_peak = std::max(late_peak, std::fabs(history->displacement[i][0]));
  }
  EXPECT_NEAR(late_peak, early_peak, early_peak * 0.02);
}

TEST(NewmarkTest, HarmonicSteadyStateMatchesTransferFunction) {
  const Sdof sys;
  const double zeta = 0.05;
  const double c_coeff = 2.0 * zeta * sys.omega() * sys.m;
  Matrix m = Matrix::Identity(1) * sys.m;
  Matrix c = Matrix::Identity(1) * c_coeff;
  Matrix k = Matrix::Identity(1) * sys.k;

  const double drive_hz = 2.0;  // well below resonance (3.18 Hz)
  const double amp = 1.0;
  GroundMotion motion = Harmonic(0.002, 20000, amp, drive_hz);
  NewmarkBeta newmark(m, c, k, {1.0});
  auto history = newmark.Integrate(motion);
  ASSERT_TRUE(history.ok());

  double steady_peak = 0;
  for (std::size_t i = 15000; i < history->displacement.size(); ++i) {
    steady_peak = std::max(steady_peak, std::fabs(history->displacement[i][0]));
  }
  const double w = 2.0 * M_PI * drive_hz;
  const double wn = sys.omega();
  const double r = w / wn;
  const double expected =
      amp / (wn * wn) /
      std::sqrt(std::pow(1 - r * r, 2) + std::pow(2 * zeta * r, 2));
  EXPECT_NEAR(steady_peak, expected, expected * 0.02);
}

TEST(CentralDifferenceTest, MatchesNewmarkOnLinearSystem) {
  const Sdof sys;
  Matrix m = Matrix::Identity(1) * sys.m;
  Matrix c = Matrix::Identity(1) * (2.0 * 0.02 * sys.omega() * sys.m);
  Matrix k = Matrix::Identity(1) * sys.k;
  GroundMotion motion = SinePulse(0.002, 3000, 3.0, 5.0);

  NewmarkBeta newmark(m, c, k, {1.0});
  auto reference = newmark.Integrate(motion);
  ASSERT_TRUE(reference.ok());

  ElasticSubstructure elastic(k);
  CentralDifferencePsd psd(m, c, {1.0});
  auto history = psd.Integrate(
      motion, [&](std::size_t, const Vector& d) { return elastic.Restore(d); });
  ASSERT_TRUE(history.ok());

  const double peak_ref = reference->PeakDisplacement(0);
  double max_diff = 0;
  for (std::size_t i = 0; i < history->displacement.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(history->displacement[i][0] -
                                  reference->displacement[i][0]));
  }
  EXPECT_LT(max_diff, 0.02 * peak_ref);
}

TEST(CentralDifferenceTest, StableDtLimitMatchesTheory) {
  const Sdof sys;
  Matrix m = Matrix::Identity(1) * sys.m;
  Matrix k = Matrix::Identity(1) * sys.k;
  // dt_max = 2 / omega = 0.1 s.
  EXPECT_NEAR(CentralDifferencePsd::StableDtLimit(m, k), 2.0 / sys.omega(),
              1e-6);
}

TEST(CentralDifferenceTest, DivergesAboveStabilityLimit) {
  const Sdof sys;
  Matrix m = Matrix::Identity(1) * sys.m;
  Matrix c(1, 1);
  Matrix k = Matrix::Identity(1) * sys.k;
  ElasticSubstructure elastic(k);
  CentralDifferencePsd psd(m, c, {1.0});

  GroundMotion unstable = Harmonic(0.12, 500, 1.0, 1.0);  // dt > 0.1 limit
  auto bad = psd.Integrate(unstable, [&](std::size_t, const Vector& d) {
    return elastic.Restore(d);
  });
  ASSERT_TRUE(bad.ok());
  EXPECT_GT(bad->PeakDisplacement(0), 1e3);  // exponential blow-up

  GroundMotion stable = Harmonic(0.02, 500, 1.0, 1.0);
  auto good = psd.Integrate(stable, [&](std::size_t, const Vector& d) {
    return elastic.Restore(d);
  });
  ASSERT_TRUE(good.ok());
  EXPECT_LT(good->PeakDisplacement(0), 1.0);
}

TEST(CentralDifferenceTest, RestoringFailureAbortsRun) {
  Matrix m = Matrix::Identity(1);
  Matrix c(1, 1);
  CentralDifferencePsd psd(m, c, {1.0});
  GroundMotion motion = Harmonic(0.01, 100, 1.0, 1.0);
  int calls = 0;
  auto history = psd.Integrate(
      motion, [&](std::size_t step, const Vector&) -> util::Result<Vector> {
        ++calls;
        if (step == 10) return util::Unavailable("site offline");
        return Vector{0.0};
      });
  EXPECT_FALSE(history.ok());
  EXPECT_EQ(history.status().code(), util::ErrorCode::kUnavailable);
  EXPECT_EQ(calls, 11);
}

// --- operator-splitting integrator ------------------------------------------------

TEST(OperatorSplittingTest, MatchesNewmarkOnLinearSystemWithExactK0) {
  const Sdof sys;
  Matrix m = Matrix::Identity(1) * sys.m;
  Matrix c = Matrix::Identity(1) * (2.0 * 0.03 * sys.omega() * sys.m);
  Matrix k = Matrix::Identity(1) * sys.k;
  GroundMotion motion = SinePulse(0.002, 3000, 3.0, 5.0);

  NewmarkBeta newmark(m, c, k, {1.0});
  auto reference = newmark.Integrate(motion);
  ASSERT_TRUE(reference.ok());

  ElasticSubstructure elastic(k);
  OperatorSplittingPsd os(m, c, k, {1.0});
  auto history = os.Integrate(
      motion, [&](std::size_t, const Vector& d) { return elastic.Restore(d); });
  ASSERT_TRUE(history.ok());

  const double peak = reference->PeakDisplacement(0);
  double max_diff = 0;
  for (std::size_t i = 0; i < history->displacement.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(history->displacement[i][0] -
                                  reference->displacement[i][0]));
  }
  // With exact K0 and a linear structure, OS equals Newmark up to the
  // predictor's O(dt^2) local error.
  EXPECT_LT(max_diff, 0.02 * peak);
}

TEST(OperatorSplittingTest, StableBeyondCentralDifferenceLimit) {
  const Sdof sys;  // omega = 20, CD limit dt = 0.1
  Matrix m = Matrix::Identity(1) * sys.m;
  Matrix c = Matrix::Identity(1) * (2.0 * 0.02 * sys.omega() * sys.m);
  Matrix k = Matrix::Identity(1) * sys.k;
  GroundMotion coarse = Harmonic(0.15, 400, 1.0, 0.5);  // dt 50% over limit

  ElasticSubstructure elastic_cd(k);
  CentralDifferencePsd cd(m, c, {1.0});
  auto diverged = cd.Integrate(coarse, [&](std::size_t, const Vector& d) {
    return elastic_cd.Restore(d);
  });
  ASSERT_TRUE(diverged.ok());
  EXPECT_GT(diverged->PeakDisplacement(0), 1e3);  // explicit scheme blows up

  ElasticSubstructure elastic_os(k);
  OperatorSplittingPsd os(m, c, k, {1.0});
  auto bounded = os.Integrate(coarse, [&](std::size_t, const Vector& d) {
    return elastic_os.Restore(d);
  });
  ASSERT_TRUE(bounded.ok());
  EXPECT_LT(bounded->PeakDisplacement(0), 0.1);  // OS stays physical
}

TEST(OperatorSplittingTest, SofteningHystereticSystemStaysBounded) {
  // K0 = elastic stiffness; the Bouc-Wen model softens under yield, which
  // is the K_actual <= K0 regime OS is designed for.
  Matrix m = Matrix::Identity(1) * 100.0;
  Matrix c = Matrix::Identity(1) * 40.0;
  Matrix k0 = Matrix::Identity(1) * 4.0e4;
  BoucWenSubstructure::Params params;
  params.elastic_stiffness = 4.0e4;
  params.yield_displacement = 0.01;
  BoucWenSubstructure model(params);
  OperatorSplittingPsd os(m, c, k0, {1.0});
  GroundMotion motion = Harmonic(0.05, 600, 4.0, 1.0);  // strong + coarse dt
  auto history = os.Integrate(
      motion, [&](std::size_t, const Vector& d) { return model.Restore(d); });
  ASSERT_TRUE(history.ok());
  EXPECT_LT(history->PeakDisplacement(0), 1.0);
  EXPECT_GT(history->PeakDisplacement(0), 0.005);  // it did yield
}

TEST(OperatorSplittingTest, RestoringFailurePropagates) {
  Matrix m = Matrix::Identity(1);
  Matrix c(1, 1);
  Matrix k0 = Matrix::Identity(1);
  OperatorSplittingPsd os(m, c, k0, {1.0});
  GroundMotion motion = Harmonic(0.01, 50, 1.0, 1.0);
  auto history = os.Integrate(
      motion, [&](std::size_t step, const Vector&) -> util::Result<Vector> {
        if (step == 7) return util::Unavailable("site offline");
        return Vector{0.0};
      });
  EXPECT_EQ(history.status().code(), util::ErrorCode::kUnavailable);
}

// --- substructures -------------------------------------------------------------------

TEST(SubstructureTest, ElasticRestoringForce) {
  Matrix k = Matrix::Identity(2) * 1000.0;
  ElasticSubstructure elastic(k);
  auto r = elastic.Restore({0.01, -0.02});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR((*r)[0], 10.0, 1e-12);
  EXPECT_NEAR((*r)[1], -20.0, 1e-12);
  EXPECT_FALSE(elastic.Restore({1.0}).ok());  // wrong dimension
}

TEST(SubstructureTest, BoucWenSmallAmplitudeIsNearlyElastic) {
  BoucWenSubstructure::Params params;
  params.elastic_stiffness = 1e6;
  params.yield_displacement = 0.01;
  BoucWenSubstructure model(params);
  const double d = 0.0005;  // 5% of yield
  auto r = model.Restore({d});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR((*r)[0], params.elastic_stiffness * d,
              0.05 * params.elastic_stiffness * d);
}

TEST(SubstructureTest, BoucWenYieldBoundsForce) {
  BoucWenSubstructure::Params params;
  params.elastic_stiffness = 1e6;
  params.yield_displacement = 0.01;
  params.alpha = 0.0;  // elastic-perfectly-plastic: force capped at k*dy
  BoucWenSubstructure model(params);
  double force = 0.0;
  for (int i = 1; i <= 100; ++i) {
    auto r = model.Restore({0.001 * i});  // push to 10x yield
    ASSERT_TRUE(r.ok());
    force = (*r)[0];
  }
  const double yield_force =
      params.elastic_stiffness * params.yield_displacement;
  EXPECT_NEAR(force, yield_force, 0.02 * yield_force);
}

TEST(SubstructureTest, BoucWenHysteresisDissipatesEnergy) {
  BoucWenSubstructure::Params params;
  params.elastic_stiffness = 1e6;
  params.yield_displacement = 0.01;
  BoucWenSubstructure model(params);
  // One full displacement cycle to 3x yield; integrate F dd (loop area).
  double energy = 0.0;
  double d_prev = 0.0, f_prev = 0.0;
  const int n = 400;
  for (int i = 1; i <= n; ++i) {
    const double d = 0.03 * std::sin(2.0 * M_PI * i / n);
    auto r = model.Restore({d});
    ASSERT_TRUE(r.ok());
    energy += 0.5 * ((*r)[0] + f_prev) * (d - d_prev);
    d_prev = d;
    f_prev = (*r)[0];
  }
  EXPECT_GT(energy, 100.0);  // a yielding cycle dissipates real energy
}

TEST(SubstructureTest, BoucWenResetRestoresVirginState) {
  BoucWenSubstructure::Params params;
  BoucWenSubstructure model(params);
  (void)model.Restore({0.05});
  EXPECT_NE(model.hysteretic_variable(), 0.0);
  model.Reset();
  EXPECT_EQ(model.hysteretic_variable(), 0.0);
}

TEST(SubstructureTest, FirstOrderKineticConvergesToCommand) {
  FirstOrderKineticSubstructure::Params params;
  params.stiffness = 1e5;
  params.time_constant = 0.05;
  params.dt = 0.02;
  FirstOrderKineticSubstructure model(params);
  double force = 0.0;
  for (int i = 0; i < 50; ++i) {
    auto r = model.Restore({0.01});
    ASSERT_TRUE(r.ok());
    force = (*r)[0];
  }
  EXPECT_NEAR(model.position(), 0.01, 1e-6);
  EXPECT_NEAR(force, 1e3, 1.0);
}

TEST(SubstructureTest, FirstOrderKineticLagsStep) {
  FirstOrderKineticSubstructure::Params params;
  params.time_constant = 0.1;
  params.dt = 0.02;
  FirstOrderKineticSubstructure model(params);
  auto r = model.Restore({1.0});
  ASSERT_TRUE(r.ok());
  // After one dt the response is 1 - exp(-dt/tau) = 18.1% of the command.
  EXPECT_NEAR(model.position(), 1.0 - std::exp(-0.2), 1e-9);
}

}  // namespace
}  // namespace nees::structural
