// Tests for the GSI-analog security stack: Schnorr signatures, certificate
// chains, proxy delegation, the handshake/token flow, gridmap/ACL
// authorization, and CAS capabilities.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/rpc.h"
#include "security/auth.h"
#include "security/cas.h"
#include "security/certificate.h"
#include "security/schnorr.h"
#include "util/clock.h"

namespace nees::security {
namespace {

using util::ErrorCode;

// --- Schnorr -----------------------------------------------------------------

TEST(SchnorrTest, SignVerifyRoundTrip) {
  util::Rng rng(1);
  const SigningKey key = GenerateKey(rng);
  const Signature signature = Sign(key, "hello MOST", rng);
  EXPECT_TRUE(Verify(key.public_key, "hello MOST", signature));
}

TEST(SchnorrTest, WrongMessageFails) {
  util::Rng rng(2);
  const SigningKey key = GenerateKey(rng);
  const Signature signature = Sign(key, "message A", rng);
  EXPECT_FALSE(Verify(key.public_key, "message B", signature));
}

TEST(SchnorrTest, WrongKeyFails) {
  util::Rng rng(3);
  const SigningKey alice = GenerateKey(rng);
  const SigningKey bob = GenerateKey(rng);
  const Signature signature = Sign(alice, "msg", rng);
  EXPECT_FALSE(Verify(bob.public_key, "msg", signature));
}

TEST(SchnorrTest, TamperedSignatureFails) {
  util::Rng rng(4);
  const SigningKey key = GenerateKey(rng);
  Signature signature = Sign(key, "msg", rng);
  signature.response ^= 1;
  EXPECT_FALSE(Verify(key.public_key, "msg", signature));
}

TEST(SchnorrTest, RejectsDegenerateKeys) {
  util::Rng rng(5);
  const SigningKey key = GenerateKey(rng);
  const Signature signature = Sign(key, "msg", rng);
  EXPECT_FALSE(Verify(0, "msg", signature));
  EXPECT_FALSE(Verify(kPrime, "msg", signature));
}

TEST(SchnorrTest, PowModAgainstKnownValues) {
  EXPECT_EQ(PowMod(2, 10), 1024u);
  EXPECT_EQ(PowMod(kGenerator, 0), 1u);
  // Fermat: g^(p-1) = 1 mod p.
  EXPECT_EQ(PowMod(kGenerator, kPrime - 1), 1u);
}

class SchnorrPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SchnorrPropertyTest, ManyKeysManyMessages) {
  util::Rng rng(1000 + GetParam());
  const SigningKey key = GenerateKey(rng);
  for (int i = 0; i < 5; ++i) {
    const std::string message = "msg-" + std::to_string(GetParam()) + "-" +
                                std::to_string(i);
    const Signature signature = Sign(key, message, rng);
    EXPECT_TRUE(Verify(key.public_key, message, signature));
    EXPECT_FALSE(Verify(key.public_key, message + "x", signature));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchnorrPropertyTest, ::testing::Range(0, 10));

// --- Certificates ------------------------------------------------------------

class CertificateTest : public ::testing::Test {
 protected:
  CertificateTest() : rng_(77), ca_("/O=NEES/CN=NEES CA", clock_, rng_) {
    trust_.AddRoot(ca_.root_certificate());
  }

  util::SimClock clock_{1'000'000};
  util::Rng rng_;
  CertificateAuthority ca_;
  TrustStore trust_;
};

TEST_F(CertificateTest, IssuedIdentityVerifies) {
  const Credential user =
      ca_.IssueIdentity("/O=NEES/CN=spencer", 1'000'000'000, rng_);
  auto subject = trust_.VerifyChain(user.chain(), clock_.NowMicros());
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(*subject, "/O=NEES/CN=spencer");
}

TEST_F(CertificateTest, UntrustedRootRejected) {
  util::Rng other_rng(99);
  CertificateAuthority rogue("/O=EVIL/CN=CA", clock_, other_rng);
  const Credential user =
      rogue.IssueIdentity("/O=NEES/CN=spencer", 0, other_rng);
  auto subject = trust_.VerifyChain(user.chain(), clock_.NowMicros());
  EXPECT_EQ(subject.status().code(), ErrorCode::kUnauthenticated);
}

TEST_F(CertificateTest, ForgedRootWithSameNameRejected) {
  // Same DN as the real CA but a different key: must be rejected.
  util::Rng other_rng(99);
  CertificateAuthority rogue("/O=NEES/CN=NEES CA", clock_, other_rng);
  const Credential user = rogue.IssueIdentity("/O=NEES/CN=mallory", 0, other_rng);
  EXPECT_FALSE(trust_.VerifyChain(user.chain(), clock_.NowMicros()).ok());
}

TEST_F(CertificateTest, ExpiredCertificateRejected) {
  const Credential user =
      ca_.IssueIdentity("/O=NEES/CN=shortlived", 1000, rng_);
  EXPECT_TRUE(trust_.VerifyChain(user.chain(), clock_.NowMicros()).ok());
  clock_.Advance(2000);
  EXPECT_FALSE(trust_.VerifyChain(user.chain(), clock_.NowMicros()).ok());
}

TEST_F(CertificateTest, TamperedCertificateRejected) {
  Credential user = ca_.IssueIdentity("/O=NEES/CN=spencer", 0, rng_);
  std::vector<Certificate> chain = user.chain();
  chain.back().subject = "/O=NEES/CN=admin";  // privilege escalation attempt
  EXPECT_FALSE(trust_.VerifyChain(chain, clock_.NowMicros()).ok());
}

TEST_F(CertificateTest, ProxyDelegationVerifiesToBaseIdentity) {
  const Credential user = ca_.IssueIdentity("/O=NEES/CN=spencer", 0, rng_);
  const Credential proxy = user.CreateProxy(60'000'000, clock_, rng_);
  auto subject = trust_.VerifyChain(proxy.chain(), clock_.NowMicros());
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(*subject, "/O=NEES/CN=spencer");
  EXPECT_EQ(proxy.subject(), "/O=NEES/CN=spencer/proxy");
}

TEST_F(CertificateTest, NestedProxiesVerify) {
  const Credential user = ca_.IssueIdentity("/O=NEES/CN=spencer", 0, rng_);
  Credential proxy = user.CreateProxy(60'000'000, clock_, rng_);
  for (int depth = 0; depth < 3; ++depth) {
    proxy = proxy.CreateProxy(60'000'000, clock_, rng_);
  }
  auto subject = trust_.VerifyChain(proxy.chain(), clock_.NowMicros());
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(*subject, "/O=NEES/CN=spencer");
}

TEST_F(CertificateTest, ProxyDepthLimitEnforced) {
  const Credential user = ca_.IssueIdentity("/O=NEES/CN=spencer", 0, rng_);
  Credential proxy = user.CreateProxy(60'000'000, clock_, rng_);
  for (int depth = 0; depth < 9; ++depth) {
    proxy = proxy.CreateProxy(60'000'000, clock_, rng_);
  }
  VerifyOptions options;
  options.max_proxy_depth = 8;
  EXPECT_FALSE(
      trust_.VerifyChain(proxy.chain(), clock_.NowMicros(), options).ok());
}

TEST_F(CertificateTest, ExpiredProxyRejected) {
  const Credential user = ca_.IssueIdentity("/O=NEES/CN=spencer", 0, rng_);
  const Credential proxy = user.CreateProxy(1000, clock_, rng_);
  clock_.Advance(2000);
  EXPECT_FALSE(trust_.VerifyChain(proxy.chain(), clock_.NowMicros()).ok());
}

TEST_F(CertificateTest, NonCaCannotIssueIdentities) {
  // A regular user forges an "identity" cert signed with their own key.
  const Credential user = ca_.IssueIdentity("/O=NEES/CN=user", 0, rng_);
  Certificate forged;
  forged.subject = "/O=NEES/CN=admin";
  forged.issuer = user.subject();
  const SigningKey forged_key = GenerateKey(rng_);
  forged.public_key = forged_key.public_key;
  forged.valid_from_micros = clock_.NowMicros();
  forged.signature = user.Sign(forged.CanonicalPayload(), rng_);
  std::vector<Certificate> chain = user.chain();
  chain.push_back(forged);
  EXPECT_FALSE(trust_.VerifyChain(chain, clock_.NowMicros()).ok());
}

TEST_F(CertificateTest, EmptyChainRejected) {
  EXPECT_FALSE(trust_.VerifyChain({}, clock_.NowMicros()).ok());
}

TEST_F(CertificateTest, EncodeDecodeRoundTrip) {
  const Credential user = ca_.IssueIdentity("/O=NEES/CN=spencer", 123, rng_);
  util::ByteWriter writer;
  EncodeCertificate(user.leaf(), writer);
  util::ByteReader reader(writer.data());
  auto decoded = DecodeCertificate(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->subject, user.leaf().subject);
  EXPECT_EQ(decoded->public_key, user.leaf().public_key);
  EXPECT_EQ(decoded->signature, user.leaf().signature);
  EXPECT_EQ(decoded->CanonicalPayload(), user.leaf().CanonicalPayload());
}

TEST(BaseIdentityTest, StripsProxySuffixes) {
  EXPECT_EQ(BaseIdentity("/O=N/CN=a"), "/O=N/CN=a");
  EXPECT_EQ(BaseIdentity("/O=N/CN=a/proxy"), "/O=N/CN=a");
  EXPECT_EQ(BaseIdentity("/O=N/CN=a/proxy/proxy/proxy"), "/O=N/CN=a");
}

// --- Session tokens ------------------------------------------------------------

TEST(SessionTokenTest, IssueValidateRoundTrip) {
  SessionTokenIssuer issuer("secret");
  const std::string token = issuer.Issue("/O=NEES/CN=x", 10'000);
  auto subject = issuer.Validate(token, 5'000);
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(*subject, "/O=NEES/CN=x");
}

TEST(SessionTokenTest, ExpiredTokenRejected) {
  SessionTokenIssuer issuer("secret");
  const std::string token = issuer.Issue("/O=NEES/CN=x", 10'000);
  EXPECT_FALSE(issuer.Validate(token, 10'000).ok());
}

TEST(SessionTokenTest, TamperedTokenRejected) {
  SessionTokenIssuer issuer("secret");
  std::string token = issuer.Issue("/O=NEES/CN=x", 10'000);
  token[0] = token[0] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(issuer.Validate(token, 0).ok());
}

TEST(SessionTokenTest, TokenFromOtherIssuerRejected) {
  SessionTokenIssuer a("secret-a"), b("secret-b");
  EXPECT_FALSE(b.Validate(a.Issue("/O=NEES/CN=x", 0), 0).ok());
}

TEST(SessionTokenTest, MalformedTokensRejected) {
  SessionTokenIssuer issuer("secret");
  EXPECT_FALSE(issuer.Validate("", 0).ok());
  EXPECT_FALSE(issuer.Validate("a|b", 0).ok());
  EXPECT_FALSE(issuer.Validate("a|notanumber|cc", 0).ok());
}

// --- GridMap / ACL -------------------------------------------------------------

TEST(GridMapTest, LookupResolvesProxiesToBase) {
  GridMap gridmap;
  gridmap.Add("/O=NEES/CN=spencer", "bfs");
  auto user = gridmap.Lookup("/O=NEES/CN=spencer/proxy");
  ASSERT_TRUE(user.ok());
  EXPECT_EQ(*user, "bfs");
  EXPECT_FALSE(gridmap.Lookup("/O=NEES/CN=unknown").ok());
}

TEST(AccessControlTest, EmptyAclIsOpen) {
  AccessControl acl;
  EXPECT_TRUE(acl.Check("/O=NEES/CN=anyone", "ntcp.propose"));
}

TEST(AccessControlTest, PrefixRules) {
  AccessControl acl;
  acl.Allow("/O=NEES/CN=coordinator", "ntcp.");
  acl.Allow("*", "ogsi.findServiceData");
  EXPECT_TRUE(acl.Check("/O=NEES/CN=coordinator", "ntcp.propose"));
  EXPECT_FALSE(acl.Check("/O=NEES/CN=observer", "ntcp.propose"));
  EXPECT_TRUE(acl.Check("/O=NEES/CN=observer", "ogsi.findServiceData"));
  acl.Revoke("/O=NEES/CN=coordinator", "ntcp.");
  EXPECT_FALSE(acl.Check("/O=NEES/CN=coordinator", "ntcp.propose"));
}

// --- Handshake over the network -------------------------------------------------

class AuthFlowTest : public ::testing::Test {
 protected:
  AuthFlowTest()
      : rng_(7), ca_("/O=NEES/CN=CA", clock_, rng_) {}

  void SetUp() override {
    network_.SetClock(&clock_);
    TrustStore trust;
    trust.AddRoot(ca_.root_certificate());
    auth_ = std::make_unique<AuthService>(std::move(trust), &clock_,
                                          util::Rng(1234));
    server_ = std::make_unique<net::RpcServer>(&network_, "ntcp.uiuc");
    ASSERT_TRUE(server_->Start().ok());
    server_->RegisterMethod(
        "ntcp.getState",
        [](const net::CallContext& context,
           const net::Bytes&) -> util::Result<net::Bytes> {
          return net::Bytes(context.subject.begin(), context.subject.end());
        });
    auth_->Attach(*server_);
  }

  util::SimClock clock_{1'000'000'000};
  util::Rng rng_;
  net::Network network_;
  CertificateAuthority ca_;
  std::unique_ptr<AuthService> auth_;
  std::unique_ptr<net::RpcServer> server_;
};

TEST_F(AuthFlowTest, LoginThenAuthenticatedCall) {
  const Credential user = ca_.IssueIdentity("/O=NEES/CN=coordinator", 0, rng_);
  net::RpcClient rpc(&network_, "client");
  AuthClient login(&rpc, user, &clock_, util::Rng(5));
  ASSERT_TRUE(login.Login("ntcp.uiuc").ok());

  auto result = rpc.Call("ntcp.uiuc", "ntcp.getState", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::string(result->begin(), result->end()),
            "/O=NEES/CN=coordinator");
}

TEST_F(AuthFlowTest, UnauthenticatedCallRejected) {
  net::RpcClient rpc(&network_, "client");
  auto result = rpc.Call("ntcp.uiuc", "ntcp.getState", {});
  EXPECT_EQ(result.status().code(), ErrorCode::kUnauthenticated);
}

TEST_F(AuthFlowTest, ProxyCredentialLoginWorks) {
  const Credential user = ca_.IssueIdentity("/O=NEES/CN=coordinator", 0, rng_);
  const Credential proxy = user.CreateProxy(3'600'000'000, clock_, rng_);
  net::RpcClient rpc(&network_, "client");
  AuthClient login(&rpc, proxy, &clock_, util::Rng(5));
  ASSERT_TRUE(login.Login("ntcp.uiuc").ok());
  auto result = rpc.Call("ntcp.uiuc", "ntcp.getState", {});
  ASSERT_TRUE(result.ok());
  // Proxy collapses to the base identity.
  EXPECT_EQ(std::string(result->begin(), result->end()),
            "/O=NEES/CN=coordinator");
}

TEST_F(AuthFlowTest, UntrustedCredentialLoginFails) {
  util::Rng rogue_rng(5);
  CertificateAuthority rogue("/O=EVIL/CN=CA", clock_, rogue_rng);
  const Credential user = rogue.IssueIdentity("/O=EVIL/CN=x", 0, rogue_rng);
  net::RpcClient rpc(&network_, "client");
  AuthClient login(&rpc, user, &clock_, util::Rng(5));
  EXPECT_EQ(login.Login("ntcp.uiuc").code(), ErrorCode::kUnauthenticated);
}

TEST_F(AuthFlowTest, StaleHandshakeTimestampRejected) {
  const Credential user = ca_.IssueIdentity("/O=NEES/CN=coordinator", 0, rng_);
  // A clock skewed far behind the server produces a stale challenge.
  util::SimClock skewed(clock_.NowMicros() - 600'000'000);
  net::RpcClient rpc(&network_, "client");
  AuthClient login(&rpc, user, &skewed, util::Rng(5));
  EXPECT_EQ(login.Login("ntcp.uiuc").code(), ErrorCode::kUnauthenticated);
}

TEST_F(AuthFlowTest, GridmapRestrictsLogin) {
  auth_->gridmap().Add("/O=NEES/CN=coordinator", "coord");
  const Credential allowed =
      ca_.IssueIdentity("/O=NEES/CN=coordinator", 0, rng_);
  const Credential unmapped = ca_.IssueIdentity("/O=NEES/CN=visitor", 0, rng_);

  net::RpcClient rpc_a(&network_, "client.a");
  AuthClient login_a(&rpc_a, allowed, &clock_, util::Rng(5));
  EXPECT_TRUE(login_a.Login("ntcp.uiuc").ok());

  net::RpcClient rpc_b(&network_, "client.b");
  AuthClient login_b(&rpc_b, unmapped, &clock_, util::Rng(6));
  EXPECT_EQ(login_b.Login("ntcp.uiuc").code(), ErrorCode::kPermissionDenied);
}

TEST_F(AuthFlowTest, AclEnforcedPerMethod) {
  auth_->acl().Allow("/O=NEES/CN=operator", "ntcp.");
  const Credential observer = ca_.IssueIdentity("/O=NEES/CN=observer", 0, rng_);
  net::RpcClient rpc(&network_, "client");
  AuthClient login(&rpc, observer, &clock_, util::Rng(5));
  ASSERT_TRUE(login.Login("ntcp.uiuc").ok());
  auto result = rpc.Call("ntcp.uiuc", "ntcp.getState", {});
  EXPECT_EQ(result.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(AuthFlowTest, ExpiredSessionTokenRejected) {
  const Credential user = ca_.IssueIdentity("/O=NEES/CN=coordinator", 0, rng_);
  net::RpcClient rpc(&network_, "client");
  AuthClient login(&rpc, user, &clock_, util::Rng(5));
  ASSERT_TRUE(login.Login("ntcp.uiuc").ok());
  clock_.Advance(2 * 3'600'000'000LL);  // 2 hours: token lifetime is 1 hour
  auto result = rpc.Call("ntcp.uiuc", "ntcp.getState", {});
  EXPECT_EQ(result.status().code(), ErrorCode::kUnauthenticated);
}

// --- CAS -------------------------------------------------------------------------

class CasTest : public ::testing::Test {
 protected:
  CasTest()
      : rng_(7),
        ca_("/O=NEES/CN=CA", clock_, rng_),
        cas_(ca_.IssueIdentity("/O=NEES/CN=cas", 0, rng_), &clock_,
             util::Rng(9)) {}

  util::SimClock clock_{1'000'000};
  util::Rng rng_;
  CertificateAuthority ca_;
  CommunityAuthorizationService cas_;
};

TEST_F(CasTest, GrantedSubjectGetsVerifiableCapability) {
  cas_.Grant("/O=NEES/CN=ingest", "repo.files", "write");
  auto capability = cas_.Issue("/O=NEES/CN=ingest", "repo.files", "write");
  ASSERT_TRUE(capability.ok());
  EXPECT_TRUE(
      VerifyCapability(*capability, cas_.public_key(), clock_.NowMicros())
          .ok());
}

TEST_F(CasTest, UngrantedSubjectDenied) {
  auto capability = cas_.Issue("/O=NEES/CN=visitor", "repo.files", "write");
  EXPECT_EQ(capability.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(CasTest, WildcardGrant) {
  cas_.Grant("*", "repo.metadata", "read");
  EXPECT_TRUE(cas_.Issue("/O=NEES/CN=anyone", "repo.metadata", "read").ok());
}

TEST_F(CasTest, RevokedGrantDenied) {
  cas_.Grant("/O=NEES/CN=x", "r", "a");
  cas_.Revoke("/O=NEES/CN=x", "r", "a");
  EXPECT_FALSE(cas_.Issue("/O=NEES/CN=x", "r", "a").ok());
}

TEST_F(CasTest, ExpiredCapabilityRejected) {
  cas_.Grant("/O=NEES/CN=x", "r", "a");
  auto capability = cas_.Issue("/O=NEES/CN=x", "r", "a");
  ASSERT_TRUE(capability.ok());
  clock_.Advance(2 * 3'600'000'000LL);
  EXPECT_FALSE(
      VerifyCapability(*capability, cas_.public_key(), clock_.NowMicros())
          .ok());
}

TEST_F(CasTest, TamperedCapabilityRejected) {
  cas_.Grant("/O=NEES/CN=x", "r", "read");
  auto capability = cas_.Issue("/O=NEES/CN=x", "r", "read");
  ASSERT_TRUE(capability.ok());
  Capability tampered = *capability;
  tampered.action = "write";  // escalation attempt
  EXPECT_FALSE(
      VerifyCapability(tampered, cas_.public_key(), clock_.NowMicros()).ok());
}

TEST_F(CasTest, TokenRoundTrip) {
  cas_.Grant("/O=NEES/CN=x", "r", "a");
  auto capability = cas_.Issue("/O=NEES/CN=x", "r", "a");
  ASSERT_TRUE(capability.ok());
  const std::string token = CapabilityToToken(*capability);
  auto decoded = CapabilityFromToken(token);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(
      VerifyCapability(*decoded, cas_.public_key(), clock_.NowMicros()).ok());
  EXPECT_FALSE(CapabilityFromToken("zznothex").ok());
  EXPECT_FALSE(CapabilityFromToken("abc").ok());
}

}  // namespace
}  // namespace nees::security
