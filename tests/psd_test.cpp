// Tests for the MS-PSDS coordinator: correctness of the distributed
// integration against local references, the propose-all-before-execute
// discipline, naive vs fault-tolerant behaviour under injected faults, and
// checkpoint/restart.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "net/network.h"
#include "ntcp/server.h"
#include "plugins/policy_plugin.h"
#include "plugins/simulation_plugin.h"
#include "psd/coordinator.h"
#include "wal/wal.h"
#include "structural/integrator.h"
#include "util/clock.h"
#include "util/logging.h"

namespace nees::psd {
namespace {

using util::ErrorCode;

// Three elastic substructures splitting a 1-DOF story: k = k1 + k2 + k3.
constexpr double kMass = 5.0e4;
constexpr double kLeft = 4.4e5, kMiddle = 1.78e6, kRight = 1.78e6;
constexpr double kTotal = kLeft + kMiddle + kRight;

class CoordinatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_.SetClock(&clock_);
    StartSite("ntcp.a", "cp", kLeft);
    StartSite("ntcp.b", "cp", kMiddle);
    StartSite("ntcp.c", "cp", kRight);
    rpc_ = std::make_unique<net::RpcClient>(&network_, "coordinator");
  }

  void StartSite(const std::string& endpoint, const std::string& cp,
                 double stiffness) {
    auto plugin = std::make_unique<plugins::SimulationPlugin>();
    structural::Matrix k(1, 1);
    k(0, 0) = stiffness;
    plugin->AddControlPoint(
        cp, std::make_unique<structural::ElasticSubstructure>(k));
    auto server = std::make_unique<ntcp::NtcpServer>(&network_, endpoint,
                                                     std::move(plugin),
                                                     &clock_);
    ASSERT_TRUE(server->Start().ok());
    servers_.push_back(std::move(server));
  }

  CoordinatorConfig MakeConfig(std::size_t steps,
                               FaultPolicy policy = FaultPolicy::kFaultTolerant) {
    CoordinatorConfig config;
    config.run_id = "test";
    config.mass = structural::Matrix::Identity(1) * kMass;
    const double omega = std::sqrt(kTotal / kMass);
    config.damping =
        structural::Matrix::Identity(1) * (2.0 * 0.02 * omega * kMass);
    config.iota = {1.0};
    config.motion = structural::SinePulse(0.02, steps, 3.0, 1.0);
    config.sites = {{"A", "ntcp.a", "cp", {0}},
                    {"B", "ntcp.b", "cp", {0}},
                    {"C", "ntcp.c", "cp", {0}}};
    config.fault_policy = policy;
    config.retry.initial_backoff_micros = 1000;  // fast virtual backoff
    return config;
  }

  util::SimClock clock_{1'000'000};
  net::Network network_;
  std::vector<std::unique_ptr<ntcp::NtcpServer>> servers_;
  std::unique_ptr<net::RpcClient> rpc_;
};

TEST_F(CoordinatorTest, DistributedRunMatchesLocalCentralDifference) {
  SimulationCoordinator coordinator(MakeConfig(300), rpc_.get(), &clock_);
  const RunReport report = coordinator.Run();
  ASSERT_TRUE(report.completed) << report.failure.ToString();
  EXPECT_EQ(report.steps_completed, 299u);

  // Local reference: the same integration with the summed stiffness.
  const auto config = MakeConfig(300);
  structural::Matrix k = structural::Matrix::Identity(1) * kTotal;
  structural::ElasticSubstructure elastic(k);
  structural::CentralDifferencePsd psd(config.mass, config.damping, {1.0});
  auto reference = psd.Integrate(
      config.motion,
      [&](std::size_t, const structural::Vector& d) {
        return elastic.Restore(d);
      });
  ASSERT_TRUE(reference.ok());

  ASSERT_EQ(report.history.displacement.size(),
            reference->displacement.size());
  double max_diff = 0;
  for (std::size_t i = 0; i < reference->displacement.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(report.history.displacement[i][0] -
                                  reference->displacement[i][0]));
  }
  EXPECT_LT(max_diff, 1e-12 + 1e-9 * reference->PeakDisplacement(0));
}

TEST_F(CoordinatorTest, EveryStepProposesToAllSitesBeforeExecuting) {
  SimulationCoordinator coordinator(MakeConfig(50), rpc_.get(), &clock_);
  const RunReport report = coordinator.Run();
  ASSERT_TRUE(report.completed);
  for (const auto& server : servers_) {
    const auto stats = server->stats();
    EXPECT_EQ(stats.proposals, 49u);
    EXPECT_EQ(stats.executions, 49u);
    EXPECT_EQ(stats.rejected, 0u);
  }
  for (const SiteStats& site : report.site_stats) {
    EXPECT_EQ(site.proposals, 49u);
    EXPECT_EQ(site.executes, 49u);
  }
}

TEST_F(CoordinatorTest, ObserverSeesEveryStep) {
  SimulationCoordinator coordinator(MakeConfig(40), rpc_.get(), &clock_);
  std::vector<std::size_t> steps;
  coordinator.SetStepObserver(
      [&](std::size_t step, const structural::Vector&,
          const std::vector<ntcp::TransactionResult>& results) {
        steps.push_back(step);
        EXPECT_EQ(results.size(), 3u);
      });
  ASSERT_TRUE(coordinator.Run().completed);
  ASSERT_EQ(steps.size(), 39u);
  EXPECT_EQ(steps.front(), 0u);
  EXPECT_EQ(steps.back(), 38u);
}

TEST_F(CoordinatorTest, NaiveCoordinatorDiesOnSingleLostMessage) {
  // The §3.4 public-run failure mode: one lost message at step 30 kills
  // a coordinator that does not retry.
  SimulationCoordinator coordinator(MakeConfig(100, FaultPolicy::kNaive),
                                    rpc_.get(), &clock_);
  coordinator.SetStepObserver(
      [&](std::size_t step, const structural::Vector&,
          const std::vector<ntcp::TransactionResult>&) {
        if (step == 29) network_.DropNext("coordinator", "ntcp.b", 1);
      });
  const RunReport report = coordinator.Run();
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.steps_completed, 30u);
  EXPECT_EQ(report.failure.code(), ErrorCode::kTimeout);
}

TEST_F(CoordinatorTest, FaultTolerantCoordinatorRidesOutBursts) {
  SimulationCoordinator coordinator(MakeConfig(100), rpc_.get(), &clock_);
  coordinator.SetStepObserver(
      [&](std::size_t step, const structural::Vector&,
          const std::vector<ntcp::TransactionResult>&) {
        if (step == 20 || step == 60) {
          network_.DropNext("coordinator", "ntcp.a", 2);
          network_.DropNext("ntcp.c", "coordinator", 1);
        }
      });
  const RunReport report = coordinator.Run();
  ASSERT_TRUE(report.completed) << report.failure.ToString();
  EXPECT_GE(report.transient_faults_recovered, 2u);
  // At-most-once held: each server executed exactly once per step.
  for (const auto& server : servers_) {
    EXPECT_EQ(server->stats().executions, 99u);
  }
}

TEST_F(CoordinatorTest, LostExecuteReplyDoesNotDoubleApplyForces) {
  SimulationCoordinator coordinator(MakeConfig(60), rpc_.get(), &clock_);
  coordinator.SetStepObserver(
      [&](std::size_t step, const structural::Vector&,
          const std::vector<ntcp::TransactionResult>&) {
        if (step == 10) network_.DropNext("ntcp.b", "coordinator", 1);
      });
  const RunReport report = coordinator.Run();
  ASSERT_TRUE(report.completed);
  // At-most-once: exactly one real execution per step despite the re-sent
  // request (the lost reply hits either the propose or execute response;
  // both are deduplicated server-side).
  EXPECT_EQ(servers_[1]->stats().executions, 59u);
  const auto stats = servers_[1]->stats();
  EXPECT_GE(stats.duplicate_proposals + stats.duplicate_executes, 1u);
}

TEST_F(CoordinatorTest, PolicyRejectionIsNotRetried) {
  // A site whose limit is below the commanded displacement rejects at
  // propose time; the coordinator must stop (configuration error), not
  // hammer the site with retries.
  auto config = MakeConfig(100);
  config.motion = structural::Harmonic(0.02, 100, 50.0, 0.5);  // huge drive
  SimulationCoordinator coordinator(config, rpc_.get(), &clock_);

  // Replace site B's plugin behaviour by restarting it with a policy.
  servers_[1]->Stop();
  auto inner = std::make_unique<plugins::SimulationPlugin>();
  structural::Matrix k(1, 1);
  k(0, 0) = kMiddle;
  inner->AddControlPoint(
      "cp", std::make_unique<structural::ElasticSubstructure>(k));
  plugins::SitePolicy policy;
  policy.max_abs_displacement_m = 0.001;
  auto limited = std::make_unique<ntcp::NtcpServer>(
      &network_, "ntcp.b2",
      std::make_unique<plugins::LimitPolicyPlugin>(policy, std::move(inner)),
      &clock_);
  ASSERT_TRUE(limited->Start().ok());

  auto config2 = MakeConfig(100);
  config2.motion = structural::Harmonic(0.02, 100, 50.0, 0.5);
  config2.sites[1].ntcp_endpoint = "ntcp.b2";
  SimulationCoordinator coordinator2(config2, rpc_.get(), &clock_);
  const RunReport report = coordinator2.Run();
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.failure.code(), ErrorCode::kPolicyViolation);
  // The rejection happened at propose time: no site executed that step.
  EXPECT_EQ(limited->stats().executions, report.steps_completed);
}

TEST_F(CoordinatorTest, RejectionCancelsAcceptedSiblingsBeforeAnyMotion) {
  // Site C (third in the list) rejects the step; the already-accepted
  // transactions at A and B must be cancelled (§2.1) and nothing executed.
  auto config = MakeConfig(10);
  config.max_step_attempts = 1;
  SimulationCoordinator coordinator(config, rpc_.get(), &clock_);

  // Replace site C with a tightly-limited one.
  servers_[2]->Stop();
  auto inner = std::make_unique<plugins::SimulationPlugin>();
  structural::Matrix k(1, 1);
  k(0, 0) = kRight;
  inner->AddControlPoint(
      "cp", std::make_unique<structural::ElasticSubstructure>(k));
  plugins::SitePolicy policy;
  policy.max_abs_displacement_m = 1e-9;  // rejects everything non-zero
  auto limited = std::make_unique<ntcp::NtcpServer>(
      &network_, "ntcp.c2",
      std::make_unique<plugins::LimitPolicyPlugin>(policy, std::move(inner)),
      &clock_);
  ASSERT_TRUE(limited->Start().ok());
  config.sites[2].ntcp_endpoint = "ntcp.c2";
  SimulationCoordinator coordinator2(config, rpc_.get(), &clock_);

  const RunReport report = coordinator2.Run();
  EXPECT_FALSE(report.completed);
  // Step 0 commands zero displacement (accepted everywhere); step 1 is the
  // first non-zero command and is rejected at C.
  for (int site : {0, 1}) {
    const auto ids = servers_[site]->ListTransactions();
    bool saw_cancelled = false;
    for (const std::string& id : ids) {
      const auto record = servers_[site]->GetTransaction(id);
      ASSERT_TRUE(record.ok());
      if (record->state == ntcp::TransactionState::kCancelled) {
        saw_cancelled = true;
      }
      EXPECT_NE(record->state, ntcp::TransactionState::kExecuting);
    }
    EXPECT_TRUE(saw_cancelled) << "site " << site;
  }
}

// Forwarding plugin that runs a hook before each execution — used to inject
// faults at an exact point inside a step's execute phase.
class ExecuteHookPlugin : public ntcp::ControlPlugin {
 public:
  ExecuteHookPlugin(std::unique_ptr<ntcp::ControlPlugin> inner,
                    std::function<void(const ntcp::Proposal&)> hook)
      : inner_(std::move(inner)), hook_(std::move(hook)) {}

  util::Status Validate(const ntcp::Proposal& proposal) override {
    return inner_->Validate(proposal);
  }
  util::Result<ntcp::TransactionResult> Execute(
      const ntcp::Proposal& proposal) override {
    hook_(proposal);
    return inner_->Execute(proposal);
  }
  std::string_view kind() const override { return inner_->kind(); }

 private:
  std::unique_ptr<ntcp::ControlPlugin> inner_;
  std::function<void(const ntcp::Proposal&)> hook_;
};

TEST_F(CoordinatorTest, FailedExecutePhaseCancelsNotYetExecutedSites) {
  // Step 1's execute request to site C is lost (injected from site A's
  // execute, which the engine resolves first). The attempt fails after A
  // and B executed; the re-proposal runs under fresh transaction ids — so
  // C's accepted-but-never-executed transaction must be cancelled, not
  // left in the server's table until expiry.
  auto config = MakeConfig(4);
  config.retry.max_attempts = 1;  // the lost execute fails the attempt

  servers_[0]->Stop();
  auto inner = std::make_unique<plugins::SimulationPlugin>();
  structural::Matrix k(1, 1);
  k(0, 0) = kLeft;
  inner->AddControlPoint(
      "cp", std::make_unique<structural::ElasticSubstructure>(k));
  bool injected = false;
  auto hooked = std::make_unique<ntcp::NtcpServer>(
      &network_, "ntcp.a2",
      std::make_unique<ExecuteHookPlugin>(
          std::move(inner),
          [&](const ntcp::Proposal& proposal) {
            if (proposal.step_index == 1 && !injected) {
              injected = true;
              network_.DropNext("coordinator", "ntcp.c", 1);
            }
          }),
      &clock_);
  ASSERT_TRUE(hooked->Start().ok());
  config.sites[0].ntcp_endpoint = "ntcp.a2";

  SimulationCoordinator coordinator(config, rpc_.get(), &clock_);
  const RunReport report = coordinator.Run();
  ASSERT_TRUE(report.completed) << report.failure.ToString();
  EXPECT_TRUE(injected);

  // Site C: the abandoned attempt's transaction is cancelled, and nothing
  // is left half-open.
  bool saw_cancelled = false;
  for (const std::string& id : servers_[2]->ListTransactions()) {
    const auto record = servers_[2]->GetTransaction(id);
    ASSERT_TRUE(record.ok());
    EXPECT_NE(record->state, ntcp::TransactionState::kAccepted) << id;
    saw_cancelled |= record->state == ntcp::TransactionState::kCancelled;
  }
  EXPECT_TRUE(saw_cancelled);
}

TEST_F(CoordinatorTest, CheckpointRestartMatchesUninterruptedRun) {
  // Reference: uninterrupted run.
  SimulationCoordinator full(MakeConfig(80), rpc_.get(), &clock_);
  const RunReport full_report = full.Run();
  ASSERT_TRUE(full_report.completed);

  // Interrupted run: execute 30 steps, checkpoint, "crash", restore into a
  // fresh coordinator (fresh transaction namespace), finish.
  auto config_a = MakeConfig(80);
  config_a.run_id = "part1";
  SimulationCoordinator part1(config_a, rpc_.get(), &clock_);
  for (int i = 0; i < 30; ++i) {
    auto advanced = part1.ExecuteStep();
    ASSERT_TRUE(advanced.ok());
    ASSERT_TRUE(*advanced);
  }
  const Checkpoint checkpoint = part1.GetCheckpoint();
  EXPECT_EQ(checkpoint.step, 30u);

  auto config_b = MakeConfig(80);
  config_b.run_id = "part2";
  SimulationCoordinator part2(config_b, rpc_.get(), &clock_);
  ASSERT_TRUE(part2.Restore(checkpoint).ok());
  const RunReport resumed = part2.Run();
  ASSERT_TRUE(resumed.completed);

  ASSERT_EQ(resumed.history.displacement.size(),
            full_report.history.displacement.size());
  for (std::size_t i = 0; i < resumed.history.displacement.size(); ++i) {
    EXPECT_NEAR(resumed.history.displacement[i][0],
                full_report.history.displacement[i][0], 1e-12);
  }
}

TEST_F(CoordinatorTest, WalResumeMatchesUninterruptedRun) {
  // Reference: uninterrupted run under its own transaction namespace.
  SimulationCoordinator full(MakeConfig(80), rpc_.get(), &clock_);
  const RunReport full_report = full.Run();
  ASSERT_TRUE(full_report.completed);

  // WAL run: 30 steps, then the coordinator process "dies" (only the log
  // survives) and a fresh coordinator resumes from the step boundaries.
  wal::MemoryStorage storage;
  auto config = MakeConfig(80);
  config.run_id = "walrun";
  SimulationCoordinator part1(config, rpc_.get(), &clock_);
  wal::Log log1(&storage);
  auto fresh = part1.AttachWal(&log1);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->steps_recovered, 0u);
  for (int i = 0; i < 30; ++i) {
    auto advanced = part1.ExecuteStep();
    ASSERT_TRUE(advanced.ok());
    ASSERT_TRUE(*advanced);
  }

  SimulationCoordinator part2(config, rpc_.get(), &clock_);
  wal::Log log2(&storage);
  auto recovered = part2.AttachWal(&log2);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->steps_recovered, 30u);
  EXPECT_FALSE(recovered->mid_step);
  const RunReport resumed = part2.Run();
  ASSERT_TRUE(resumed.completed) << resumed.failure.ToString();
  EXPECT_GT(resumed.wal_records, 0u);
  EXPECT_EQ(resumed.wal_sync_failures, 0u);

  ASSERT_EQ(resumed.history.displacement.size(),
            full_report.history.displacement.size());
  for (std::size_t i = 0; i < resumed.history.displacement.size(); ++i) {
    EXPECT_NEAR(resumed.history.displacement[i][0],
                full_report.history.displacement[i][0], 1e-12);
  }
}

TEST_F(CoordinatorTest, WalMidStepRedriveIsIdempotent) {
  wal::MemoryStorage storage;
  auto config = MakeConfig(40);
  config.run_id = "midstep";
  SimulationCoordinator part1(config, rpc_.get(), &clock_);
  wal::Log log1(&storage);
  ASSERT_TRUE(part1.AttachWal(&log1).ok());
  for (int i = 0; i < 11; ++i) {
    auto advanced = part1.ExecuteStep();
    ASSERT_TRUE(advanced.ok());
    ASSERT_TRUE(*advanced);
  }
  // Chop the final step-boundary record: the crash hit after the sites
  // executed step 10 but before its boundary reached the log. The per-site
  // outcome records for step 10 now sit past the last boundary.
  auto bytes = storage.Load();
  ASSERT_TRUE(bytes.ok());
  std::size_t offset = 0, last = 0;
  while (offset + 8 <= bytes->size()) {
    const std::uint32_t length =
        static_cast<std::uint32_t>((*bytes)[offset]) |
        static_cast<std::uint32_t>((*bytes)[offset + 1]) << 8 |
        static_cast<std::uint32_t>((*bytes)[offset + 2]) << 16 |
        static_cast<std::uint32_t>((*bytes)[offset + 3]) << 24;
    if (offset + 8 + length > bytes->size()) break;
    last = offset;
    offset += 8 + length;
  }
  storage.ForceTruncate(last);

  const std::uint64_t dups_before = servers_[0]->stats().duplicate_executes;
  SimulationCoordinator part2(config, rpc_.get(), &clock_);
  wal::Log log2(&storage);
  auto recovered = part2.AttachWal(&log2);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->steps_recovered, 10u);
  EXPECT_TRUE(recovered->mid_step);

  // Re-driving the interrupted step reuses the same deterministic
  // transaction ids, so the sites answer from the at-most-once cache
  // instead of moving the specimen twice.
  const RunReport resumed = part2.Run();
  ASSERT_TRUE(resumed.completed) << resumed.failure.ToString();
  EXPECT_GT(servers_[0]->stats().duplicate_executes, dups_before);
  for (const auto& server : servers_) {
    EXPECT_EQ(server->stats().executions, 39u);  // exactly once per step
  }
}

TEST_F(CoordinatorTest, WalFromDifferentRunRejected) {
  wal::MemoryStorage storage;
  auto config = MakeConfig(20);
  config.run_id = "run-a";
  SimulationCoordinator original(config, rpc_.get(), &clock_);
  wal::Log log1(&storage);
  ASSERT_TRUE(original.AttachWal(&log1).ok());

  auto other = MakeConfig(20);
  other.run_id = "run-b";
  SimulationCoordinator impostor(other, rpc_.get(), &clock_);
  wal::Log log2(&storage);
  auto recovered = impostor.AttachWal(&log2);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(CoordinatorTest, DimensionMismatchCaughtAtInit) {
  auto config = MakeConfig(10);
  config.iota = {1.0, 0.0};  // 2 entries vs 1-DOF mass
  SimulationCoordinator coordinator(config, rpc_.get(), &clock_);
  const RunReport report = coordinator.Run();
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.failure.code(), ErrorCode::kInvalidArgument);
}

TEST_F(CoordinatorTest, SiteDofOutOfRangeCaught) {
  auto config = MakeConfig(10);
  config.sites[0].dofs = {5};
  SimulationCoordinator coordinator(config, rpc_.get(), &clock_);
  EXPECT_EQ(coordinator.Run().failure.code(), ErrorCode::kInvalidArgument);
}

TEST_F(CoordinatorTest, SurvivesBriefNetworkPartition) {
  // A symmetric partition between the coordinator and two sites that heals
  // within the retry budget: the run completes and at-most-once holds.
  auto config = MakeConfig(80);
  config.retry.max_attempts = 6;
  SimulationCoordinator coordinator(config, rpc_.get(), &clock_);

  // Partition before the run starts; "operations" heal it as soon as the
  // coordinator's first retry warning hits the log (i.e. after one failed
  // attempt — within the retry budget).
  network_.Partition({"coordinator"}, {"ntcp.a", "ntcp.b"});
  const int sink_id = util::Logger::Instance().AddSink(
      [&](const util::LogRecord& record) {
        if (record.message.find("retrying") != std::string::npos) {
          network_.HealPartition();
        }
      });
  const RunReport report = coordinator.Run();
  util::Logger::Instance().RemoveSink(sink_id);
  ASSERT_TRUE(report.completed) << report.failure.ToString();
  for (const auto& server : servers_) {
    EXPECT_EQ(server->stats().executions, 79u);
  }
}

TEST_F(CoordinatorTest, OperatorSplittingMatchesLocalReference) {
  auto config = MakeConfig(200);
  config.integrator = PsdIntegrator::kOperatorSplitting;
  config.initial_stiffness = structural::Matrix::Identity(1) * kTotal;
  SimulationCoordinator coordinator(config, rpc_.get(), &clock_);
  const RunReport report = coordinator.Run();
  ASSERT_TRUE(report.completed) << report.failure.ToString();

  structural::Matrix k = structural::Matrix::Identity(1) * kTotal;
  structural::ElasticSubstructure elastic(k);
  structural::OperatorSplittingPsd os(config.mass, config.damping, k,
                                      {1.0});
  auto reference = os.Integrate(
      config.motion,
      [&](std::size_t, const structural::Vector& d) {
        return elastic.Restore(d);
      });
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(report.history.displacement.size(),
            reference->displacement.size());
  for (std::size_t i = 0; i < reference->displacement.size(); ++i) {
    EXPECT_NEAR(report.history.displacement[i][0],
                reference->displacement[i][0], 1e-12);
  }
}

TEST_F(CoordinatorTest, OperatorSplittingSurvivesCoarseTimeStep) {
  // dt well above the central-difference limit for this system: the CD
  // coordinator diverges numerically; the OS coordinator stays physical.
  auto make = [&](PsdIntegrator integrator) {
    auto config = MakeConfig(200);
    config.motion = structural::Harmonic(0.3, 200, 1.0, 0.3);  // dt > 2/omega
    config.integrator = integrator;
    config.initial_stiffness = structural::Matrix::Identity(1) * kTotal;
    config.run_id = integrator == PsdIntegrator::kCentralDifference
                        ? "coarse-cd"
                        : "coarse-os";
    return config;
  };
  SimulationCoordinator cd(make(PsdIntegrator::kCentralDifference),
                           rpc_.get(), &clock_);
  const RunReport cd_report = cd.Run();
  SimulationCoordinator os(make(PsdIntegrator::kOperatorSplitting),
                           rpc_.get(), &clock_);
  const RunReport os_report = os.Run();
  ASSERT_TRUE(os_report.completed) << os_report.failure.ToString();
  EXPECT_GT(cd_report.history.PeakDisplacement(0), 1e3);  // diverged
  EXPECT_LT(os_report.history.PeakDisplacement(0), 0.5);  // bounded
}

TEST_F(CoordinatorTest, OperatorSplittingRequiresInitialStiffness) {
  auto config = MakeConfig(10);
  config.integrator = PsdIntegrator::kOperatorSplitting;
  // initial_stiffness left empty.
  SimulationCoordinator coordinator(config, rpc_.get(), &clock_);
  EXPECT_EQ(coordinator.Run().failure.code(), ErrorCode::kInvalidArgument);
}

TEST_F(CoordinatorTest, OperatorSplittingCheckpointRestart) {
  auto config = MakeConfig(80);
  config.integrator = PsdIntegrator::kOperatorSplitting;
  config.initial_stiffness = structural::Matrix::Identity(1) * kTotal;
  SimulationCoordinator full(config, rpc_.get(), &clock_);
  const RunReport reference = full.Run();
  ASSERT_TRUE(reference.completed);

  auto config_a = config;
  config_a.run_id = "os-part1";
  SimulationCoordinator part1(config_a, rpc_.get(), &clock_);
  for (int i = 0; i < 25; ++i) {
    auto advanced = part1.ExecuteStep();
    ASSERT_TRUE(advanced.ok());
  }
  auto config_b = config;
  config_b.run_id = "os-part2";
  SimulationCoordinator part2(config_b, rpc_.get(), &clock_);
  ASSERT_TRUE(part2.Restore(part1.GetCheckpoint()).ok());
  const RunReport resumed = part2.Run();
  ASSERT_TRUE(resumed.completed);
  for (std::size_t i = 0; i < resumed.history.displacement.size(); ++i) {
    EXPECT_NEAR(resumed.history.displacement[i][0],
                reference.history.displacement[i][0], 1e-12);
  }
}

TEST_F(CoordinatorTest, ParallelSitesProducesIdenticalResponse) {
  auto sequential_config = MakeConfig(120);
  sequential_config.step_engine = StepEngine::kSequential;
  SimulationCoordinator sequential(sequential_config, rpc_.get(), &clock_);
  const RunReport reference = sequential.Run();
  ASSERT_TRUE(reference.completed);
  EXPECT_EQ(reference.threads_spawned, 0u);

  auto config = MakeConfig(120);
  config.run_id = "parallel";
  config.step_engine = StepEngine::kThreadPerSite;
  net::RpcClient parallel_rpc(&network_, "parallel.coordinator");
  SimulationCoordinator parallel(config, &parallel_rpc, &clock_);
  const RunReport report = parallel.Run();
  ASSERT_TRUE(report.completed) << report.failure.ToString();
  EXPECT_GT(report.threads_spawned, 0u);

  ASSERT_EQ(report.history.displacement.size(),
            reference.history.displacement.size());
  for (std::size_t i = 0; i < reference.history.displacement.size(); ++i) {
    EXPECT_DOUBLE_EQ(report.history.displacement[i][0],
                     reference.history.displacement[i][0]);
  }
}

TEST_F(CoordinatorTest, AsyncEngineProducesIdenticalResponse) {
  // In kImmediate delivery the completion-driven engine resolves each call
  // inline in issue order, so histories are bit-identical to sequential.
  auto sequential_config = MakeConfig(120);
  sequential_config.step_engine = StepEngine::kSequential;
  SimulationCoordinator sequential(sequential_config, rpc_.get(), &clock_);
  const RunReport reference = sequential.Run();
  ASSERT_TRUE(reference.completed);

  auto config = MakeConfig(120);
  config.run_id = "async";
  config.step_engine = StepEngine::kAsync;
  net::RpcClient async_rpc(&network_, "async.coordinator");
  SimulationCoordinator async_coord(config, &async_rpc, &clock_);
  const RunReport report = async_coord.Run();
  ASSERT_TRUE(report.completed) << report.failure.ToString();

  // Zero per-step thread creation is the engine's core claim.
  EXPECT_EQ(report.threads_spawned, 0u);
  ASSERT_EQ(report.history.displacement.size(),
            reference.history.displacement.size());
  for (std::size_t i = 0; i < reference.history.displacement.size(); ++i) {
    EXPECT_EQ(report.history.displacement[i][0],
              reference.history.displacement[i][0]);
  }
  EXPECT_GT(report.propose_phase_micros.count(), 0u);
  EXPECT_GT(report.execute_phase_micros.count(), 0u);
}

TEST_F(CoordinatorTest, ParallelSitesOverlapWanRoundTrips) {
  // Over the real-latency network, three sites in parallel should cost
  // roughly one site's round trips per step, not three.
  net::Network network(net::DeliveryMode::kScheduled);
  net::LinkModel wan;
  wan.latency_micros = 2000;  // 2 ms one way
  network.SetDefaultLink(wan);
  std::vector<std::unique_ptr<ntcp::NtcpServer>> servers;
  for (const std::string endpoint : {"ntcp.p1", "ntcp.p2", "ntcp.p3"}) {
    auto plugin = std::make_unique<plugins::SimulationPlugin>();
    structural::Matrix k(1, 1);
    k(0, 0) = kLeft;
    plugin->AddControlPoint(
        "cp", std::make_unique<structural::ElasticSubstructure>(k));
    auto server = std::make_unique<ntcp::NtcpServer>(&network, endpoint,
                                                     std::move(plugin));
    ASSERT_TRUE(server->Start().ok());
    servers.push_back(std::move(server));
  }

  auto run = [&](StepEngine engine, const std::string& name) {
    CoordinatorConfig config = MakeConfig(15);
    config.run_id = name;
    config.step_engine = engine;
    config.sites = {{"P1", "ntcp.p1", "cp", {0}},
                    {"P2", "ntcp.p2", "cp", {0}},
                    {"P3", "ntcp.p3", "cp", {0}}};
    net::RpcClient rpc(&network, name + ".coordinator");
    SimulationCoordinator coordinator(config, &rpc);
    const RunReport report = coordinator.Run();
    EXPECT_TRUE(report.completed) << report.failure.ToString();
    if (engine != StepEngine::kThreadPerSite) {
      EXPECT_EQ(report.threads_spawned, 0u);
    }
    return report.wall_seconds;
  };
  const double sequential_s = run(StepEngine::kSequential, "seq");
  const double parallel_s = run(StepEngine::kThreadPerSite, "par");
  const double async_s = run(StepEngine::kAsync, "asy");
  // Ideal ratio is 3x; accept anything clearly better than 1.5x.
  EXPECT_LT(parallel_s, sequential_s / 1.5)
      << "sequential " << sequential_s << "s vs parallel " << parallel_s;
  // The completion-driven engine overlaps the same round trips without
  // spawning threads.
  EXPECT_LT(async_s, sequential_s / 1.5)
      << "sequential " << sequential_s << "s vs async " << async_s;
}

TEST_F(CoordinatorTest, MultiDofSystemDistributesByDofIndex) {
  // 2-DOF system: sites A and C carry DOF 0, site B carries DOF 1.
  auto config = MakeConfig(100);
  config.mass = structural::Matrix::Identity(2) * kMass;
  config.damping = structural::Matrix(2, 2);
  config.iota = {1.0, 1.0};
  config.sites = {{"A", "ntcp.a", "cp", {0}},
                  {"B", "ntcp.b", "cp", {1}},
                  {"C", "ntcp.c", "cp", {0}}};
  SimulationCoordinator coordinator(config, rpc_.get(), &clock_);
  const RunReport report = coordinator.Run();
  ASSERT_TRUE(report.completed) << report.failure.ToString();

  // Reference: diag(kLeft + kRight, kMiddle) stiffness.
  structural::Matrix k(2, 2);
  k(0, 0) = kLeft + kRight;
  k(1, 1) = kMiddle;
  structural::ElasticSubstructure elastic(k);
  structural::CentralDifferencePsd psd(config.mass, config.damping,
                                       config.iota);
  auto reference = psd.Integrate(
      config.motion,
      [&](std::size_t, const structural::Vector& d) {
        return elastic.Restore(d);
      });
  ASSERT_TRUE(reference.ok());
  for (std::size_t i = 0; i < reference->displacement.size(); ++i) {
    EXPECT_NEAR(report.history.displacement[i][0],
                reference->displacement[i][0], 1e-9);
    EXPECT_NEAR(report.history.displacement[i][1],
                reference->displacement[i][1], 1e-9);
  }
}

}  // namespace
}  // namespace nees::psd
