// Property-based tests: randomized inputs against the invariants the
// system's correctness arguments rest on —
//   * NTCP: at-most-once execution and legal state evolution under
//     arbitrary client behaviour and message loss;
//   * the coordinator: a completed run implies exactly-once execution of
//     every step at every site, regardless of the fault pattern;
//   * GridFTP-sim: transfers round-trip bit-exactly across sizes, chunk
//     sizes, stream counts, and loss;
//   * primitives: serialization round trips, hash consistency, signature
//     soundness, hysteresis physicality.
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "net/network.h"
#include "ntcp/client.h"
#include "ntcp/server.h"
#include "plugins/simulation_plugin.h"
#include "psd/coordinator.h"
#include "repo/gridftp.h"
#include "security/cas.h"
#include "security/certificate.h"
#include "security/schnorr.h"
#include "structural/substructure.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/sha256.h"
#include "util/uuid.h"

namespace nees {
namespace {

using util::ErrorCode;

// --- NTCP fuzz ----------------------------------------------------------------

/// Counts real executions per transaction id.
class CountingPlugin final : public ntcp::ControlPlugin {
 public:
  util::Status Validate(const ntcp::Proposal& proposal) override {
    // Reject "invalid" control points to exercise the rejection path.
    for (const auto& action : proposal.actions) {
      if (action.control_point == "bad") {
        return util::PolicyViolation("bad control point");
      }
    }
    return util::OkStatus();
  }
  util::Result<ntcp::TransactionResult> Execute(
      const ntcp::Proposal& proposal) override {
    ++executions[proposal.transaction_id];
    ntcp::TransactionResult result;
    for (const auto& action : proposal.actions) {
      result.results.push_back(
          {action.control_point, action.target_displacement,
           structural::Vector(action.target_displacement.size(), 1.0)});
    }
    return result;
  }
  std::string_view kind() const override { return "counting"; }

  std::map<std::string, int> executions;
};

class NtcpFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(NtcpFuzzTest, RandomOperationsPreserveProtocolInvariants) {
  util::Rng rng(9000 + GetParam());
  util::SimClock clock(1'000'000);
  net::Network network(net::DeliveryMode::kImmediate, 77 + GetParam());
  network.SetClock(&clock);

  auto plugin = std::make_unique<CountingPlugin>();
  auto* counting = plugin.get();
  ntcp::NtcpServer server(&network, "ntcp.fuzz", std::move(plugin), &clock);
  ASSERT_TRUE(server.Start().ok());
  net::RpcClient rpc(&network, "fuzzer");
  ntcp::RetryPolicy policy;
  policy.initial_backoff_micros = 100;
  ntcp::NtcpClient client(&rpc, "ntcp.fuzz", policy, &clock);

  // A small id space so operations collide on purpose; remember the first
  // proposal sent under each id to check duplicate-proposal idempotency.
  std::map<std::string, ntcp::Proposal> first_proposal;
  std::map<std::string, bool> first_decision;

  for (int op = 0; op < 300; ++op) {
    // Random transient faults throughout.
    if (rng.Bernoulli(0.08)) {
      network.DropNext("fuzzer", "ntcp.fuzz", rng.UniformInt(1, 2));
    }
    if (rng.Bernoulli(0.08)) {
      network.DropNext("ntcp.fuzz", "fuzzer", 1);
    }

    const std::string id = "txn-" + std::to_string(rng.UniformInt(0, 15));
    switch (rng.UniformInt(0, 4)) {
      case 0: {  // propose (sometimes invalid, sometimes conflicting)
        ntcp::Proposal proposal;
        proposal.transaction_id = id;
        proposal.timeout_micros = 60'000'000;
        const bool invalid = rng.Bernoulli(0.15);
        proposal.actions.push_back(
            {invalid ? "bad" : "cp", {rng.UniformDouble(-0.05, 0.05)}, {}});
        const util::Status status = client.Propose(proposal);
        if (!first_proposal.contains(id)) {
          first_proposal[id] = proposal;
          first_decision[id] = status.ok();
        } else if (proposal == first_proposal[id] && !status.transient()) {
          // Identical re-proposal must get the original decision.
          EXPECT_EQ(status.ok(), first_decision[id]) << id;
        }
        break;
      }
      case 1:
        (void)client.Execute(id);
        break;
      case 2:
        (void)client.Cancel(id);
        break;
      case 3: {
        auto record = client.GetTransaction(id);
        if (record.ok()) {
          // Timestamps must be monotone along the observed path.
          std::int64_t last = 0;
          for (const auto& [state, micros] : record->state_timestamps) {
            (void)state;
            EXPECT_GE(micros, 0);
            last = std::max(last, micros);
          }
        }
        break;
      }
      case 4:
        clock.Advance(rng.UniformInt(0, 1000));
        server.ExpireStale();
        break;
    }
  }

  // THE invariant: no transaction ever executed twice, no matter what the
  // client and the network did.
  for (const auto& [id, count] : counting->executions) {
    EXPECT_LE(count, 1) << id;
  }
  // And every stored record is in a coherent state with a proposal.
  for (const std::string& id : server.ListTransactions()) {
    auto record = server.GetTransaction(id);
    ASSERT_TRUE(record.ok());
    EXPECT_FALSE(record->proposal.transaction_id.empty());
    if (record->state == ntcp::TransactionState::kCompleted) {
      EXPECT_EQ(counting->executions[id], 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NtcpFuzzTest, ::testing::Range(0, 12));

// --- coordinator under random loss ----------------------------------------------

class CoordinatorLossTest : public ::testing::TestWithParam<int> {};

TEST_P(CoordinatorLossTest, CompletedRunsExecuteEveryStepExactlyOnce) {
  util::SimClock clock(1'000'000);
  net::Network network(net::DeliveryMode::kImmediate, 31 + GetParam());
  network.SetClock(&clock);

  std::vector<std::unique_ptr<ntcp::NtcpServer>> servers;
  std::vector<CountingPlugin*> plugins;
  for (const std::string endpoint : {"ntcp.x", "ntcp.y"}) {
    auto plugin = std::make_unique<CountingPlugin>();
    plugins.push_back(plugin.get());
    auto server = std::make_unique<ntcp::NtcpServer>(&network, endpoint,
                                                     std::move(plugin),
                                                     &clock);
    ASSERT_TRUE(server->Start().ok());
    servers.push_back(std::move(server));
  }

  net::LinkModel lossy;
  lossy.drop_probability = 0.03;
  network.SetLink("coordinator", "ntcp.x", lossy);
  network.SetLink("ntcp.x", "coordinator", lossy);
  network.SetLink("coordinator", "ntcp.y", lossy);
  network.SetLink("ntcp.y", "coordinator", lossy);

  psd::CoordinatorConfig config;
  config.run_id = "loss" + std::to_string(GetParam());
  config.mass = structural::Matrix::Identity(1) * 1e4;
  config.damping = structural::Matrix::Identity(1) * 1e3;
  config.iota = {1.0};
  config.motion = structural::SinePulse(0.02, 80, 1.0, 1.0);
  config.sites = {{"X", "ntcp.x", "cp", {0}}, {"Y", "ntcp.y", "cp", {0}}};
  config.retry.initial_backoff_micros = 100;

  net::RpcClient rpc(&network, "coordinator");
  psd::SimulationCoordinator coordinator(config, &rpc, &clock);
  const psd::RunReport report = coordinator.Run();
  ASSERT_TRUE(report.completed) << report.failure.ToString();

  for (CountingPlugin* plugin : plugins) {
    int total = 0;
    for (const auto& [id, count] : plugin->executions) {
      EXPECT_EQ(count, 1) << id;
      total += count;
    }
    EXPECT_EQ(total, 79);  // exactly one execution per step
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoordinatorLossTest, ::testing::Range(0, 8));

// --- GridFTP round-trip sweep ------------------------------------------------------

struct TransferCase {
  std::size_t size;
  std::size_t chunk;
  int streams;
  double loss;
};

class GridFtpPropertyTest : public ::testing::TestWithParam<TransferCase> {};

TEST_P(GridFtpPropertyTest, RoundTripsBitExactly) {
  const TransferCase& params = GetParam();
  net::Network network(net::DeliveryMode::kImmediate, 5);
  repo::FileStore store;
  repo::GridFtpServer server(&network, "gftp", &store);
  ASSERT_TRUE(server.Start().ok());
  if (params.loss > 0) {
    net::LinkModel lossy;
    lossy.drop_probability = params.loss;
    network.SetLink("client", "gftp", lossy);
    network.SetLink("gftp", "client", lossy);
  }
  net::RpcClient rpc(&network, "client");
  repo::TransferOptions options;
  options.chunk_bytes = params.chunk;
  options.streams = params.streams;
  options.chunk_retries = 20;
  repo::GridFtpClient client(&rpc, options);

  util::Rng rng(params.size ^ params.chunk);
  repo::Bytes content(params.size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng.NextU64());

  ASSERT_TRUE(client.Upload("gftp", "f", content).ok());
  auto downloaded = client.Download("gftp", "f");
  ASSERT_TRUE(downloaded.ok());
  EXPECT_EQ(*downloaded, content);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridFtpPropertyTest,
    ::testing::Values(TransferCase{0, 1024, 1, 0.0},
                      TransferCase{1, 1024, 4, 0.0},
                      TransferCase{1023, 1024, 2, 0.0},
                      TransferCase{1024, 1024, 2, 0.0},
                      TransferCase{1025, 1024, 2, 0.0},
                      TransferCase{100'000, 333, 3, 0.0},
                      TransferCase{50'000, 4096, 8, 0.05},
                      TransferCase{200'000, 65536, 2, 0.02}));

// --- malformed-wire fuzz: servers must degrade, not die ---------------------------

class WireFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzzTest, GarbageRequestBodiesNeverCrashServers) {
  util::Rng rng(1300 + GetParam());
  net::Network network;

  // An NTCP server and a repository, both fully started.
  auto plugin = std::make_unique<CountingPlugin>();
  ntcp::NtcpServer ntcp_server(&network, "ntcp.fuzzwire", std::move(plugin));
  ASSERT_TRUE(ntcp_server.Start().ok());
  repo::FileStore store;
  repo::GridFtpServer gftp(&network, "gftp.fuzzwire", &store);
  ASSERT_TRUE(gftp.Start().ok());

  net::RpcClient rpc(&network, "wire.fuzzer");
  const std::vector<std::pair<std::string, std::string>> targets = {
      {"ntcp.fuzzwire", "ntcp.propose"},
      {"ntcp.fuzzwire", "ntcp.execute"},
      {"ntcp.fuzzwire", "ntcp.cancel"},
      {"ntcp.fuzzwire", "ntcp.getTransaction"},
      {"gftp.fuzzwire", "gftp.stat"},
      {"gftp.fuzzwire", "gftp.read"},
      {"gftp.fuzzwire", "gftp.openWrite"},
      {"gftp.fuzzwire", "gftp.writeChunk"},
      {"gftp.fuzzwire", "gftp.commit"},
  };
  for (int i = 0; i < 120; ++i) {
    const auto& [endpoint, method] = targets[rng.UniformU64(targets.size())];
    net::Bytes junk(rng.UniformInt(0, 64));
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.NextU64());
    auto result = rpc.Call(endpoint, method, junk);
    // Every call must complete with a *status*, never a crash; garbage is
    // overwhelmingly rejected, and the rare parse-as-valid case is fine.
    if (!result.ok()) {
      EXPECT_NE(result.status().code(), ErrorCode::kTimeout)
          << method << ": server dropped a malformed request silently";
    }
  }

  // The servers still function after the barrage.
  ntcp::NtcpClient client(&rpc, "ntcp.fuzzwire");
  ntcp::Proposal proposal;
  proposal.transaction_id = "post-fuzz";
  proposal.actions.push_back({"cp", {0.01}, {}});
  ASSERT_TRUE(client.Propose(proposal).ok());
  ASSERT_TRUE(client.Execute("post-fuzz").ok());
  store.Put("alive", {1});
  repo::GridFtpClient gclient(&rpc);
  EXPECT_TRUE(gclient.Download("gftp.fuzzwire", "alive").ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, ::testing::Range(0, 6));

// --- primitive properties -----------------------------------------------------------

class CertificateDecodeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CertificateDecodeFuzzTest, JunkBytesNeverCrashDecoders) {
  util::Rng rng(1400 + GetParam());
  std::vector<std::uint8_t> junk(rng.UniformInt(0, 300));
  for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.NextU64());
  {
    util::ByteReader reader(junk);
    (void)security::DecodeCertificate(reader);
  }
  {
    util::ByteReader reader(junk);
    (void)security::DecodeCapability(reader);
  }
  {
    util::ByteReader reader(junk);
    (void)ntcp::DecodeTransactionRecord(reader);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertificateDecodeFuzzTest,
                         ::testing::Range(0, 10));

class HashSplitTest : public ::testing::TestWithParam<int> {};

TEST_P(HashSplitTest, IncrementalHashIndependentOfChunking) {
  util::Rng rng(400 + GetParam());
  std::string data(static_cast<std::size_t>(rng.UniformInt(1, 5000)), '\0');
  for (char& c : data) c = static_cast<char>(rng.NextU64());
  const auto whole = util::Sha256::Hash(data);

  util::Sha256 hasher;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t take = std::min<std::size_t>(
        static_cast<std::size_t>(rng.UniformInt(1, 777)),
        data.size() - offset);
    hasher.Update(data.data() + offset, take);
    offset += take;
  }
  EXPECT_EQ(hasher.Finish(), whole);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashSplitTest, ::testing::Range(0, 10));

class SignatureSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(SignatureSoundnessTest, OnlyTheSignerVerifies) {
  util::Rng rng(500 + GetParam());
  const security::SigningKey alice = security::GenerateKey(rng);
  const security::SigningKey mallory = security::GenerateKey(rng);
  std::string message(static_cast<std::size_t>(rng.UniformInt(0, 200)), '\0');
  for (char& c : message) c = static_cast<char>(rng.NextU64());

  const security::Signature signature =
      security::Sign(alice, message, rng);
  EXPECT_TRUE(security::Verify(alice.public_key, message, signature));
  EXPECT_FALSE(security::Verify(mallory.public_key, message, signature));
  // A re-signed message verifies too (signatures are randomized).
  const security::Signature second = security::Sign(alice, message, rng);
  EXPECT_TRUE(security::Verify(alice.public_key, message, second));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignatureSoundnessTest,
                         ::testing::Range(0, 10));

class BoucWenPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BoucWenPropertyTest, ForceStaysInsidePhysicalEnvelope) {
  util::Rng rng(600 + GetParam());
  structural::BoucWenSubstructure::Params params;
  params.elastic_stiffness = rng.UniformDouble(1e4, 1e7);
  params.yield_displacement = rng.UniformDouble(0.005, 0.05);
  params.alpha = rng.UniformDouble(0.0, 0.3);
  structural::BoucWenSubstructure model(params);

  double d = 0.0;
  for (int i = 0; i < 500; ++i) {
    d += rng.Gaussian(0.0, params.yield_displacement / 5);
    d = std::clamp(d, -0.2, 0.2);
    auto force = model.Restore({d});
    ASSERT_TRUE(force.ok());
    // |r| <= alpha k |d| + (1-alpha) k dy  (z is clamped to [-1, 1]).
    const double envelope =
        params.alpha * params.elastic_stiffness * std::fabs(d) +
        (1.0 - params.alpha) * params.elastic_stiffness *
            params.yield_displacement + 1e-9;
    EXPECT_LE(std::fabs((*force)[0]), envelope) << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoucWenPropertyTest, ::testing::Range(0, 10));

class WireRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(WireRoundTripTest, RandomProposalsSurviveEncoding) {
  util::Rng rng(700 + GetParam());
  ntcp::Proposal proposal;
  proposal.transaction_id = util::NewUuidFrom(rng);
  proposal.timeout_micros = static_cast<std::int64_t>(rng.NextU64() >> 1);
  proposal.step_index = rng.UniformInt(-1, 10000);
  const int actions = rng.UniformInt(0, 5);
  for (int a = 0; a < actions; ++a) {
    ntcp::ControlPointRequest action;
    action.control_point = "cp-" + std::to_string(rng.UniformInt(0, 99));
    const int dofs = rng.UniformInt(1, 6);
    for (int dof = 0; dof < dofs; ++dof) {
      action.target_displacement.push_back(rng.Gaussian(0, 10));
      if (rng.Bernoulli(0.5)) {
        action.target_force.push_back(rng.Gaussian(0, 1e6));
      }
    }
    proposal.actions.push_back(std::move(action));
  }
  util::ByteWriter writer;
  ntcp::EncodeProposal(proposal, writer);
  util::ByteReader reader(writer.data());
  auto decoded = ntcp::DecodeProposal(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, proposal);
  EXPECT_TRUE(reader.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTripTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace nees
