// Tests for the control plugins: simulation, policy decorators, the
// Shore-Western path, the Mplugin buffered-poll pattern (in-process and
// over RPC), and the LabVIEW/Mini-MOST path — including the "transparent
// substitution" property (§2.1) that simulation and physical plugins are
// indistinguishable to an NTCP client.
#include <cmath>

#include <gtest/gtest.h>

#include "net/network.h"
#include "ntcp/client.h"
#include "ntcp/server.h"
#include "plugins/labview_plugin.h"
#include "plugins/mplugin.h"
#include "plugins/policy_plugin.h"
#include "plugins/shorewestern_plugin.h"
#include "plugins/simulation_plugin.h"
#include "testbed/specimen.h"
#include "util/clock.h"

namespace nees::plugins {
namespace {

using util::ErrorCode;

ntcp::Proposal MakeProposal(const std::string& id, const std::string& cp,
                            double displacement) {
  ntcp::Proposal proposal;
  proposal.transaction_id = id;
  ntcp::ControlPointRequest action;
  action.control_point = cp;
  action.target_displacement = {displacement};
  proposal.actions.push_back(std::move(action));
  return proposal;
}

std::unique_ptr<structural::SubstructureModel> ElasticModel(double k_value) {
  structural::Matrix k(1, 1);
  k(0, 0) = k_value;
  return std::make_unique<structural::ElasticSubstructure>(k);
}

// --- SimulationPlugin ----------------------------------------------------------

TEST(SimulationPluginTest, MultipleControlPoints) {
  SimulationPlugin plugin;
  plugin.AddControlPoint("left", ElasticModel(1000.0));
  plugin.AddControlPoint("right", ElasticModel(2000.0));

  ntcp::Proposal proposal;
  proposal.transaction_id = "t";
  for (const auto& [name, d] :
       std::vector<std::pair<std::string, double>>{{"left", 0.01},
                                                   {"right", 0.01}}) {
    ntcp::ControlPointRequest action;
    action.control_point = name;
    action.target_displacement = {d};
    proposal.actions.push_back(action);
  }
  ASSERT_TRUE(plugin.Validate(proposal).ok());
  auto result = plugin.Execute(proposal);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->Find("left")->measured_force[0], 10.0, 1e-9);
  EXPECT_NEAR(result->Find("right")->measured_force[0], 20.0, 1e-9);
}

TEST(SimulationPluginTest, DofMismatchRejectedAtValidate) {
  SimulationPlugin plugin;
  plugin.AddControlPoint("cp", ElasticModel(1.0));
  ntcp::Proposal proposal = MakeProposal("t", "cp", 0.01);
  proposal.actions[0].target_displacement = {0.01, 0.02};  // model is 1-DOF
  EXPECT_EQ(plugin.Validate(proposal).code(), ErrorCode::kInvalidArgument);
}

TEST(SimulationPluginTest, EmptyProposalRejected) {
  SimulationPlugin plugin;
  ntcp::Proposal proposal;
  proposal.transaction_id = "t";
  EXPECT_FALSE(plugin.Validate(proposal).ok());
}

// --- LimitPolicyPlugin ------------------------------------------------------------

TEST(LimitPolicyTest, RejectsOverLimitDisplacementBeforeInner) {
  SitePolicy policy;
  policy.max_abs_displacement_m = 0.05;
  auto inner = std::make_unique<SimulationPlugin>();
  inner->AddControlPoint("cp", ElasticModel(1.0));
  LimitPolicyPlugin plugin(policy, std::move(inner));

  EXPECT_TRUE(plugin.Validate(MakeProposal("a", "cp", 0.04)).ok());
  const util::Status rejected = plugin.Validate(MakeProposal("b", "cp", 0.06));
  EXPECT_EQ(rejected.code(), ErrorCode::kPolicyViolation);
  EXPECT_EQ(plugin.rejections(), 1u);
}

TEST(LimitPolicyTest, RejectsForceControlWhenConfigured) {
  SitePolicy policy;
  policy.reject_force_control = true;
  auto inner = std::make_unique<SimulationPlugin>();
  inner->AddControlPoint("cp", ElasticModel(1.0));
  LimitPolicyPlugin plugin(policy, std::move(inner));

  ntcp::Proposal proposal = MakeProposal("a", "cp", 0.01);
  proposal.actions[0].target_force = {100.0};
  EXPECT_EQ(plugin.Validate(proposal).code(), ErrorCode::kPolicyViolation);
}

TEST(LimitPolicyTest, ForceLimitChecked) {
  SitePolicy policy;
  policy.max_abs_force_n = 50.0;
  auto inner = std::make_unique<SimulationPlugin>();
  inner->AddControlPoint("cp", ElasticModel(1.0));
  LimitPolicyPlugin plugin(policy, std::move(inner));
  ntcp::Proposal proposal = MakeProposal("a", "cp", 0.01);
  proposal.actions[0].target_force = {100.0};
  EXPECT_EQ(plugin.Validate(proposal).code(), ErrorCode::kPolicyViolation);
}

TEST(LimitPolicyTest, NegotiationHappensBeforeAnyMotion) {
  // End-to-end: a proposal over the site limit is rejected at propose time
  // and execute never reaches the plugin — nothing moved anywhere.
  util::SimClock clock;
  net::Network network;
  network.SetClock(&clock);
  SitePolicy policy;
  policy.max_abs_displacement_m = 0.05;
  auto inner = std::make_unique<SimulationPlugin>();
  auto* inner_raw = inner.get();
  inner->AddControlPoint("cp", ElasticModel(1.0));
  ntcp::NtcpServer server(
      &network, "ntcp.site",
      std::make_unique<LimitPolicyPlugin>(policy, std::move(inner)), &clock);
  ASSERT_TRUE(server.Start().ok());

  EXPECT_FALSE(server.Propose(MakeProposal("big", "cp", 0.2)).accepted);
  EXPECT_EQ(server.Execute("big").status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(inner_raw->executions(), 0u);
}

// --- HumanApprovalPlugin -----------------------------------------------------------

TEST(HumanApprovalTest, DeniedExecutionAborts) {
  auto inner = std::make_unique<SimulationPlugin>();
  auto* inner_raw = inner.get();
  inner->AddControlPoint("cp", ElasticModel(1.0));
  bool approve = false;
  HumanApprovalPlugin plugin(
      [&approve](const ntcp::Proposal&) { return approve; }, std::move(inner));

  ASSERT_TRUE(plugin.Validate(MakeProposal("t", "cp", 0.01)).ok());
  EXPECT_EQ(plugin.Execute(MakeProposal("t", "cp", 0.01)).status().code(),
            ErrorCode::kAborted);
  EXPECT_EQ(plugin.denials(), 1u);
  EXPECT_EQ(inner_raw->executions(), 0u);

  approve = true;
  EXPECT_TRUE(plugin.Execute(MakeProposal("t", "cp", 0.01)).ok());
  EXPECT_EQ(inner_raw->executions(), 1u);
}

// --- ShoreWesternPlugin over the emulated controller ---------------------------------

class ShoreWesternPluginTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testbed::PhysicalSpecimen::Config config;
    config.name = "uiuc";
    structural::Matrix k(1, 1);
    k(0, 0) = 1e6;
    auto specimen = std::make_unique<testbed::PhysicalSpecimen>(
        config,
        std::make_unique<testbed::ServoHydraulicActuator>(
            testbed::ServoHydraulicActuator::Params{}),
        std::make_unique<structural::ElasticSubstructure>(k));
    emulator_ = std::make_unique<testbed::ShoreWesternEmulator>(
        &network_, "sw.uiuc", std::move(specimen));
    ASSERT_TRUE(emulator_->Start().ok());

    plugin_rpc_ = std::make_unique<net::RpcClient>(&network_, "plugin.rpc");
  }

  net::Network network_;
  std::unique_ptr<testbed::ShoreWesternEmulator> emulator_;
  std::unique_ptr<net::RpcClient> plugin_rpc_;
};

TEST_F(ShoreWesternPluginTest, ExecutesThroughControllerProtocol) {
  ShoreWesternPlugin plugin({}, plugin_rpc_.get(), "sw.uiuc");
  ntcp::Proposal proposal = MakeProposal("t", "column-top", 0.01);
  ASSERT_TRUE(plugin.Validate(proposal).ok());
  auto result = plugin.Execute(proposal);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->results[0].measured_displacement[0], 0.01, 2e-4);
  EXPECT_NEAR(result->results[0].measured_force[0], 1e4, 300.0);
}

TEST_F(ShoreWesternPluginTest, ValidateEnforcesSiteShape) {
  ShoreWesternPlugin plugin({}, plugin_rpc_.get(), "sw.uiuc");
  EXPECT_FALSE(plugin.Validate(MakeProposal("t", "wrong-cp", 0.01)).ok());
  EXPECT_EQ(plugin.Validate(MakeProposal("t", "column-top", 0.5)).code(),
            ErrorCode::kPolicyViolation);
  ntcp::Proposal force_proposal = MakeProposal("t", "column-top", 0.01);
  force_proposal.actions[0].target_force = {10.0};
  EXPECT_EQ(plugin.Validate(force_proposal).code(),
            ErrorCode::kPolicyViolation);
}

TEST_F(ShoreWesternPluginTest, ControllerLossSurfacesAsTimeout) {
  ShoreWesternPlugin plugin({}, plugin_rpc_.get(), "sw.uiuc");
  network_.SetLinkUp("plugin.rpc", "sw.uiuc", false);
  auto result = plugin.Execute(MakeProposal("t", "column-top", 0.01));
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
}

TEST_F(ShoreWesternPluginTest, InterlockSurfacesAsSafetyError) {
  emulator_->specimen().EStop();
  ShoreWesternPlugin plugin({}, plugin_rpc_.get(), "sw.uiuc");
  auto result = plugin.Execute(MakeProposal("t", "column-top", 0.01));
  EXPECT_EQ(result.status().code(), ErrorCode::kSafetyInterlock);
}

// --- MPlugin ---------------------------------------------------------------------

TEST(MPluginTest, BackendThreadServicesExecute) {
  MPlugin plugin;
  auto models = std::make_shared<std::map<
      std::string, std::unique_ptr<structural::SubstructureModel>>>();
  (*models)["cp"] = ElasticModel(1000.0);
  PollingBackend backend(&plugin, MakeSimulationCompute(models));
  backend.Start();

  auto result = plugin.Execute(MakeProposal("m1", "cp", 0.01));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->results[0].measured_force[0], 10.0, 1e-9);
  EXPECT_GE(plugin.polls(), 1u);
  backend.Stop();
  EXPECT_EQ(backend.processed(), 1u);
}

TEST(MPluginTest, ExecuteTimesOutWithoutBackend) {
  MPlugin::Config config;
  config.execute_timeout_micros = 20'000;  // 20 ms real time
  MPlugin plugin(config);
  auto result = plugin.Execute(MakeProposal("m2", "cp", 0.01));
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
  // The stale request was withdrawn from the queue.
  EXPECT_EQ(plugin.buffered(), 0u);
}

TEST(MPluginTest, LateNotifyAfterTimeoutIsRejected) {
  MPlugin::Config config;
  config.execute_timeout_micros = 10'000;
  MPlugin plugin(config);
  auto result = plugin.Execute(MakeProposal("m3", "cp", 0.01));
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
  EXPECT_EQ(plugin.PostResult("m3", ntcp::TransactionResult{}).code(),
            ErrorCode::kNotFound);
}

TEST(MPluginTest, BackendErrorPropagates) {
  MPlugin plugin;
  PollingBackend backend(&plugin, [](const ntcp::Proposal&) {
    return util::Result<ntcp::TransactionResult>(
        util::Internal("matlab crashed"));
  });
  backend.Start();
  auto result = plugin.Execute(MakeProposal("m4", "cp", 0.01));
  EXPECT_EQ(result.status().code(), ErrorCode::kInternal);
  backend.Stop();
}

TEST(MPluginTest, ValidateEnforcesLimit) {
  MPlugin::Config config;
  config.max_abs_displacement_m = 0.01;
  MPlugin plugin(config);
  EXPECT_EQ(plugin.Validate(MakeProposal("t", "cp", 0.02)).code(),
            ErrorCode::kPolicyViolation);
}

TEST(MPluginTest, RemoteBackendOverRpc) {
  // The NCSA pattern: the plugin exposes poll/notify over the network; the
  // "Matlab" process polls remotely. Uses a second thread for the NTCP
  // execute because the remote poll round-trip happens on this thread.
  net::Network network;
  auto plugin = std::make_unique<MPlugin>();
  auto* plugin_raw = plugin.get();
  net::RpcServer plugin_server(&network, "mplugin.ncsa");
  ASSERT_TRUE(plugin_server.Start().ok());
  plugin_raw->BindBackendRpc(plugin_server);

  auto models = std::make_shared<std::map<
      std::string, std::unique_ptr<structural::SubstructureModel>>>();
  (*models)["cp"] = ElasticModel(500.0);
  net::RpcClient backend_rpc(&network, "matlab.ncsa");
  RemotePollingBackend backend(&backend_rpc, "mplugin.ncsa",
                               MakeSimulationCompute(models));

  util::Result<ntcp::TransactionResult> result =
      util::Internal("not yet run");
  std::thread executor([&] {
    result = plugin_raw->Execute(MakeProposal("m5", "cp", 0.02));
  });
  // Poll until the backend picks up and completes the work.
  bool worked = false;
  for (int i = 0; i < 200 && !worked; ++i) {
    auto outcome = backend.PollOnce(10'000);
    ASSERT_TRUE(outcome.ok());
    worked = *outcome;
  }
  executor.join();
  EXPECT_TRUE(worked);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->results[0].measured_force[0], 10.0, 1e-9);
}

TEST(MPluginTest, LongPollStopIsPromptViaInterruptPolls) {
  // The backend parks in a multi-second long poll; Stop() must interrupt
  // it rather than wait out the poll budget.
  MPlugin plugin;
  auto models = std::make_shared<std::map<
      std::string, std::unique_ptr<structural::SubstructureModel>>>();
  (*models)["cp"] = ElasticModel(1000.0);
  PollingBackend backend(&plugin, MakeSimulationCompute(models),
                         /*poll_wait_micros=*/30'000'000);
  backend.Start();
  ASSERT_TRUE(plugin.Execute(MakeProposal("lp1", "cp", 0.01)).ok());

  const util::Stopwatch watch;
  backend.Stop();
  EXPECT_LT(watch.ElapsedMicros(), 5'000'000);  // nowhere near 30 s
  EXPECT_EQ(backend.processed(), 1u);
}

TEST(MPluginTest, WorkNotifierFiresOnEnqueue) {
  MPlugin::Config config;
  config.execute_timeout_micros = 50'000;
  MPlugin plugin(config);
  std::atomic<int> notified{0};
  plugin.SetWorkNotifier([&] { ++notified; });
  // No backend: the execute times out, but the notifier must have fired
  // at enqueue time (it wakes remote backends push-style).
  EXPECT_EQ(plugin.Execute(MakeProposal("wn1", "cp", 0.01)).status().code(),
            ErrorCode::kTimeout);
  EXPECT_EQ(notified, 1);
}

TEST(MPluginTest, RemoteBackendIsWakeDriven) {
  // The event-driven NCSA pattern: the plugin's work notifier sends a
  // one-way "mplugin.wake" to the backend's control endpoint, and the
  // backend polls only when woken — its heartbeat is set far beyond the
  // test horizon, so completing the execute proves the wake path works.
  net::Network network;
  auto plugin = std::make_unique<MPlugin>();
  auto* plugin_raw = plugin.get();
  net::RpcServer plugin_server(&network, "mplugin.ncsa");
  ASSERT_TRUE(plugin_server.Start().ok());
  plugin_raw->BindBackendRpc(plugin_server);

  auto models = std::make_shared<std::map<
      std::string, std::unique_ptr<structural::SubstructureModel>>>();
  (*models)["cp"] = ElasticModel(500.0);
  net::RpcClient backend_rpc(&network, "matlab.ncsa");
  RemotePollingBackend backend(&backend_rpc, "mplugin.ncsa",
                               MakeSimulationCompute(models),
                               /*heartbeat_micros=*/60'000'000);
  net::RpcServer backend_ctl(&network, "matlab.ncsa.ctl");
  ASSERT_TRUE(backend_ctl.Start().ok());
  backend.BindWakeRpc(backend_ctl);

  net::RpcClient wake_rpc(&network, "mplugin.ncsa.notifier");
  plugin_raw->SetWorkNotifier(
      [&] { (void)wake_rpc.OneWay("matlab.ncsa.ctl", "mplugin.wake", {}); });
  backend.Start();

  util::Result<ntcp::TransactionResult> result =
      util::Internal("not yet run");
  std::thread executor([&] {
    result = plugin_raw->Execute(MakeProposal("wk1", "cp", 0.02));
  });
  executor.join();
  backend.Stop();
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->results[0].measured_force[0], 10.0, 1e-9);
  EXPECT_GE(backend.wakes(), 1u);
  EXPECT_EQ(backend.processed(), 1u);
}

// --- VirtualPollingBackend (DeliveryMode::kVirtual) -------------------------------

// Shared wiring for the event-driven kVirtual backend tests: plugin served
// at "mplugin.v", backend polling from "matlab.v", wakes delivered to the
// backend's control endpoint "matlab.v.ctl" from "mplugin.v.notifier".
struct VirtualMPluginRig {
  explicit VirtualMPluginRig(net::Network* network,
                             std::int64_t heartbeat_micros)
      : plugin(MakeConfig()),
        plugin_server(network, "mplugin.v"),
        backend_rpc(network, "matlab.v"),
        backend_ctl(network, "matlab.v.ctl"),
        wake_rpc(network, "mplugin.v.notifier"),
        backend(network, &backend_rpc, "mplugin.v",
                MakeSimulationCompute(MakeModels()), heartbeat_micros) {
    plugin.AttachVirtualNetwork(network);
    EXPECT_TRUE(plugin_server.Start().ok());
    plugin.BindBackendRpc(plugin_server);
    EXPECT_TRUE(backend_ctl.Start().ok());
    backend.BindWakeRpc(backend_ctl);
    plugin.SetWorkNotifier(
        [this] { (void)wake_rpc.OneWay("matlab.v.ctl", "mplugin.wake", {}); });
    backend.Start();
  }

  static MPlugin::Config MakeConfig() {
    MPlugin::Config config;
    config.execute_timeout_micros = 10'000'000;
    return config;
  }
  static std::shared_ptr<
      std::map<std::string, std::unique_ptr<structural::SubstructureModel>>>
  MakeModels() {
    auto models = std::make_shared<std::map<
        std::string, std::unique_ptr<structural::SubstructureModel>>>();
    (*models)["cp"] = ElasticModel(500.0);
    return models;
  }

  MPlugin plugin;
  net::RpcServer plugin_server;
  net::RpcClient backend_rpc;
  net::RpcServer backend_ctl;
  net::RpcClient wake_rpc;
  VirtualPollingBackend backend;
};

TEST(MPluginTest, VirtualBackendIsWakeDrivenSingleThreaded) {
  // No executor thread: Execute() pumps the virtual event loop inline, and
  // the whole propose -> wake -> poll -> compute -> notify exchange runs on
  // this thread in virtual time, completing long before the heartbeat.
  net::Network network(net::DeliveryMode::kVirtual);
  net::LinkModel link;
  link.latency_micros = 1'000;
  network.SetDefaultLink(link);
  VirtualMPluginRig rig(&network, /*heartbeat_micros=*/250'000);

  const std::int64_t t0 = network.clock()->NowMicros();
  util::Result<ntcp::TransactionResult> result =
      rig.plugin.Execute(MakeProposal("v1", "cp", 0.02));
  const std::int64_t took = network.clock()->NowMicros() - t0;

  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->results[0].measured_force[0], 10.0, 1e-9);
  EXPECT_GE(rig.backend.wakes(), 1u);
  EXPECT_EQ(rig.backend.processed(), 1u);
  EXPECT_LT(took, 125'000);  // via the wake path, not the heartbeat

  rig.backend.Stop();
  network.RunUntilQuiescent();
}

TEST(MPluginTest, VirtualBackendLostWakeOnlyDelaysNeverStalls) {
  // Satellite coverage: sever exactly one mplugin.wake delivery. The
  // execute must still complete — recovered by the heartbeat re-poll — and
  // the extra latency is bounded by one heartbeat period of virtual time.
  constexpr std::int64_t kHeartbeat = 250'000;
  net::Network network(net::DeliveryMode::kVirtual);
  net::LinkModel link;
  link.latency_micros = 1'000;
  network.SetDefaultLink(link);
  VirtualMPluginRig rig(&network, kHeartbeat);
  network.DropNext("mplugin.v.notifier", "matlab.v.ctl", 1);

  const std::int64_t t0 = network.clock()->NowMicros();
  util::Result<ntcp::TransactionResult> result =
      rig.plugin.Execute(MakeProposal("v2", "cp", 0.02));
  const std::int64_t took = network.clock()->NowMicros() - t0;

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(rig.backend.wakes(), 0u);       // the wake really was lost
  EXPECT_GE(rig.backend.heartbeats(), 1u);  // ...and the heartbeat recovered
  EXPECT_EQ(rig.backend.processed(), 1u);
  // Delayed to roughly the first heartbeat firing; bounded, not stalled.
  EXPECT_GE(took, kHeartbeat / 2);
  EXPECT_LE(took, kHeartbeat + 50'000);

  rig.backend.Stop();
  network.RunUntilQuiescent();
}

// --- LabViewPlugin ----------------------------------------------------------------

TEST(LabViewPluginTest, DrivesMiniMostRig) {
  LabViewPlugin plugin({}, testbed::MakeMiniMostRig(2000.0, 7));
  ntcp::Proposal proposal = MakeProposal("t", "beam-tip", 0.01);
  ASSERT_TRUE(plugin.Validate(proposal).ok());
  auto result = plugin.Execute(proposal);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->results[0].measured_displacement[0], 0.01, 1e-4);
}

TEST(LabViewPluginTest, TravelLimitAndInterlock) {
  LabViewPlugin plugin({}, testbed::MakeMiniMostRig(2000.0, 7));
  EXPECT_EQ(plugin.Validate(MakeProposal("t", "beam-tip", 0.05)).code(),
            ErrorCode::kPolicyViolation);
  plugin.specimen().EStop();
  EXPECT_EQ(plugin.Validate(MakeProposal("t", "beam-tip", 0.01)).code(),
            ErrorCode::kSafetyInterlock);
}

// --- transparency: simulation vs physical plugin (§2.1 / §3) -----------------------

TEST(TransparencyTest, CoordinatorCodeIsPluginAgnostic) {
  // The same client-side step loop runs against a simulation plugin and a
  // physical (emulated rig) plugin; with matching stiffness the measured
  // forces agree within sensor noise. This is the property that let MOST
  // develop against simulations and swap in the rigs (§3).
  const double stiffness = 1e6;
  util::SimClock clock;
  net::Network network;
  network.SetClock(&clock);

  // Site A: pure simulation.
  auto simulation = std::make_unique<SimulationPlugin>();
  simulation->AddControlPoint("column-top", ElasticModel(stiffness));
  ntcp::NtcpServer site_a(&network, "ntcp.sim", std::move(simulation), &clock);
  ASSERT_TRUE(site_a.Start().ok());

  // Site B: emulated rig behind the Shore-Western controller.
  testbed::PhysicalSpecimen::Config rig_config;
  rig_config.name = "rig";
  structural::Matrix k(1, 1);
  k(0, 0) = stiffness;
  auto specimen = std::make_unique<testbed::PhysicalSpecimen>(
      rig_config,
      std::make_unique<testbed::ServoHydraulicActuator>(
          testbed::ServoHydraulicActuator::Params{}),
      std::make_unique<structural::ElasticSubstructure>(k));
  testbed::ShoreWesternEmulator controller(&network, "sw.rig",
                                           std::move(specimen));
  ASSERT_TRUE(controller.Start().ok());
  auto plugin_rpc = std::make_unique<net::RpcClient>(&network, "plugin.rig");
  ntcp::NtcpServer site_b(
      &network, "ntcp.rig",
      std::make_unique<ShoreWesternPlugin>(ShoreWesternPlugin::Config{},
                                           plugin_rpc.get(), "sw.rig"),
      &clock);
  ASSERT_TRUE(site_b.Start().ok());

  net::RpcClient rpc(&network, "coordinator");
  for (const std::string site : {"ntcp.sim", "ntcp.rig"}) {
    ntcp::NtcpClient client(&rpc, site, ntcp::RetryPolicy(), &clock);
    const std::string id = site + "-step";
    ASSERT_TRUE(client.Propose(MakeProposal(id, "column-top", 0.01)).ok());
    auto result = client.Execute(id);
    ASSERT_TRUE(result.ok());
    // Both report ~k*d; the rig differs only by sensor/settling error.
    EXPECT_NEAR(result->results[0].measured_force[0], 1e4, 300.0) << site;
  }
}

}  // namespace
}  // namespace nees::plugins
