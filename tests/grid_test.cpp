// Tests for the OGSI-like substrate: SDEs, inspection, soft-state
// lifetimes, remote subscriptions, and the soft-state service registry.
#include <gtest/gtest.h>

#include "grid/container.h"
#include "grid/registry.h"
#include "grid/service.h"
#include "net/network.h"
#include "util/clock.h"

namespace nees::grid {
namespace {

using util::ErrorCode;

SdeValue MakeSde(std::initializer_list<std::pair<std::string, std::string>>
                     fields) {
  SdeValue value;
  for (const auto& [key, field] : fields) value.Set(key, field);
  return value;
}

// --- GridService / SDEs ------------------------------------------------------

TEST(GridServiceTest, SetGetServiceData) {
  GridService service("svc");
  service.SetServiceData("txn.1", MakeSde({{"state", "proposed"}}));
  auto value = service.GetServiceData("txn.1");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->Get("state"), "proposed");
  EXPECT_EQ(value->Get("missing"), "");
}

TEST(GridServiceTest, RemoveServiceData) {
  GridService service("svc");
  service.SetServiceData("x", MakeSde({{"a", "1"}}));
  service.RemoveServiceData("x");
  EXPECT_FALSE(service.GetServiceData("x").has_value());
}

TEST(GridServiceTest, FindByPrefix) {
  GridService service("svc");
  service.SetServiceData("txn.1", MakeSde({{"state", "executing"}}));
  service.SetServiceData("txn.2", MakeSde({{"state", "completed"}}));
  service.SetServiceData("meta", MakeSde({{"version", "1"}}));
  const auto matches = service.FindServiceData("txn.");
  EXPECT_EQ(matches.size(), 2u);
  EXPECT_EQ(service.FindServiceData("").size(), 3u);
  EXPECT_EQ(service.ListServiceData().size(), 3u);
}

TEST(GridServiceTest, OverwriteUpdatesValue) {
  GridService service("svc");
  service.SetServiceData("txn.1", MakeSde({{"state", "proposed"}}));
  service.SetServiceData("txn.1", MakeSde({{"state", "accepted"}}));
  EXPECT_EQ(service.GetServiceData("txn.1")->Get("state"), "accepted");
}

TEST(GridServiceTest, LocalSubscriptionFiresOnMatchingPrefix) {
  GridService service("svc");
  std::vector<std::string> seen;
  const int id = service.SubscribeSde(
      "txn.", [&](const std::string& key, const SdeValue& value) {
        seen.push_back(key + "=" + value.Get("state"));
      });
  service.SetServiceData("txn.1", MakeSde({{"state", "proposed"}}));
  service.SetServiceData("other", MakeSde({{"state", "x"}}));  // no match
  service.SetServiceData("txn.1", MakeSde({{"state", "accepted"}}));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "txn.1=proposed");
  EXPECT_EQ(seen[1], "txn.1=accepted");
  service.UnsubscribeSde(id);
  service.SetServiceData("txn.2", MakeSde({{"state", "proposed"}}));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(GridServiceTest, SoftStateLifetime) {
  util::SimClock clock(1000);
  GridService service("svc");
  EXPECT_FALSE(service.Expired(1'000'000'000));  // default: never
  service.SetTerminationTimeMicros(5000);
  EXPECT_FALSE(service.Expired(4999));
  EXPECT_TRUE(service.Expired(5000));
  service.ExtendLease(10'000, clock);  // now 1000 + 10000
  EXPECT_FALSE(service.Expired(10'000));
  EXPECT_TRUE(service.Expired(11'000));
}

TEST(SdeValueTest, EncodeDecodeRoundTrip) {
  const SdeValue original =
      MakeSde({{"state", "completed"}, {"result", "3.14"}, {"t", "1500"}});
  util::ByteWriter writer;
  EncodeSdeValue(original, writer);
  util::ByteReader reader(writer.data());
  auto decoded = DecodeSdeValue(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

// --- ServiceContainer --------------------------------------------------------

class ContainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_.SetClock(&clock_);
    container_ =
        std::make_unique<ServiceContainer>(&network_, "container", &clock_);
    ASSERT_TRUE(container_->Start().ok());
    client_ = std::make_unique<ContainerClient>(&network_, "client");
  }

  net::Network network_;
  util::SimClock clock_;
  std::unique_ptr<ServiceContainer> container_;
  std::unique_ptr<ContainerClient> client_;
};

TEST_F(ContainerTest, AddListLookup) {
  auto handle = container_->AddService(std::make_shared<GridService>("a"));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(*handle, "container/a");
  EXPECT_NE(container_->Lookup("a"), nullptr);
  EXPECT_EQ(container_->Lookup("nope"), nullptr);

  auto duplicate = container_->AddService(std::make_shared<GridService>("a"));
  EXPECT_EQ(duplicate.status().code(), ErrorCode::kAlreadyExists);

  auto names = client_->ListServices("container");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"a"});
}

TEST_F(ContainerTest, RemoteFindServiceData) {
  auto service = std::make_shared<GridService>("ntcp");
  service->SetServiceData("txn.5", MakeSde({{"state", "executing"}}));
  ASSERT_TRUE(container_->AddService(service).ok());

  auto matches = client_->FindServiceData("container", "ntcp", "txn.");
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].first, "txn.5");
  EXPECT_EQ((*matches)[0].second.Get("state"), "executing");

  auto missing = client_->FindServiceData("container", "ghost", "");
  EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound);
}

TEST_F(ContainerTest, RemoteDestroyCallsOnDestroy) {
  class TrackedService : public GridService {
   public:
    TrackedService(bool* flag) : GridService("tracked"), flag_(flag) {}
    void OnDestroy() override { *flag_ = true; }

   private:
    bool* flag_;
  };
  bool destroyed = false;
  ASSERT_TRUE(
      container_->AddService(std::make_shared<TrackedService>(&destroyed))
          .ok());
  ASSERT_TRUE(client_->DestroyService("container", "tracked").ok());
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(container_->Lookup("tracked"), nullptr);
}

TEST_F(ContainerTest, SoftStateSweepDestroysExpired) {
  auto service = std::make_shared<GridService>("ephemeral");
  ASSERT_TRUE(container_->AddService(service).ok());
  ASSERT_TRUE(
      client_->SetTerminationTime("container", "ephemeral", 5000).ok());

  clock_.SetMicros(4000);
  EXPECT_EQ(container_->SweepExpired(), 0);
  clock_.SetMicros(6000);
  EXPECT_EQ(container_->SweepExpired(), 1);
  EXPECT_EQ(container_->Lookup("ephemeral"), nullptr);
}

TEST_F(ContainerTest, LeaseRenewalKeepsServiceAlive) {
  auto service = std::make_shared<GridService>("renewed");
  ASSERT_TRUE(container_->AddService(service).ok());
  service->SetTerminationTimeMicros(5000);

  clock_.SetMicros(4000);
  // Renew: push termination to 4000 + 10000.
  ASSERT_TRUE(client_->SetTerminationTime("container", "renewed", 14'000).ok());
  clock_.SetMicros(6000);
  EXPECT_EQ(container_->SweepExpired(), 0);
  clock_.SetMicros(15'000);
  EXPECT_EQ(container_->SweepExpired(), 1);
}

TEST_F(ContainerTest, RemoteSubscriptionPushesChanges) {
  auto service = std::make_shared<GridService>("ntcp");
  ASSERT_TRUE(container_->AddService(service).ok());

  std::vector<std::string> events;
  ASSERT_TRUE(client_
                  ->Subscribe("container", "ntcp", "txn.",
                              [&](const std::string& svc,
                                  const std::string& key,
                                  const SdeValue& value) {
                                events.push_back(svc + ":" + key + "=" +
                                                 value.Get("state"));
                              })
                  .ok());
  service->SetServiceData("txn.9", MakeSde({{"state", "proposed"}}));
  service->SetServiceData("unrelated", MakeSde({{"state", "x"}}));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], "ntcp:txn.9=proposed");
}

TEST_F(ContainerTest, SubscriptionNotificationsSurviveDrops) {
  auto service = std::make_shared<GridService>("ntcp");
  ASSERT_TRUE(container_->AddService(service).ok());
  int count = 0;
  ASSERT_TRUE(client_
                  ->Subscribe("container", "ntcp", "",
                              [&](const std::string&, const std::string&,
                                  const SdeValue&) { ++count; })
                  .ok());
  // Drop one notification; the service keeps publishing (best effort).
  network_.DropNext("container", "client.notify", 1);
  service->SetServiceData("a", MakeSde({{"v", "1"}}));  // lost
  service->SetServiceData("b", MakeSde({{"v", "2"}}));  // delivered
  EXPECT_EQ(count, 1);
}

// --- Registry ----------------------------------------------------------------

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_.SetClock(&clock_);
    container_ =
        std::make_unique<ServiceContainer>(&network_, "index", &clock_);
    ASSERT_TRUE(container_->Start().ok());
    registry_ = std::make_shared<RegistryService>(&clock_);
    ASSERT_TRUE(container_->AddService(registry_).ok());
    registry_->BindRpc(*container_);
    rpc_client_ = std::make_unique<net::RpcClient>(&network_, "rc");
    client_ = std::make_unique<RegistryClient>(rpc_client_.get(), "index");
  }

  Registration MakeReg(const std::string& name, const std::string& type,
                       const std::string& site) {
    Registration registration;
    registration.service_name = name;
    registration.endpoint = name + ".endpoint";
    registration.type = type;
    registration.site = site;
    return registration;
  }

  net::Network network_;
  util::SimClock clock_;
  std::unique_ptr<ServiceContainer> container_;
  std::shared_ptr<RegistryService> registry_;
  std::unique_ptr<net::RpcClient> rpc_client_;
  std::unique_ptr<RegistryClient> client_;
};

TEST_F(RegistryTest, RegisterAndQueryByType) {
  ASSERT_TRUE(client_->Register(MakeReg("ntcp.uiuc", "ntcp", "UIUC"), 0).ok());
  ASSERT_TRUE(client_->Register(MakeReg("ntcp.cu", "ntcp", "CU"), 0).ok());
  ASSERT_TRUE(client_->Register(MakeReg("repo.ncsa", "repository", "NCSA"), 0)
                  .ok());

  auto ntcp = client_->Query("ntcp");
  ASSERT_TRUE(ntcp.ok());
  EXPECT_EQ(ntcp->size(), 2u);

  auto all = client_->Query("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST_F(RegistryTest, LeaseExpiryHidesEntry) {
  ASSERT_TRUE(
      client_->Register(MakeReg("ntcp.uiuc", "ntcp", "UIUC"), 10'000).ok());
  EXPECT_EQ(client_->Query("ntcp")->size(), 1u);
  clock_.Advance(20'000);
  EXPECT_EQ(client_->Query("ntcp")->size(), 0u);
  EXPECT_EQ(registry_->SweepExpired(), 1);
}

TEST_F(RegistryTest, ReRegistrationRenewsLease) {
  ASSERT_TRUE(
      client_->Register(MakeReg("ntcp.uiuc", "ntcp", "UIUC"), 10'000).ok());
  clock_.Advance(8'000);
  ASSERT_TRUE(
      client_->Register(MakeReg("ntcp.uiuc", "ntcp", "UIUC"), 10'000).ok());
  clock_.Advance(8'000);  // 16ms after first registration, 8 after renewal
  EXPECT_EQ(client_->Query("ntcp")->size(), 1u);
}

TEST_F(RegistryTest, UnregisterRemoves) {
  ASSERT_TRUE(client_->Register(MakeReg("x", "ntcp", "UIUC"), 0).ok());
  ASSERT_TRUE(client_->Unregister("x").ok());
  EXPECT_EQ(client_->Query("")->size(), 0u);
  EXPECT_EQ(client_->Unregister("x").code(), ErrorCode::kNotFound);
}

TEST_F(RegistryTest, LookupEntryRespectsExpiry) {
  ASSERT_TRUE(client_->Register(MakeReg("x", "ntcp", "UIUC"), 10'000).ok());
  auto entry = registry_->LookupEntry("x");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->site, "UIUC");
  EXPECT_EQ(entry->endpoint, "x.endpoint");
  clock_.Advance(20'000);
  EXPECT_FALSE(registry_->LookupEntry("x").has_value());
}

}  // namespace
}  // namespace nees::grid
