// Tests for the OGSI-like substrate: SDEs, inspection, soft-state
// lifetimes, remote subscriptions, and the soft-state service registry.
#include <gtest/gtest.h>

#include "grid/container.h"
#include "grid/registry.h"
#include "grid/service.h"
#include "net/network.h"
#include "util/clock.h"

namespace nees::grid {
namespace {

using util::ErrorCode;

SdeValue MakeSde(std::initializer_list<std::pair<std::string, std::string>>
                     fields) {
  SdeValue value;
  for (const auto& [key, field] : fields) value.Set(key, field);
  return value;
}

// --- GridService / SDEs ------------------------------------------------------

TEST(GridServiceTest, SetGetServiceData) {
  GridService service("svc");
  service.SetServiceData("txn.1", MakeSde({{"state", "proposed"}}));
  auto value = service.GetServiceData("txn.1");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->Get("state"), "proposed");
  EXPECT_EQ(value->Get("missing"), "");
}

TEST(GridServiceTest, RemoveServiceData) {
  GridService service("svc");
  service.SetServiceData("x", MakeSde({{"a", "1"}}));
  service.RemoveServiceData("x");
  EXPECT_FALSE(service.GetServiceData("x").has_value());
}

TEST(GridServiceTest, FindByPrefix) {
  GridService service("svc");
  service.SetServiceData("txn.1", MakeSde({{"state", "executing"}}));
  service.SetServiceData("txn.2", MakeSde({{"state", "completed"}}));
  service.SetServiceData("meta", MakeSde({{"version", "1"}}));
  const auto matches = service.FindServiceData("txn.");
  EXPECT_EQ(matches.size(), 2u);
  EXPECT_EQ(service.FindServiceData("").size(), 3u);
  EXPECT_EQ(service.ListServiceData().size(), 3u);
}

TEST(GridServiceTest, OverwriteUpdatesValue) {
  GridService service("svc");
  service.SetServiceData("txn.1", MakeSde({{"state", "proposed"}}));
  service.SetServiceData("txn.1", MakeSde({{"state", "accepted"}}));
  EXPECT_EQ(service.GetServiceData("txn.1")->Get("state"), "accepted");
}

TEST(GridServiceTest, LocalSubscriptionFiresOnMatchingPrefix) {
  GridService service("svc");
  std::vector<std::string> seen;
  const int id = service.SubscribeSde(
      "txn.", [&](const std::string& key, const SdeValue& value) {
        seen.push_back(key + "=" + value.Get("state"));
      });
  service.SetServiceData("txn.1", MakeSde({{"state", "proposed"}}));
  service.SetServiceData("other", MakeSde({{"state", "x"}}));  // no match
  service.SetServiceData("txn.1", MakeSde({{"state", "accepted"}}));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "txn.1=proposed");
  EXPECT_EQ(seen[1], "txn.1=accepted");
  service.UnsubscribeSde(id);
  service.SetServiceData("txn.2", MakeSde({{"state", "proposed"}}));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(GridServiceTest, SoftStateLifetime) {
  util::SimClock clock(1000);
  GridService service("svc");
  EXPECT_FALSE(service.Expired(1'000'000'000));  // default: never
  service.SetTerminationTimeMicros(5000);
  EXPECT_FALSE(service.Expired(4999));
  EXPECT_TRUE(service.Expired(5000));
  service.ExtendLease(10'000, clock);  // now 1000 + 10000
  EXPECT_FALSE(service.Expired(10'000));
  EXPECT_TRUE(service.Expired(11'000));
}

TEST(SdeValueTest, EncodeDecodeRoundTrip) {
  const SdeValue original =
      MakeSde({{"state", "completed"}, {"result", "3.14"}, {"t", "1500"}});
  util::ByteWriter writer;
  EncodeSdeValue(original, writer);
  util::ByteReader reader(writer.data());
  auto decoded = DecodeSdeValue(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

// --- ServiceContainer --------------------------------------------------------

class ContainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_.SetClock(&clock_);
    container_ =
        std::make_unique<ServiceContainer>(&network_, "container", &clock_);
    ASSERT_TRUE(container_->Start().ok());
    client_ = std::make_unique<ContainerClient>(&network_, "client");
  }

  net::Network network_;
  util::SimClock clock_;
  std::unique_ptr<ServiceContainer> container_;
  std::unique_ptr<ContainerClient> client_;
};

TEST_F(ContainerTest, AddListLookup) {
  auto handle = container_->AddService(std::make_shared<GridService>("a"));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(*handle, "container/a");
  EXPECT_NE(container_->Lookup("a"), nullptr);
  EXPECT_EQ(container_->Lookup("nope"), nullptr);

  auto duplicate = container_->AddService(std::make_shared<GridService>("a"));
  EXPECT_EQ(duplicate.status().code(), ErrorCode::kAlreadyExists);

  auto names = client_->ListServices("container");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"a"});
}

TEST_F(ContainerTest, RemoteFindServiceData) {
  auto service = std::make_shared<GridService>("ntcp");
  service->SetServiceData("txn.5", MakeSde({{"state", "executing"}}));
  ASSERT_TRUE(container_->AddService(service).ok());

  auto matches = client_->FindServiceData("container", "ntcp", "txn.");
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].first, "txn.5");
  EXPECT_EQ((*matches)[0].second.Get("state"), "executing");

  auto missing = client_->FindServiceData("container", "ghost", "");
  EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound);
}

TEST_F(ContainerTest, RemoteDestroyCallsOnDestroy) {
  class TrackedService : public GridService {
   public:
    TrackedService(bool* flag) : GridService("tracked"), flag_(flag) {}
    void OnDestroy() override { *flag_ = true; }

   private:
    bool* flag_;
  };
  bool destroyed = false;
  ASSERT_TRUE(
      container_->AddService(std::make_shared<TrackedService>(&destroyed))
          .ok());
  ASSERT_TRUE(client_->DestroyService("container", "tracked").ok());
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(container_->Lookup("tracked"), nullptr);
}

TEST_F(ContainerTest, SoftStateSweepDestroysExpired) {
  auto service = std::make_shared<GridService>("ephemeral");
  ASSERT_TRUE(container_->AddService(service).ok());
  ASSERT_TRUE(
      client_->SetTerminationTime("container", "ephemeral", 5000).ok());

  clock_.SetMicros(4000);
  EXPECT_EQ(container_->SweepExpired(), 0);
  clock_.SetMicros(6000);
  EXPECT_EQ(container_->SweepExpired(), 1);
  EXPECT_EQ(container_->Lookup("ephemeral"), nullptr);
}

TEST_F(ContainerTest, LeaseRenewalKeepsServiceAlive) {
  auto service = std::make_shared<GridService>("renewed");
  ASSERT_TRUE(container_->AddService(service).ok());
  service->SetTerminationTimeMicros(5000);

  clock_.SetMicros(4000);
  // Renew: push termination to 4000 + 10000.
  ASSERT_TRUE(client_->SetTerminationTime("container", "renewed", 14'000).ok());
  clock_.SetMicros(6000);
  EXPECT_EQ(container_->SweepExpired(), 0);
  clock_.SetMicros(15'000);
  EXPECT_EQ(container_->SweepExpired(), 1);
}

TEST_F(ContainerTest, RemoteSubscriptionPushesChanges) {
  auto service = std::make_shared<GridService>("ntcp");
  ASSERT_TRUE(container_->AddService(service).ok());

  std::vector<std::string> events;
  ASSERT_TRUE(client_
                  ->Subscribe("container", "ntcp", "txn.",
                              [&](const std::string& svc,
                                  const std::string& key,
                                  const SdeValue& value) {
                                events.push_back(svc + ":" + key + "=" +
                                                 value.Get("state"));
                              })
                  .ok());
  service->SetServiceData("txn.9", MakeSde({{"state", "proposed"}}));
  service->SetServiceData("unrelated", MakeSde({{"state", "x"}}));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], "ntcp:txn.9=proposed");
}

TEST_F(ContainerTest, SubscriptionNotificationsSurviveDrops) {
  auto service = std::make_shared<GridService>("ntcp");
  ASSERT_TRUE(container_->AddService(service).ok());
  int count = 0;
  ASSERT_TRUE(client_
                  ->Subscribe("container", "ntcp", "",
                              [&](const std::string&, const std::string&,
                                  const SdeValue&) { ++count; })
                  .ok());
  // Drop one notification; the service keeps publishing (best effort).
  network_.DropNext("container", "client.notify", 1);
  service->SetServiceData("a", MakeSde({{"v", "1"}}));  // lost
  service->SetServiceData("b", MakeSde({{"v", "2"}}));  // delivered
  EXPECT_EQ(count, 1);
}

// --- Registry ----------------------------------------------------------------

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_.SetClock(&clock_);
    container_ =
        std::make_unique<ServiceContainer>(&network_, "index", &clock_);
    ASSERT_TRUE(container_->Start().ok());
    registry_ = std::make_shared<RegistryService>(&clock_);
    ASSERT_TRUE(container_->AddService(registry_).ok());
    registry_->BindRpc(*container_);
    rpc_client_ = std::make_unique<net::RpcClient>(&network_, "rc");
    client_ = std::make_unique<RegistryClient>(rpc_client_.get(), "index");
  }

  Registration MakeReg(const std::string& name, const std::string& type,
                       const std::string& site) {
    Registration registration;
    registration.service_name = name;
    registration.endpoint = name + ".endpoint";
    registration.type = type;
    registration.site = site;
    return registration;
  }

  net::Network network_;
  util::SimClock clock_;
  std::unique_ptr<ServiceContainer> container_;
  std::shared_ptr<RegistryService> registry_;
  std::unique_ptr<net::RpcClient> rpc_client_;
  std::unique_ptr<RegistryClient> client_;
};

TEST_F(RegistryTest, RegisterAndQueryByType) {
  ASSERT_TRUE(client_->Register(MakeReg("ntcp.uiuc", "ntcp", "UIUC"), 0).ok());
  ASSERT_TRUE(client_->Register(MakeReg("ntcp.cu", "ntcp", "CU"), 0).ok());
  ASSERT_TRUE(client_->Register(MakeReg("repo.ncsa", "repository", "NCSA"), 0)
                  .ok());

  auto ntcp = client_->Query("ntcp");
  ASSERT_TRUE(ntcp.ok());
  EXPECT_EQ(ntcp->size(), 2u);

  auto all = client_->Query("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST_F(RegistryTest, LeaseExpiryHidesEntry) {
  ASSERT_TRUE(
      client_->Register(MakeReg("ntcp.uiuc", "ntcp", "UIUC"), 10'000).ok());
  EXPECT_EQ(client_->Query("ntcp")->size(), 1u);
  clock_.Advance(20'000);
  EXPECT_EQ(client_->Query("ntcp")->size(), 0u);
  EXPECT_EQ(registry_->SweepExpired(), 1);
}

TEST_F(RegistryTest, ReRegistrationRenewsLease) {
  ASSERT_TRUE(
      client_->Register(MakeReg("ntcp.uiuc", "ntcp", "UIUC"), 10'000).ok());
  clock_.Advance(8'000);
  ASSERT_TRUE(
      client_->Register(MakeReg("ntcp.uiuc", "ntcp", "UIUC"), 10'000).ok());
  clock_.Advance(8'000);  // 16ms after first registration, 8 after renewal
  EXPECT_EQ(client_->Query("ntcp")->size(), 1u);
}

TEST_F(RegistryTest, UnregisterRemoves) {
  ASSERT_TRUE(client_->Register(MakeReg("x", "ntcp", "UIUC"), 0).ok());
  ASSERT_TRUE(client_->Unregister("x").ok());
  EXPECT_EQ(client_->Query("")->size(), 0u);
  EXPECT_EQ(client_->Unregister("x").code(), ErrorCode::kNotFound);
}

TEST_F(RegistryTest, LookupEntryRespectsExpiry) {
  ASSERT_TRUE(client_->Register(MakeReg("x", "ntcp", "UIUC"), 10'000).ok());
  auto entry = registry_->LookupEntry("x");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->site, "UIUC");
  EXPECT_EQ(entry->endpoint, "x.endpoint");
  clock_.Advance(20'000);
  EXPECT_FALSE(registry_->LookupEntry("x").has_value());
}

// Full round trip of one lease: register -> visible (table and lazily
// refreshed SDE mirror) -> expire -> swept from both -> re-register ->
// visible again with the renewed expiry.
TEST_F(RegistryTest, LeaseExpiryReRegistrationRoundTrip) {
  ContainerClient ogsi(&network_, "inspector");
  ASSERT_TRUE(
      client_->Register(MakeReg("t0007/ntcp.uiuc", "ntcp", "UIUC"), 10'000)
          .ok());
  EXPECT_TRUE(registry_->LookupEntry("t0007/ntcp.uiuc").has_value());
  auto sdes = ogsi.FindServiceData("index", "registry", "reg.");
  ASSERT_TRUE(sdes.ok());
  ASSERT_EQ(sdes->size(), 1u);
  EXPECT_EQ((*sdes)[0].first, "reg.t0007/ntcp.uiuc");
  EXPECT_EQ((*sdes)[0].second.Get("expires"), "10000");

  clock_.Advance(20'000);
  EXPECT_FALSE(registry_->LookupEntry("t0007/ntcp.uiuc").has_value());
  EXPECT_EQ(registry_->SweepExpired(), 1);
  EXPECT_EQ(registry_->entry_count(), 0u);
  sdes = ogsi.FindServiceData("index", "registry", "reg.");
  ASSERT_TRUE(sdes.ok());
  EXPECT_TRUE(sdes->empty());

  ASSERT_TRUE(
      client_->Register(MakeReg("t0007/ntcp.uiuc", "ntcp", "UIUC"), 10'000)
          .ok());
  auto entry = registry_->LookupEntry("t0007/ntcp.uiuc");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->expires_micros, 30'000);
  sdes = ogsi.FindServiceData("index", "registry", "reg.");
  ASSERT_TRUE(sdes.ok());
  ASSERT_EQ(sdes->size(), 1u);
  EXPECT_EQ((*sdes)[0].second.Get("expires"), "30000");
}

TEST_F(RegistryTest, UnregisterTenantReapsOnlyThatNamespace) {
  ASSERT_TRUE(
      client_->Register(MakeReg("t0001/ntcp.uiuc", "ntcp", "UIUC"), 0).ok());
  ASSERT_TRUE(
      client_->Register(MakeReg("t0001/nsds", "nsds", "NCSA"), 0).ok());
  ASSERT_TRUE(
      client_->Register(MakeReg("t0002/ntcp.uiuc", "ntcp", "UIUC"), 0).ok());
  EXPECT_EQ(registry_->UnregisterTenant("t0001"), 2);
  EXPECT_EQ(registry_->entry_count(), 1u);
  EXPECT_FALSE(registry_->LookupEntry("t0001/ntcp.uiuc").has_value());
  EXPECT_TRUE(registry_->LookupEntry("t0002/ntcp.uiuc").has_value());
  EXPECT_EQ(registry_->UnregisterTenant("t0001"), 0);
}

// --- Multi-tenant container under virtual time -------------------------------

// Many tenants' soft state on one container, on a DeliveryMode::kVirtual
// network: per-tenant sweeps only touch their namespace, the global sweep
// reaps every expired lease, and subscription churn across the surviving
// tenants keeps notifying after their neighbors are destroyed.
TEST(MultiTenantContainerTest, VirtualTimeSweepAndSubscriptionChurn) {
  net::Network network(net::DeliveryMode::kVirtual, 7);
  ServiceContainer container(&network, "container.farm", network.clock());
  ASSERT_TRUE(container.Start().ok());

  constexpr int kTenants = 24;
  std::vector<std::shared_ptr<GridService>> services;
  std::vector<std::unique_ptr<ContainerClient>> viewers;
  std::vector<int> notified(kTenants, 0);
  for (int t = 0; t < kTenants; ++t) {
    char ns[8];
    std::snprintf(ns, sizeof ns, "t%04d", t);
    auto service =
        std::make_shared<GridService>(std::string(ns) + "/ntcp.minimost");
    ASSERT_TRUE(container.AddService(service).ok());
    // Odd tenants hold a 10ms lease; even tenants never expire.
    if (t % 2 == 1) service->SetTerminationTimeMicros(10'000);
    auto viewer = std::make_unique<ContainerClient>(
        &network, std::string("viewer-") + ns);
    ASSERT_TRUE(viewer
                    ->Subscribe("container.farm",
                                std::string(ns) + "/ntcp.minimost", "txn.",
                                [&notified, t](const std::string&,
                                               const std::string&,
                                               const SdeValue&) {
                                  ++notified[t];
                                })
                    .ok());
    service->SetServiceData("txn.0", MakeSde({{"state", "proposed"}}));
    services.push_back(std::move(service));
    viewers.push_back(std::move(viewer));
  }
  network.RunUntilQuiescent();
  EXPECT_EQ(container.service_count(), static_cast<std::size_t>(kTenants));
  for (int t = 0; t < kTenants; ++t) EXPECT_EQ(notified[t], 1);

  network.AdvanceTo(20'000);
  // A tenant-scoped sweep reaps only its own expired lease...
  EXPECT_EQ(container.SweepExpired("t0001"), 1);
  EXPECT_EQ(container.SweepExpired("t0001"), 0);
  // ...leaving every other tenant (expired or not) alone.
  EXPECT_EQ(container.ListServices("t0003").size(), 1u);
  EXPECT_EQ(container.ListServices("t0002").size(), 1u);
  // The global sweep reaps the remaining expired (odd) tenants.
  EXPECT_EQ(container.SweepExpired(), kTenants / 2 - 1);
  EXPECT_EQ(container.service_count(), static_cast<std::size_t>(kTenants / 2));

  // Churn: destroy one live tenant outright; the others keep notifying.
  EXPECT_EQ(container.DestroyTenant("t0000"), 1);
  EXPECT_TRUE(container.ListServices("t0000").empty());
  services[2]->SetServiceData("txn.1", MakeSde({{"state", "executing"}}));
  network.RunUntilQuiescent();
  EXPECT_EQ(notified[2], 2);
  EXPECT_EQ(notified[1], 1);  // swept tenants saw no further events
  EXPECT_EQ(container.service_count(),
            static_cast<std::size_t>(kTenants / 2 - 1));
}

}  // namespace
}  // namespace nees::grid
