// Tests for the deterministic simulation fuzzer (src/most/fuzz.h): scenario
// generation hygiene, the oracle stack on known seeds, same-seed byte
// determinism, and regression pins for the nastiest generated schedules.
#include <gtest/gtest.h>

#include "most/fuzz.h"

namespace nees::most {
namespace {

// --- scenario generation -----------------------------------------------------

TEST(FuzzScenarioTest, SameSeedSameScenario) {
  const FuzzScenario a = GenerateScenario(7);
  const FuzzScenario b = GenerateScenario(7);
  EXPECT_EQ(a.Describe(), b.Describe());
}

TEST(FuzzScenarioTest, DifferentSeedsDiffer) {
  EXPECT_NE(GenerateScenario(1).Describe(), GenerateScenario(2).Describe());
}

TEST(FuzzScenarioTest, ParametersStayInBounds) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const FuzzScenario s = GenerateScenario(seed);
    EXPECT_GE(s.sites, 3u) << seed;
    EXPECT_LE(s.sites, 32u) << seed;
    EXPECT_GE(s.steps, 8u) << seed;
    EXPECT_LE(s.steps, 24u) << seed;
    EXPECT_EQ(s.site_links.size(), s.sites) << seed;
    // kThreadPerSite would race the single-threaded virtual event loop.
    EXPECT_NE(s.engine, psd::StepEngine::kThreadPerSite) << seed;
    // 8 base + 2 crash + 2 corrupt + 1 skew + 1 credential-expiry.
    EXPECT_LE(s.faults.size(), 14u) << seed;
    for (const net::LinkModel& link : s.site_links) {
      EXPECT_LE(link.drop_probability, 0.05) << seed;
    }
    for (const FuzzFault& f : s.faults) {
      EXPECT_LT(f.site, s.sites) << seed;
      if (f.kind == FuzzFault::Kind::kOutage) {
        // Survivability bound: outages must stay under the retry span.
        EXPECT_LE(f.duration_micros, 1'500'000) << seed;
      }
    }
  }
}

TEST(FuzzScenarioTest, ReplayCommandFormatsMask) {
  EXPECT_EQ(ReplayCommand(187, FuzzTemplate::kStandard, 0xd),
            "nees_fuzz --seed 187 --template standard --fault-mask 0xd");
  EXPECT_EQ(ReplayCommand(9, FuzzTemplate::kCentrifuge, kAllFaults),
            "nees_fuzz --seed 9 --template centrifuge "
            "--fault-mask 0xffffffffffffffff");
}

// --- templates ---------------------------------------------------------------

TEST(FuzzTemplateTest, TemplateForSeedIsPureAndMiniDominated) {
  std::size_t by_template[4] = {0, 0, 0, 0};
  for (std::uint64_t seed = 1; seed <= 4096; ++seed) {
    const FuzzTemplate t = TemplateForSeed(seed);
    EXPECT_EQ(t, TemplateForSeed(seed)) << seed;
    by_template[static_cast<int>(t)] += 1;
  }
  // The campaign mix: minis carry the seeds/hour budget, but every shape
  // must actually appear in a sweep of a few thousand seeds.
  EXPECT_GT(by_template[static_cast<int>(FuzzTemplate::kMini)], 3200u);
  EXPECT_GT(by_template[static_cast<int>(FuzzTemplate::kStandard)], 0u);
  EXPECT_GT(by_template[static_cast<int>(FuzzTemplate::kFullMost)], 0u);
  EXPECT_GT(by_template[static_cast<int>(FuzzTemplate::kCentrifuge)], 0u);
}

TEST(FuzzTemplateTest, TemplateNamesRoundTrip) {
  for (FuzzTemplate t : {FuzzTemplate::kMini, FuzzTemplate::kStandard,
                         FuzzTemplate::kFullMost, FuzzTemplate::kCentrifuge}) {
    FuzzTemplate parsed;
    ASSERT_TRUE(ParseTemplateName(TemplateName(t), &parsed))
        << TemplateName(t);
    EXPECT_EQ(parsed, t);
  }
  FuzzTemplate parsed;
  // "auto" means TemplateForSeed, not a template; unknown names also fail.
  EXPECT_FALSE(ParseTemplateName("auto", &parsed));
  EXPECT_FALSE(ParseTemplateName("mostly-harmless", &parsed));
}

TEST(FuzzTemplateTest, SameSeedDiffersAcrossTemplates) {
  EXPECT_NE(GenerateScenario(7, FuzzTemplate::kMini).Describe(),
            GenerateScenario(7, FuzzTemplate::kStandard).Describe());
  const FuzzScenario cent = GenerateScenario(7, FuzzTemplate::kCentrifuge);
  EXPECT_EQ(cent.sites, 1u);
  EXPECT_GE(cent.piles, 4u);
  EXPECT_LE(cent.piles, 12u);
}

TEST(FuzzTemplateTest, NewFaultClassesAppearInGeneratedSchedules) {
  bool corrupt = false, skew = false, creds = false;
  for (std::uint64_t seed = 1; seed <= 64 && !(corrupt && skew && creds);
       ++seed) {
    for (const FuzzFault& f : GenerateScenario(seed).faults) {
      corrupt |= f.kind == FuzzFault::Kind::kFrameCorrupt;
      skew |= f.kind == FuzzFault::Kind::kClockSkew;
      creds |= f.kind == FuzzFault::Kind::kCredentialExpiry;
    }
  }
  EXPECT_TRUE(corrupt);
  EXPECT_TRUE(skew);
  EXPECT_TRUE(creds);
}

// --- shrinker ----------------------------------------------------------------

TEST(FuzzShrinkTest, ShrinksToMinimalFailingSubset) {
  // Synthetic deterministic failure: the case fails iff bits 0 and 2 are
  // both enabled. Greedy single-bit removal from the full 6-fault mask must
  // land exactly on {0,2}: a minimal set where dropping any one bit makes
  // the case pass.
  const auto fails = [](std::uint64_t mask) {
    return (mask & 0b101ULL) == 0b101ULL;
  };
  const std::uint64_t shrunk = ShrinkFaultMask(6, 0b111111ULL, fails);
  EXPECT_EQ(shrunk, 0b101ULL);
  EXPECT_TRUE(fails(shrunk));
  for (std::size_t bit = 0; bit < 6; ++bit) {
    if ((shrunk >> bit) & 1ULL) {
      EXPECT_FALSE(fails(shrunk & ~(1ULL << bit))) << bit;
    }
  }
}

TEST(FuzzShrinkTest, SingleFaultFailureKeepsThatFault) {
  const auto fails = [](std::uint64_t mask) { return (mask & 0b10ULL) != 0; };
  EXPECT_EQ(ShrinkFaultMask(4, 0b1111ULL, fails), 0b10ULL);
}

// --- oracle stack ------------------------------------------------------------

TEST(FuzzRunTest, ZeroFaultScenarioPassesAllOracles) {
  FuzzScenario s = GenerateScenario(3);
  s.faults.clear();
  const FuzzOutcome outcome = RunFuzzCaseChecked(s);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_TRUE(outcome.run_completed);
  // The central-difference loop consumes one motion sample to initialize.
  EXPECT_GE(outcome.steps_completed, s.steps - 1);
  EXPECT_GT(outcome.events_processed, 0u);
}

TEST(FuzzRunTest, SmallSeedBlockPassesAllOracles) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const FuzzOutcome outcome =
        RunFuzzCaseChecked(GenerateScenario(seed));
    EXPECT_TRUE(outcome.ok())
        << "seed " << seed << ": "
        << (outcome.failures.empty() ? "" : outcome.failures.front());
    EXPECT_TRUE(outcome.run_completed) << "seed " << seed;
  }
}

TEST(FuzzRunTest, FaultMaskDisablesFaults) {
  // Same seed with all faults masked off behaves like the zero-fault case:
  // it must still complete (the mask only ever removes adversity).
  const FuzzScenario s = GenerateScenario(5);
  ASSERT_FALSE(s.faults.empty());
  const FuzzOutcome outcome = RunFuzzCase(s, 0);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_EQ(outcome.net_totals.dropped_outage, 0u);
}

// Satellite: same fuzz seed twice in-process yields byte-identical span
// traces, metrics snapshots, and displacement histories.
TEST(FuzzRunTest, SameSeedIsByteIdentical) {
  const FuzzScenario s = GenerateScenario(11);
  const FuzzOutcome a = RunFuzzCase(s);
  const FuzzOutcome b = RunFuzzCase(s);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_EQ(a.metrics_table, b.metrics_table);
  EXPECT_EQ(a.history.displacement, b.history.displacement);
  EXPECT_EQ(a.history.velocity, b.history.velocity);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.wakes, b.wakes);
  EXPECT_EQ(a.heartbeats, b.heartbeats);
}

// --- crash/restart fault class -----------------------------------------------

TEST(FuzzScenarioTest, CrashFaultsRideAfterBaseFaults) {
  // The crash lane is forked independently and appended after the base
  // faults, so pre-existing (seed, fault-mask) repro commands keep their
  // bit meanings; crash downtime stays under the coordinator's re-proposal
  // tolerance so the completion oracle remains sound.
  // Lane append order: base faults, then crashes, then the corruption /
  // skew / credential lanes. Each class added later rides strictly after
  // every earlier one, so mask bits never shift for pre-existing repros.
  const auto lane_rank = [](FuzzFault::Kind k) {
    switch (k) {
      case FuzzFault::Kind::kOutage:
      case FuzzFault::Kind::kDropNext:
      case FuzzFault::Kind::kWakeDrop:
        return 0;
      case FuzzFault::Kind::kSiteCrashRestart:
        return 1;
      case FuzzFault::Kind::kFrameCorrupt:
        return 2;
      case FuzzFault::Kind::kClockSkew:
        return 3;
      case FuzzFault::Kind::kCredentialExpiry:
        return 4;
    }
    return -1;
  };
  std::size_t scenarios_with_crashes = 0;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const FuzzScenario s = GenerateScenario(seed);
    int prev_rank = 0;
    bool seen_crash = false;
    for (const FuzzFault& f : s.faults) {
      EXPECT_GE(lane_rank(f.kind), prev_rank)
          << seed << ": " << f.ToString() << " out of lane order";
      prev_rank = lane_rank(f.kind);
      if (f.kind != FuzzFault::Kind::kSiteCrashRestart) continue;
      seen_crash = true;
      EXPECT_GE(f.duration_micros, 250'000) << seed;
      EXPECT_LE(f.duration_micros, 1'200'000) << seed;
    }
    if (seen_crash) ++scenarios_with_crashes;
  }
  EXPECT_GT(scenarios_with_crashes, 0u);
}

TEST(FuzzRunTest, CrashRestartMidTransactionCompletes) {
  // Seed 25 kills a site while a transaction is executing: the revived
  // incarnation replays its WAL, crash-marks the in-flight transaction,
  // and the coordinator re-drives the step — all four oracles must hold.
  const FuzzScenario s = GenerateScenario(25);
  const FuzzOutcome outcome = RunFuzzCaseChecked(s);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_TRUE(outcome.run_completed);
  EXPECT_GT(outcome.site_crashes, 0u);
  EXPECT_EQ(outcome.site_recoveries, outcome.site_crashes);
  EXPECT_GT(outcome.transactions_recovered, 0u);
  EXPECT_GE(outcome.inflight_failed, 1u);  // died mid-execute
}

TEST(FuzzRunTest, CrashStatsAreDeterministic) {
  const FuzzScenario s = GenerateScenario(25);
  const FuzzOutcome a = RunFuzzCase(s);
  const FuzzOutcome b = RunFuzzCase(s);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_EQ(a.site_crashes, b.site_crashes);
  EXPECT_EQ(a.site_recoveries, b.site_recoveries);
  EXPECT_EQ(a.transactions_recovered, b.transactions_recovered);
  EXPECT_EQ(a.inflight_failed, b.inflight_failed);
}

TEST(FuzzRunTest, MaskingCrashBitsDisablesCrashes) {
  const FuzzScenario s = GenerateScenario(25);
  std::uint64_t mask = kAllFaults;
  for (std::size_t i = 0; i < s.faults.size() && i < 64; ++i) {
    if (s.faults[i].kind == FuzzFault::Kind::kSiteCrashRestart) {
      mask &= ~(1ULL << i);
    }
  }
  const FuzzOutcome outcome = RunFuzzCase(s, mask);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_EQ(outcome.site_crashes, 0u);
  EXPECT_EQ(outcome.transactions_recovered, 0u);
}

// --- frame corruption fault class --------------------------------------------

TEST(FuzzRunTest, FrameCorruptionIsAbsorbedByCrcAndRetries) {
  // A clean scenario plus one corruption burst on the coordinator->site
  // link: every mutated frame must either fail the Decode CRC (a detected
  // loss the retry ladder absorbs) or parse as a valid frame — never crash
  // or wedge the run. All four oracles must hold.
  FuzzScenario s = GenerateScenario(3);
  s.faults.clear();
  FuzzFault f;
  f.kind = FuzzFault::Kind::kFrameCorrupt;
  f.site = 0;
  f.to_site = true;
  f.at_micros = 200'000;
  f.count = 3;
  s.faults.push_back(f);
  const FuzzOutcome outcome = RunFuzzCaseChecked(s);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_TRUE(outcome.run_completed);
  EXPECT_GT(outcome.frames_corrupted, 0u);
}

TEST(FuzzRunTest, MaskingCorruptBitDisablesCorruption) {
  FuzzScenario s = GenerateScenario(3);
  s.faults.clear();
  FuzzFault f;
  f.kind = FuzzFault::Kind::kFrameCorrupt;
  f.site = 0;
  f.at_micros = 200'000;
  f.count = 3;
  s.faults.push_back(f);
  const FuzzOutcome outcome = RunFuzzCase(s, 0);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.frames_corrupted, 0u);
}

// --- clock skew fault class --------------------------------------------------

TEST(FuzzRunTest, ClockSkewKeepsOraclesSound) {
  // Jump one site's clock 2.5s ahead mid-run (an NTP discipline slip). The
  // skewed clock is forward-only, so per-server timestamp logic (proposal
  // expiry, token validation) drifts relative to the grid but never sees
  // time move backwards; the run must stay correct and deterministic.
  FuzzScenario s = GenerateScenario(3);
  s.faults.clear();
  FuzzFault f;
  f.kind = FuzzFault::Kind::kClockSkew;
  f.site = 0;
  f.at_micros = 300'000;
  f.duration_micros = 2'500'000;
  s.faults.push_back(f);
  const FuzzOutcome outcome = RunFuzzCaseChecked(s);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_TRUE(outcome.run_completed);
}

// --- credential expiry fault class -------------------------------------------

namespace {
FuzzScenario CredentialExpiryScenario() {
  FuzzScenario s = GenerateScenario(3);
  s.faults.clear();
  FuzzFault f;
  f.kind = FuzzFault::Kind::kCredentialExpiry;
  f.site = 0;
  // Short token lifetime: the session token minted at login expires long
  // before the run finishes, so some mid-run operation WILL hit
  // kUnauthenticated.
  f.at_micros = 150'000;
  s.faults.push_back(f);
  return s;
}
}  // namespace

TEST(FuzzRunTest, CredentialExpiryWithoutRefresherKillsTheRun) {
  // The original E10 bug: a routine proxy-credential rollover mid-run is a
  // definitive auth error, and without the refresh hook the step fails
  // permanently. This pins the bug the fault class was built to find.
  FuzzRunOptions options;
  options.install_auth_refresher = false;
  const FuzzOutcome outcome =
      RunFuzzCase(CredentialExpiryScenario(), kAllFaults, options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.run_completed);
}

TEST(FuzzRunTest, CredentialExpiryWithRefresherCompletes) {
  const FuzzOutcome outcome = RunFuzzCaseChecked(CredentialExpiryScenario());
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_TRUE(outcome.run_completed);
  EXPECT_GT(outcome.auth_refreshes, 0u);
}

TEST(FuzzRunTest, MaskingCredentialBitDisablesExpiry) {
  const FuzzOutcome outcome = RunFuzzCase(CredentialExpiryScenario(), 0);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.auth_refreshes, 0u);
}

// --- centrifuge template -----------------------------------------------------

TEST(FuzzRunTest, CentrifugeTemplateCompletesAndIsDeterministic) {
  const FuzzScenario s = GenerateScenario(4, FuzzTemplate::kCentrifuge);
  const FuzzOutcome outcome = RunFuzzCaseChecked(s);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_TRUE(outcome.run_completed);
  // Every pile is three robot transactions plus characterization passes.
  EXPECT_GE(outcome.steps_completed, s.piles);
}

// --- pinned regressions ------------------------------------------------------

// Seed 187 (first sweep): a dropped propose *response* leaves the server
// holding an accepted transaction the coordinator never learns about and so
// cannot cancel. The proposal-expiry backstop must terminalize it before
// the trace snapshot or nees-lint fails the run with a non-terminal
// transaction.
TEST(FuzzRegressionTest, Seed187OrphanedAcceptExpires) {
  const FuzzOutcome outcome = RunFuzzCaseChecked(GenerateScenario(187));
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
}

// Heaviest generated schedules from the first sweep: 8 mixed faults over
// the async engine at 19 sites (seed 49) and the sequential engine at the
// 32-site topology cap (seed 44).
TEST(FuzzRegressionTest, Seed49AsyncHeavyFaultSchedule) {
  const FuzzOutcome outcome = RunFuzzCaseChecked(GenerateScenario(49));
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
}

TEST(FuzzRegressionTest, Seed44MaxSitesHeavyFaultSchedule) {
  const FuzzOutcome outcome = RunFuzzCaseChecked(GenerateScenario(44));
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
}

// Standard seed 11 draws all seven fault kinds in one 13-fault schedule —
// wake drops, directed drops, outages, two crash/restarts, a corruption
// burst, a 1.8s clock jump and a mid-run credential expiry (35 token
// refreshes) over 14 sites on the sequential engine. The densest
// cross-class interaction schedule the first campaign sweep produced.
TEST(FuzzRegressionTest, Seed11AllSevenFaultClassesInteract) {
  const FuzzOutcome outcome = RunFuzzCaseChecked(GenerateScenario(11));
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_GT(outcome.frames_corrupted, 0u);
  EXPECT_GT(outcome.auth_refreshes, 0u);
  EXPECT_GT(outcome.site_crashes, 0u);
}

// Centrifuge seeds 3 and 120 (first campaign sweep): armed DropNext /
// CorruptNext counts don't drain on the operator link — there is no
// heartbeat traffic — so consecutive faults stacked 6 losses onto one
// transaction and exhausted the RPC retry ladder. Fixed by giving the
// teleoperation loop the same outer re-proposal ladder the MOST
// coordinator has (plus a generation-time loss budget); these seeds pin
// both sides of that fix.
TEST(FuzzRegressionTest, CentrifugeSeed3StackedDropBursts) {
  const FuzzOutcome outcome = RunFuzzCaseChecked(
      GenerateScenario(3, FuzzTemplate::kCentrifuge));
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
}

TEST(FuzzRegressionTest, CentrifugeSeed120OutagePlusCorruptBursts) {
  const FuzzOutcome outcome = RunFuzzCaseChecked(
      GenerateScenario(120, FuzzTemplate::kCentrifuge));
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_GT(outcome.frames_corrupted, 0u);
}

}  // namespace
}  // namespace nees::most
