// Tests for the deterministic simulation fuzzer (src/most/fuzz.h): scenario
// generation hygiene, the oracle stack on known seeds, same-seed byte
// determinism, and regression pins for the nastiest generated schedules.
#include <gtest/gtest.h>

#include "most/fuzz.h"

namespace nees::most {
namespace {

// --- scenario generation -----------------------------------------------------

TEST(FuzzScenarioTest, SameSeedSameScenario) {
  const FuzzScenario a = GenerateScenario(7);
  const FuzzScenario b = GenerateScenario(7);
  EXPECT_EQ(a.Describe(), b.Describe());
}

TEST(FuzzScenarioTest, DifferentSeedsDiffer) {
  EXPECT_NE(GenerateScenario(1).Describe(), GenerateScenario(2).Describe());
}

TEST(FuzzScenarioTest, ParametersStayInBounds) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const FuzzScenario s = GenerateScenario(seed);
    EXPECT_GE(s.sites, 3u) << seed;
    EXPECT_LE(s.sites, 32u) << seed;
    EXPECT_GE(s.steps, 8u) << seed;
    EXPECT_LE(s.steps, 24u) << seed;
    EXPECT_EQ(s.site_links.size(), s.sites) << seed;
    // kThreadPerSite would race the single-threaded virtual event loop.
    EXPECT_NE(s.engine, psd::StepEngine::kThreadPerSite) << seed;
    EXPECT_LE(s.faults.size(), 10u) << seed;
    for (const net::LinkModel& link : s.site_links) {
      EXPECT_LE(link.drop_probability, 0.05) << seed;
    }
    for (const FuzzFault& f : s.faults) {
      EXPECT_LT(f.site, s.sites) << seed;
      if (f.kind == FuzzFault::Kind::kOutage) {
        // Survivability bound: outages must stay under the retry span.
        EXPECT_LE(f.duration_micros, 1'500'000) << seed;
      }
    }
  }
}

TEST(FuzzScenarioTest, ReplayCommandFormatsMask) {
  EXPECT_EQ(ReplayCommand(187, 0xd), "nees_fuzz --seed 187 --fault-mask 0xd");
}

// --- oracle stack ------------------------------------------------------------

TEST(FuzzRunTest, ZeroFaultScenarioPassesAllOracles) {
  FuzzScenario s = GenerateScenario(3);
  s.faults.clear();
  const FuzzOutcome outcome = RunFuzzCaseChecked(s);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_TRUE(outcome.run_completed);
  // The central-difference loop consumes one motion sample to initialize.
  EXPECT_GE(outcome.steps_completed, s.steps - 1);
  EXPECT_GT(outcome.events_processed, 0u);
}

TEST(FuzzRunTest, SmallSeedBlockPassesAllOracles) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const FuzzOutcome outcome =
        RunFuzzCaseChecked(GenerateScenario(seed));
    EXPECT_TRUE(outcome.ok())
        << "seed " << seed << ": "
        << (outcome.failures.empty() ? "" : outcome.failures.front());
    EXPECT_TRUE(outcome.run_completed) << "seed " << seed;
  }
}

TEST(FuzzRunTest, FaultMaskDisablesFaults) {
  // Same seed with all faults masked off behaves like the zero-fault case:
  // it must still complete (the mask only ever removes adversity).
  const FuzzScenario s = GenerateScenario(5);
  ASSERT_FALSE(s.faults.empty());
  const FuzzOutcome outcome = RunFuzzCase(s, 0);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_EQ(outcome.net_totals.dropped_outage, 0u);
}

// Satellite: same fuzz seed twice in-process yields byte-identical span
// traces, metrics snapshots, and displacement histories.
TEST(FuzzRunTest, SameSeedIsByteIdentical) {
  const FuzzScenario s = GenerateScenario(11);
  const FuzzOutcome a = RunFuzzCase(s);
  const FuzzOutcome b = RunFuzzCase(s);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_EQ(a.metrics_table, b.metrics_table);
  EXPECT_EQ(a.history.displacement, b.history.displacement);
  EXPECT_EQ(a.history.velocity, b.history.velocity);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.wakes, b.wakes);
  EXPECT_EQ(a.heartbeats, b.heartbeats);
}

// --- crash/restart fault class -----------------------------------------------

TEST(FuzzScenarioTest, CrashFaultsRideAfterBaseFaults) {
  // The crash lane is forked independently and appended after the base
  // faults, so pre-existing (seed, fault-mask) repro commands keep their
  // bit meanings; crash downtime stays under the coordinator's re-proposal
  // tolerance so the completion oracle remains sound.
  std::size_t scenarios_with_crashes = 0;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const FuzzScenario s = GenerateScenario(seed);
    bool seen_crash = false;
    for (const FuzzFault& f : s.faults) {
      if (f.kind != FuzzFault::Kind::kSiteCrashRestart) {
        EXPECT_FALSE(seen_crash) << seed << ": crash before a base fault";
        continue;
      }
      seen_crash = true;
      EXPECT_GE(f.duration_micros, 250'000) << seed;
      EXPECT_LE(f.duration_micros, 1'200'000) << seed;
    }
    if (seen_crash) ++scenarios_with_crashes;
  }
  EXPECT_GT(scenarios_with_crashes, 0u);
}

TEST(FuzzRunTest, CrashRestartMidTransactionCompletes) {
  // Seed 25 kills a site while a transaction is executing: the revived
  // incarnation replays its WAL, crash-marks the in-flight transaction,
  // and the coordinator re-drives the step — all four oracles must hold.
  const FuzzScenario s = GenerateScenario(25);
  const FuzzOutcome outcome = RunFuzzCaseChecked(s);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_TRUE(outcome.run_completed);
  EXPECT_GT(outcome.site_crashes, 0u);
  EXPECT_EQ(outcome.site_recoveries, outcome.site_crashes);
  EXPECT_GT(outcome.transactions_recovered, 0u);
  EXPECT_GE(outcome.inflight_failed, 1u);  // died mid-execute
}

TEST(FuzzRunTest, CrashStatsAreDeterministic) {
  const FuzzScenario s = GenerateScenario(25);
  const FuzzOutcome a = RunFuzzCase(s);
  const FuzzOutcome b = RunFuzzCase(s);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_EQ(a.site_crashes, b.site_crashes);
  EXPECT_EQ(a.site_recoveries, b.site_recoveries);
  EXPECT_EQ(a.transactions_recovered, b.transactions_recovered);
  EXPECT_EQ(a.inflight_failed, b.inflight_failed);
}

TEST(FuzzRunTest, MaskingCrashBitsDisablesCrashes) {
  const FuzzScenario s = GenerateScenario(25);
  std::uint64_t mask = kAllFaults;
  for (std::size_t i = 0; i < s.faults.size() && i < 64; ++i) {
    if (s.faults[i].kind == FuzzFault::Kind::kSiteCrashRestart) {
      mask &= ~(1ULL << i);
    }
  }
  const FuzzOutcome outcome = RunFuzzCase(s, mask);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
  EXPECT_EQ(outcome.site_crashes, 0u);
  EXPECT_EQ(outcome.transactions_recovered, 0u);
}

// --- pinned regressions ------------------------------------------------------

// Seed 187 (first sweep): a dropped propose *response* leaves the server
// holding an accepted transaction the coordinator never learns about and so
// cannot cancel. The proposal-expiry backstop must terminalize it before
// the trace snapshot or nees-lint fails the run with a non-terminal
// transaction.
TEST(FuzzRegressionTest, Seed187OrphanedAcceptExpires) {
  const FuzzOutcome outcome = RunFuzzCaseChecked(GenerateScenario(187));
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
}

// Heaviest generated schedules from the first sweep: 8 mixed faults over
// the async engine at 19 sites (seed 49) and the sequential engine at the
// 32-site topology cap (seed 44).
TEST(FuzzRegressionTest, Seed49AsyncHeavyFaultSchedule) {
  const FuzzOutcome outcome = RunFuzzCaseChecked(GenerateScenario(49));
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
}

TEST(FuzzRegressionTest, Seed44MaxSitesHeavyFaultSchedule) {
  const FuzzOutcome outcome = RunFuzzCaseChecked(GenerateScenario(44));
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? ""
                                    : outcome.failures.front());
}

}  // namespace
}  // namespace nees::most
