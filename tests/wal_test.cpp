// Tests for the write-ahead log layer (src/wal): framing round-trips, the
// torn-tail / bad-CRC distinction Open() draws between a crash and real
// corruption, the MemoryStorage crash model the fuzzer leans on, and the
// FileStorage durability path.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/result.h"
#include "wal/wal.h"

namespace nees::wal {
namespace {

std::vector<std::uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

// --- Framing ----------------------------------------------------------------

TEST(WalLogTest, EmptyLogRecoversToFreshState) {
  MemoryStorage storage;
  Log log(&storage);
  auto records = log.Open();
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_TRUE(records->empty());
  EXPECT_EQ(log.open_stats().records, 0u);
  EXPECT_EQ(log.open_stats().bytes, 0u);
  EXPECT_EQ(log.open_stats().truncated_bytes, 0u);
}

TEST(WalLogTest, AppendSyncReopenRoundTrips) {
  MemoryStorage storage;
  {
    Log log(&storage);
    ASSERT_TRUE(log.Open().ok());
    ASSERT_TRUE(log.Append(1, Bytes({0xde, 0xad})).ok());
    ASSERT_TRUE(log.Append(2, {}).ok());
    ASSERT_TRUE(log.Append(7, Bytes({0x01, 0x02, 0x03})).ok());
    ASSERT_TRUE(log.Sync().ok());
  }
  Log reopened(&storage);
  auto records = reopened.Open();
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].type, 1);
  EXPECT_EQ((*records)[0].payload, Bytes({0xde, 0xad}));
  EXPECT_EQ((*records)[1].type, 2);
  EXPECT_TRUE((*records)[1].payload.empty());
  EXPECT_EQ((*records)[2].type, 7);
  EXPECT_EQ((*records)[2].payload, Bytes({0x01, 0x02, 0x03}));
  EXPECT_EQ(reopened.open_stats().truncated_bytes, 0u);
}

TEST(WalLogTest, TornFinalRecordIsTruncatedNotFatal) {
  MemoryStorage storage;
  Log log(&storage);
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.Append(1, Bytes({0xaa, 0xbb, 0xcc})).ok());
  ASSERT_TRUE(log.Append(2, Bytes({0xdd, 0xee})).ok());
  ASSERT_TRUE(log.Sync().ok());
  const std::size_t full = storage.size();
  // Cut the last frame mid-body: crash between append and sync.
  storage.ForceTruncate(full - 1);

  Log reopened(&storage);
  auto records = reopened.Open();
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].type, 1);
  EXPECT_GT(reopened.open_stats().truncated_bytes, 0u);
  // The torn tail is gone from storage too, so appends go to a clean edge.
  EXPECT_EQ(storage.size(), reopened.open_stats().bytes);
}

TEST(WalLogTest, TornHeaderIsTruncatedNotFatal) {
  MemoryStorage storage;
  Log log(&storage);
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.Append(1, Bytes({0x11})).ok());
  const std::size_t first = storage.size();
  ASSERT_TRUE(log.Append(2, Bytes({0x22})).ok());
  ASSERT_TRUE(log.Sync().ok());
  // Leave only 3 bytes of the second frame's 8-byte header.
  storage.ForceTruncate(first + 3);

  Log reopened(&storage);
  auto records = reopened.Open();
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ(reopened.open_stats().truncated_bytes, 3u);
}

TEST(WalLogTest, CrcCorruptRecordAbortsWithDataLoss) {
  MemoryStorage storage;
  Log log(&storage);
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.Append(1, Bytes({0x10, 0x20, 0x30})).ok());
  ASSERT_TRUE(log.Append(2, Bytes({0x40})).ok());
  ASSERT_TRUE(log.Sync().ok());
  // Flip a bit inside the *first* record's payload: a complete frame whose
  // CRC no longer matches is damage, not a torn tail.
  storage.CorruptByte(9);

  Log reopened(&storage);
  auto records = reopened.Open();
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), util::ErrorCode::kDataLoss);
  EXPECT_NE(records.status().message().find("CRC"), std::string::npos)
      << records.status().ToString();
}

TEST(WalLogTest, DoubleOpenIsIdempotent) {
  MemoryStorage storage;
  Log log(&storage);
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.Append(3, Bytes({0x01})).ok());
  ASSERT_TRUE(log.Sync().ok());

  Log first(&storage);
  auto a = first.Open();
  ASSERT_TRUE(a.ok());
  Log second(&storage);
  auto b = second.Open();
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  EXPECT_EQ((*a)[0].type, (*b)[0].type);
  EXPECT_EQ((*a)[0].payload, (*b)[0].payload);
}

// --- MemoryStorage crash model ----------------------------------------------

TEST(MemoryStorageTest, CrashDropsUnsyncedTailAndSwallowsWrites) {
  MemoryStorage storage;
  Log log(&storage);
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.Append(1, Bytes({0x01})).ok());
  ASSERT_TRUE(log.Sync().ok());
  ASSERT_TRUE(log.Append(2, Bytes({0x02})).ok());  // never synced

  storage.Crash();
  EXPECT_EQ(storage.size(), storage.synced_size());
  // A dead process's zombie stack frames must not observe write errors.
  EXPECT_TRUE(log.Append(3, Bytes({0x03})).ok());
  EXPECT_TRUE(log.Sync().ok());
  EXPECT_EQ(storage.size(), storage.synced_size());

  storage.Revive();
  Log reopened(&storage);
  auto records = reopened.Open();
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);  // only the synced record survived
  EXPECT_EQ((*records)[0].type, 1);
}

TEST(MemoryStorageTest, ReviveReadmitsWrites) {
  MemoryStorage storage;
  storage.Crash();
  storage.Revive();
  Log log(&storage);
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.Append(5, Bytes({0x55})).ok());
  ASSERT_TRUE(log.Sync().ok());
  EXPECT_EQ(storage.synced_size(), storage.size());
  EXPECT_GT(storage.size(), 0u);
}

// --- FileStorage -------------------------------------------------------------

TEST(FileStorageTest, RoundTripsThroughAFile) {
  const std::string path =
      ::testing::TempDir() + "/nees_wal_test_roundtrip.wal";
  std::remove(path.c_str());
  {
    FileStorage storage(path);
    Log log(&storage);
    ASSERT_TRUE(log.Open().ok());
    ASSERT_TRUE(log.Append(9, Bytes({0x09, 0x0a})).ok());
    ASSERT_TRUE(log.Sync().ok());
  }
  FileStorage storage(path);
  Log log(&storage);
  auto records = log.Open();
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].type, 9);
  EXPECT_EQ((*records)[0].payload, Bytes({0x09, 0x0a}));
  std::remove(path.c_str());
}

TEST(FileStorageTest, TornTailOnDiskIsTruncated) {
  const std::string path = ::testing::TempDir() + "/nees_wal_test_torn.wal";
  std::remove(path.c_str());
  std::size_t full = 0;
  {
    FileStorage storage(path);
    Log log(&storage);
    ASSERT_TRUE(log.Open().ok());
    ASSERT_TRUE(log.Append(1, Bytes({0x01})).ok());
    ASSERT_TRUE(log.Append(2, Bytes({0x02, 0x03})).ok());
    ASSERT_TRUE(log.Sync().ok());
    auto loaded = storage.Load();
    ASSERT_TRUE(loaded.ok());
    full = loaded->size();
    ASSERT_TRUE(storage.Truncate(full - 2).ok());
  }
  FileStorage storage(path);
  Log log(&storage);
  auto records = log.Open();
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ(log.open_stats().bytes + log.open_stats().truncated_bytes,
            full - 2);
  std::remove(path.c_str());
}

// --- CRC vector --------------------------------------------------------------

TEST(WalCrcTest, MatchesKnownVector) {
  // CRC-32("123456789") == 0xCBF43926 (IEEE 802.3 check value).
  const std::string s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
            0xCBF43926u);
}

}  // namespace
}  // namespace nees::wal
