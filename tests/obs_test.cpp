// Tests for the observability layer: metrics registry semantics, span
// nesting (implicit per-thread and explicit cross-thread parents), modeled
// clock advancement, JSON-lines export round-trips, the breakdown report,
// and the coordinator integration (every PSD step span carries per-site
// child spans, deterministically across runs).
#include <thread>

#include <gtest/gtest.h>

#include "most/most.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace nees {
namespace {

// --- MetricsRegistry -----------------------------------------------------------

TEST(MetricsTest, CountersGaugesAndHistograms) {
  obs::MetricsRegistry metrics;
  metrics.Increment("steps");
  metrics.Increment("steps", 4);
  EXPECT_EQ(metrics.CounterValue("steps"), 5);
  EXPECT_EQ(metrics.CounterValue("unknown"), 0);

  metrics.SetGauge("drift_mm", 1.25);
  EXPECT_DOUBLE_EQ(metrics.GaugeValue("drift_mm"), 1.25);

  for (int i = 1; i <= 100; ++i) metrics.Observe("latency", i);
  const util::SampleStats latency = metrics.HistogramValue("latency");
  EXPECT_EQ(latency.count(), 100u);
  EXPECT_DOUBLE_EQ(latency.mean(), 50.5);
  EXPECT_DOUBLE_EQ(latency.Percentile(50), 50.5);    // interpolated
  EXPECT_DOUBLE_EQ(latency.Percentile(95), 95.05);
  EXPECT_DOUBLE_EQ(latency.max(), 100.0);

  const obs::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.counters.at("steps"), 5);
  EXPECT_EQ(snapshot.histograms.at("latency").count(), 100u);
  EXPECT_NE(metrics.ReportTable().find("latency"), std::string::npos);

  metrics.Clear();
  EXPECT_EQ(metrics.CounterValue("steps"), 0);
  EXPECT_EQ(metrics.HistogramValue("latency").count(), 0u);
}

// --- span nesting --------------------------------------------------------------

TEST(TracerTest, ImplicitNestingFollowsThreadStack) {
  util::SimClock sim;
  obs::Tracer tracer(&sim);
  {
    obs::Span outer = tracer.StartSpan("outer", "step");
    sim.Advance(10);
    {
      obs::Span inner = tracer.StartSpan("inner", "protocol");
      sim.Advance(5);
      EXPECT_EQ(tracer.CurrentSpanId(), inner.id());
    }
    EXPECT_EQ(tracer.CurrentSpanId(), outer.id());
  }
  EXPECT_EQ(tracer.CurrentSpanId(), 0u);

  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[0].DurationMicros(), 15);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(spans[1].DurationMicros(), 5);
}

TEST(TracerTest, ExplicitParentCrossesThreads) {
  util::SimClock sim;
  obs::Tracer tracer(&sim);
  obs::Span root = tracer.StartSpan("root", "step");

  // The MPlugin hand-off shape: the consumer thread opens a span under a
  // parent it never started itself.
  std::uint64_t child_id = 0;
  std::thread backend([&] {
    child_id = tracer.BeginSpanId("compute", "simulation", root.id());
    tracer.AddTagById(child_id, "txn", "t-1");
    tracer.EndSpanId(child_id);
  });
  backend.join();
  root.End();

  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].id, child_id);
  EXPECT_EQ(spans[1].parent_id, root.id());
  ASSERT_EQ(spans[1].tags.size(), 1u);
  EXPECT_EQ(spans[1].tags[0].first, "txn");
}

TEST(TracerTest, EventsAndIntervalsAttachToParents) {
  util::SimClock sim;
  obs::Tracer tracer(&sim);
  obs::Span root = tracer.StartSpan("root", "step");
  tracer.RecordEvent("ev", "network");                       // implicit parent
  tracer.RecordEventUnder(root.id(), "ev2", "network");      // explicit
  tracer.RecordInterval(root.id(), "dwell", "queue", 3, 9);  // measured
  root.End();

  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].parent_id, root.id());
  }
  EXPECT_EQ(spans[3].DurationMicros(), 6);
}

// --- modeled clock -------------------------------------------------------------

TEST(TracerTest, ModeledDelaysAdvanceTheSimClock) {
  util::SimClock sim;
  obs::Tracer tracer(&sim, &sim);
  const std::int64_t t0 = sim.NowMicros();

  obs::Span transfer = tracer.StartSpan("transfer", "network");
  transfer.AddModeledMicros(20'000);
  transfer.End();
  EXPECT_EQ(sim.NowMicros(), t0 + 20'000);

  // A modeled event is a closed span whose duration IS the modeled delay.
  tracer.RecordEvent("settle", "settle", 5'000);
  EXPECT_EQ(sim.NowMicros(), t0 + 25'000);

  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].DurationMicros(), 20'000);
  EXPECT_EQ(spans[0].modeled_micros, 20'000);
  EXPECT_EQ(spans[1].DurationMicros(), 5'000);
}

// --- export / parse ------------------------------------------------------------

TEST(TracerTest, JsonLinesRoundTrip) {
  util::SimClock sim;
  obs::Tracer tracer(&sim, &sim);
  {
    obs::Span outer = tracer.StartSpan("step", "step");
    outer.AddTag("site", "UIUC");
    outer.AddTag("quote\"backslash\\", "line\nbreak\ttab");
    tracer.RecordEvent("net.deliver", "network", 1'500,
                       {{"from", "a"}, {"to", "b"}});
  }
  obs::Span open = tracer.StartSpan("open", "step");  // exported as zero-length

  const std::string text = tracer.ExportJsonLines();
  const auto parsed = obs::ParseJsonLines(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();

  const std::vector<obs::SpanRecord> original = tracer.Snapshot();
  ASSERT_EQ(parsed->size(), original.size());
  EXPECT_EQ((*parsed)[0], original[0]);
  EXPECT_EQ((*parsed)[1], original[1]);
  // The open span is exported with end == start, not the sentinel -1.
  EXPECT_EQ((*parsed)[2].end_micros, (*parsed)[2].start_micros);
  open.End();
}

TEST(TracerTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(obs::ParseJsonLines("{\"id\":}").ok());
  EXPECT_FALSE(obs::ParseJsonLines("not json at all").ok());
  EXPECT_FALSE(
      obs::ParseJsonLines("{\"id\":1,\"parent\":0,\"name\":\"x\"}").ok());
}

TEST(TracerTest, BreakdownReportsExclusiveTime) {
  util::SimClock sim;
  obs::Tracer tracer(&sim, &sim);
  {
    obs::Span step = tracer.StartSpan("step", "step");
    tracer.RecordEvent("transfer", "network", 40'000);
    tracer.RecordEvent("settle", "settle", 60'000);
  }
  const std::string table = tracer.BreakdownTable();
  // The step span's 100 ms are all accounted to its children: settle 60%,
  // network 40%, step 0%.
  EXPECT_NE(table.find("settle"), std::string::npos);
  EXPECT_NE(table.find("60.0%"), std::string::npos);
  EXPECT_NE(table.find("40.0%"), std::string::npos);
  EXPECT_NE(table.find(" 0.0%"), std::string::npos);
}

// --- coordinator integration ---------------------------------------------------

class ObsMostTest : public ::testing::Test {
 protected:
  // Small all-simulation MOST deployment: deterministic and fast, but the
  // full coordinator -> NTCP -> plugin path.
  static most::MostOptions Options(obs::Tracer* tracer) {
    most::MostOptions options;
    options.steps = 10;
    options.hybrid = false;
    options.with_repository = false;
    options.with_streaming = false;
    options.tracer = tracer;
    return options;
  }

  // Fresh clock, tracer, network and experiment per call: two invocations
  // share no state, so identical output means the trace is deterministic.
  static std::string RunTraced(std::size_t* span_count = nullptr) {
    util::SimClock sim;
    obs::Tracer tracer(&sim, &sim);
    net::Network network;
    network.SetClock(&sim);
    net::LinkModel wan;
    wan.latency_micros = 15'000;
    network.SetDefaultLink(wan);
    most::MostExperiment experiment(&network, &sim, Options(&tracer));
    auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "obs-run");
    EXPECT_TRUE(report.ok());
    if (report.ok()) {
      EXPECT_TRUE(report->completed);
    }
    if (span_count != nullptr) *span_count = tracer.span_count();
    return tracer.ExportJsonLines();
  }
};

TEST_F(ObsMostTest, EveryStepSpanCarriesPerSiteChildren) {
  util::SimClock sim;
  obs::Tracer tracer(&sim, &sim);
  net::Network network;
  network.SetClock(&sim);
  most::MostExperiment experiment(&network, &sim, Options(&tracer));
  auto report = experiment.Run(psd::FaultPolicy::kFaultTolerant, "obs-run");
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed);

  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  std::vector<std::uint64_t> step_ids;
  std::map<std::uint64_t, int> proposes, executes;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "psd.step") step_ids.push_back(span.id);
    if (span.name == "site.propose") ++proposes[span.parent_id];
    if (span.name == "site.execute") ++executes[span.parent_id];
  }
  ASSERT_EQ(step_ids.size(), report->steps_completed);
  for (const std::uint64_t id : step_ids) {
    EXPECT_EQ(proposes[id], 3) << "step span " << id;  // UIUC, NCSA, CU
    EXPECT_EQ(executes[id], 3) << "step span " << id;
  }
  EXPECT_EQ(tracer.metrics().CounterValue("psd.steps"),
            static_cast<std::int64_t>(report->steps_completed));
  EXPECT_EQ(tracer.metrics().CounterValue("ntcp.server.proposals"),
            static_cast<std::int64_t>(3 * report->steps_completed));
}

TEST_F(ObsMostTest, TwoSeededRunsExportIdenticalTraces) {
  std::size_t spans_a = 0;
  const std::string trace_a = RunTraced(&spans_a);
  const std::string trace_b = RunTraced();

  EXPECT_GT(spans_a, 10u * 7u);  // step + 6 site spans per step at least
  EXPECT_EQ(trace_a, trace_b);
}

}  // namespace
}  // namespace nees
