// Tests for the data/metadata repository: FileStore, GridFTP-sim transfers
// (integrity, striping, fault recovery), NMDS (schemas as first-class
// objects, versioning, authorization), NFMS (logical names, negotiation,
// transport plugins), the facade, ingestion from DAQ drops, and the https
// bridge.
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "daq/daq.h"
#include "net/network.h"
#include "repo/facade.h"
#include "repo/filestore.h"
#include "repo/gridftp.h"
#include "repo/nfms.h"
#include "repo/nmds.h"
#include "util/rng.h"

namespace nees::repo {
namespace {

using util::ErrorCode;

Bytes RandomContent(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  Bytes content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng.NextU64());
  return content;
}

// --- FileStore -----------------------------------------------------------------

TEST(FileStoreTest, PutGetListRemove) {
  FileStore store;
  store.Put("a/x", {1, 2, 3});
  store.Put("a/y", {4});
  store.Put("b/z", {5});
  EXPECT_TRUE(store.Exists("a/x"));
  EXPECT_EQ(store.Get("a/x")->size(), 3u);
  EXPECT_EQ(*store.Size("a/y"), 1u);
  EXPECT_EQ(store.List("a/").size(), 2u);
  EXPECT_EQ(store.count(), 3u);
  EXPECT_EQ(store.total_bytes(), 5u);
  EXPECT_TRUE(store.Remove("b/z").ok());
  EXPECT_EQ(store.Remove("b/z").code(), ErrorCode::kNotFound);
  EXPECT_EQ(store.Get("b/z").status().code(), ErrorCode::kNotFound);
}

// --- GridFTP-sim ----------------------------------------------------------------

class GridFtpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<GridFtpServer>(&network_, "gftp.ncsa",
                                              &store_);
    ASSERT_TRUE(server_->Start().ok());
    rpc_ = std::make_unique<net::RpcClient>(&network_, "client");
  }

  net::Network network_;
  FileStore store_;
  std::unique_ptr<GridFtpServer> server_;
  std::unique_ptr<net::RpcClient> rpc_;
};

TEST_F(GridFtpTest, DownloadRoundTrip) {
  const Bytes content = RandomContent(100'000, 1);
  store_.Put("data/run1.bin", content);
  GridFtpClient client(rpc_.get());
  auto downloaded = client.Download("gftp.ncsa", "data/run1.bin");
  ASSERT_TRUE(downloaded.ok());
  EXPECT_EQ(*downloaded, content);
  EXPECT_EQ(client.last_report().bytes, content.size());
  EXPECT_GT(client.last_report().chunks, 1);
}

TEST_F(GridFtpTest, UploadRoundTrip) {
  const Bytes content = RandomContent(50'000, 2);
  GridFtpClient client(rpc_.get());
  ASSERT_TRUE(client.Upload("gftp.ncsa", "up/f.bin", content).ok());
  EXPECT_EQ(*store_.Get("up/f.bin"), content);
  EXPECT_EQ(server_->pending_uploads(), 0u);
}

TEST_F(GridFtpTest, EmptyFileTransfers) {
  store_.Put("empty", {});
  GridFtpClient client(rpc_.get());
  auto downloaded = client.Download("gftp.ncsa", "empty");
  ASSERT_TRUE(downloaded.ok());
  EXPECT_TRUE(downloaded->empty());
  ASSERT_TRUE(client.Upload("gftp.ncsa", "empty2", {}).ok());
  EXPECT_TRUE(store_.Exists("empty2"));
}

TEST_F(GridFtpTest, MissingFileIsNotFound) {
  GridFtpClient client(rpc_.get());
  EXPECT_EQ(client.Download("gftp.ncsa", "nope").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(GridFtpTest, ChunkRetriesRideOutTransientLoss) {
  const Bytes content = RandomContent(200'000, 3);
  store_.Put("flaky.bin", content);
  // 10% random loss on both directions.
  net::LinkModel lossy;
  lossy.drop_probability = 0.10;
  network_.SetLink("client", "gftp.ncsa", lossy);
  network_.SetLink("gftp.ncsa", "client", lossy);

  TransferOptions options;
  options.chunk_retries = 10;
  GridFtpClient client(rpc_.get(), options);
  auto downloaded = client.Download("gftp.ncsa", "flaky.bin");
  ASSERT_TRUE(downloaded.ok());
  EXPECT_EQ(*downloaded, content);
  EXPECT_GT(client.last_report().retried_chunks, 0);
}

TEST_F(GridFtpTest, StreamCountAffectsChunkInterleaving) {
  const Bytes content = RandomContent(64 * 1024, 4);
  store_.Put("striped.bin", content);
  for (int streams : {1, 2, 8}) {
    TransferOptions options;
    options.streams = streams;
    options.chunk_bytes = 4096;
    GridFtpClient client(rpc_.get(), options);
    auto downloaded = client.Download("gftp.ncsa", "striped.bin");
    ASSERT_TRUE(downloaded.ok()) << "streams=" << streams;
    EXPECT_EQ(*downloaded, content) << "streams=" << streams;
    EXPECT_EQ(client.last_report().chunks, 16);
  }
}

TEST_F(GridFtpTest, UploadChecksumMismatchRejected) {
  // Open a transfer claiming one digest, send different bytes: commit fails
  // and nothing is installed.
  util::ByteWriter open_writer;
  open_writer.WriteString("target");
  open_writer.WriteU64(3);
  open_writer.WriteString(ContentDigest({9, 9, 9}));
  auto open_reply = rpc_->Call("gftp.ncsa", "gftp.openWrite",
                               open_writer.Take());
  ASSERT_TRUE(open_reply.ok());
  util::ByteReader open_reader(*open_reply);
  const std::string transfer_id = *open_reader.ReadString();

  util::ByteWriter chunk_writer;
  chunk_writer.WriteString(transfer_id);
  chunk_writer.WriteU64(0);
  chunk_writer.WriteBytes({1, 2, 3});
  ASSERT_TRUE(
      rpc_->Call("gftp.ncsa", "gftp.writeChunk", chunk_writer.Take()).ok());

  util::ByteWriter commit_writer;
  commit_writer.WriteString(transfer_id);
  auto commit =
      rpc_->Call("gftp.ncsa", "gftp.commit", commit_writer.Take());
  EXPECT_EQ(commit.status().code(), ErrorCode::kDataLoss);
  EXPECT_FALSE(store_.Exists("target"));
}

TEST_F(GridFtpTest, ChunkPastDeclaredSizeRejected) {
  util::ByteWriter open_writer;
  open_writer.WriteString("t2");
  open_writer.WriteU64(2);
  open_writer.WriteString(ContentDigest({1, 2}));
  auto open_reply =
      rpc_->Call("gftp.ncsa", "gftp.openWrite", open_writer.Take());
  ASSERT_TRUE(open_reply.ok());
  util::ByteReader reader(*open_reply);
  const std::string transfer_id = *reader.ReadString();

  util::ByteWriter chunk_writer;
  chunk_writer.WriteString(transfer_id);
  chunk_writer.WriteU64(1);
  chunk_writer.WriteBytes({7, 7, 7});  // 1+3 > 2
  EXPECT_EQ(rpc_->Call("gftp.ncsa", "gftp.writeChunk", chunk_writer.Take())
                .status()
                .code(),
            ErrorCode::kOutOfRange);
}

// --- NMDS -----------------------------------------------------------------------

TEST(NmdsTest, PutGetAndVersionHistory) {
  NmdsService nmds;
  MetadataObject object;
  object.id = "most.experiment";
  object.type = "experiment";
  object.fields["title"] = "MOST";
  ASSERT_EQ(*nmds.Put(object, "/O=NEES/CN=spencer"), 1);

  object.fields["title"] = "MOST (revised)";
  ASSERT_EQ(*nmds.Put(object, "/O=NEES/CN=spencer"), 2);

  auto latest = nmds.Get("most.experiment");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->fields.at("title"), "MOST (revised)");
  EXPECT_EQ(latest->version, 2);
  EXPECT_EQ(latest->owner, "/O=NEES/CN=spencer");

  auto v1 = nmds.GetVersion("most.experiment", 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->fields.at("title"), "MOST");
  EXPECT_EQ(nmds.VersionCount("most.experiment"), 2);
  EXPECT_EQ(nmds.GetVersion("most.experiment", 3).status().code(),
            ErrorCode::kOutOfRange);
}

TEST(NmdsTest, PerObjectAuthorization) {
  NmdsService nmds;
  MetadataObject object;
  object.id = "obj";
  object.type = "t";
  ASSERT_TRUE(nmds.Put(object, "alice").ok());

  // Non-owner cannot update.
  EXPECT_EQ(nmds.Put(object, "bob").status().code(),
            ErrorCode::kPermissionDenied);
  // Owner grants write; bob can now update.
  EXPECT_EQ(nmds.GrantWrite("obj", "bob", "carol").code(),
            ErrorCode::kPermissionDenied);  // only owner may grant
  ASSERT_TRUE(nmds.GrantWrite("obj", "alice", "bob").ok());
  EXPECT_TRUE(nmds.Put(object, "bob").ok());
  // Ownership does not transfer.
  EXPECT_EQ(nmds.Get("obj")->owner, "alice");
}

TEST(NmdsTest, SchemasAreFirstClassVersionedObjects) {
  NmdsService nmds;
  MetadataObject schema;
  schema.id = "schema.daq";
  schema.type = "schema";
  schema.fields["field.site"] = "string";
  schema.fields["field.samples"] = "number";
  schema.fields["field.note"] = "optional-string";
  ASSERT_TRUE(nmds.Put(schema, "admin").ok());

  MetadataObject good;
  good.id = "data1";
  good.type = "daq-data";
  good.fields["schema"] = "schema.daq";
  good.fields["site"] = "UIUC";
  good.fields["samples"] = "1500";
  EXPECT_TRUE(nmds.Put(good, "ingest").ok());

  MetadataObject missing_field = good;
  missing_field.id = "data2";
  missing_field.fields.erase("site");
  EXPECT_EQ(nmds.Put(missing_field, "ingest").status().code(),
            ErrorCode::kFailedPrecondition);

  MetadataObject bad_number = good;
  bad_number.id = "data3";
  bad_number.fields["samples"] = "lots";
  EXPECT_EQ(nmds.Put(bad_number, "ingest").status().code(),
            ErrorCode::kFailedPrecondition);

  // Evolve the schema (new version relaxes nothing, adds a field) — the
  // schema object itself is versioned like any other.
  schema.fields["field.units"] = "optional-string";
  ASSERT_EQ(*nmds.Put(schema, "admin"), 2);
  EXPECT_EQ(nmds.VersionCount("schema.daq"), 2);

  // Validation uses the latest schema version.
  MetadataObject with_units = good;
  with_units.id = "data4";
  with_units.fields["units"] = "m";
  EXPECT_TRUE(nmds.Put(with_units, "ingest").ok());
}

TEST(NmdsTest, UnknownSchemaRejected) {
  NmdsService nmds;
  MetadataObject object;
  object.id = "x";
  object.type = "t";
  object.fields["schema"] = "schema.none";
  EXPECT_EQ(nmds.Put(object, "a").status().code(), ErrorCode::kNotFound);
}

TEST(NmdsTest, QueryByType) {
  NmdsService nmds;
  for (int i = 0; i < 3; ++i) {
    MetadataObject object;
    object.id = "d" + std::to_string(i);
    object.type = i < 2 ? "daq-data" : "experiment";
    ASSERT_TRUE(nmds.Put(object, "a").ok());
  }
  EXPECT_EQ(nmds.Query("daq-data").size(), 2u);
  EXPECT_EQ(nmds.Query("").size(), 3u);
}

TEST(NmdsTest, RpcSurfaceCarriesSubject) {
  net::Network network;
  net::RpcServer server(&network, "repo.nmds");
  ASSERT_TRUE(server.Start().ok());
  server.SetAuthenticator(
      [](const std::string& token, const std::string&)
          -> util::Result<std::string> { return token; });  // token = subject
  NmdsService nmds;
  nmds.BindRpc(server);

  net::RpcClient alice_rpc(&network, "alice.rpc");
  alice_rpc.SetAuthToken("alice");
  NmdsClient alice(&alice_rpc, "repo.nmds");
  MetadataObject object;
  object.id = "remote.obj";
  object.type = "t";
  ASSERT_TRUE(alice.Put(object).ok());

  net::RpcClient bob_rpc(&network, "bob.rpc");
  bob_rpc.SetAuthToken("bob");
  NmdsClient bob(&bob_rpc, "repo.nmds");
  EXPECT_EQ(bob.Put(object).status().code(), ErrorCode::kPermissionDenied);
  auto fetched = bob.Get("remote.obj");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->owner, "alice");
}

// --- NFMS -----------------------------------------------------------------------

class NfmsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<net::RpcServer>(&network_, "repo.nfms");
    ASSERT_TRUE(server_->Start().ok());
    nfms_.BindRpc(*server_);
    gftp_server_ = std::make_unique<GridFtpServer>(&network_, "gftp.repo",
                                                   &store_);
    ASSERT_TRUE(gftp_server_->Start().ok());
    rpc_ = std::make_unique<net::RpcClient>(&network_, "app");
  }

  FileEntry MakeEntry(const std::string& logical, const Bytes& content) {
    store_.Put("phys/" + logical, content);
    FileEntry entry;
    entry.logical_name = logical;
    entry.server_endpoint = "gftp.repo";
    entry.physical_path = "phys/" + logical;
    entry.size_bytes = content.size();
    entry.sha256hex = ContentDigest(content);
    return entry;
  }

  net::Network network_;
  NfmsService nfms_;
  FileStore store_;
  std::unique_ptr<net::RpcServer> server_;
  std::unique_ptr<GridFtpServer> gftp_server_;
  std::unique_ptr<net::RpcClient> rpc_;
};

TEST_F(NfmsTest, NegotiateAndFetchThroughPlugin) {
  const Bytes content = RandomContent(10'000, 5);
  nfms_.RegisterFile(MakeEntry("most/data.csv", content));

  NfmsClient client(rpc_.get(), "repo.nfms");
  client.RegisterTransport(std::make_unique<GridFtpTransport>(rpc_.get()));
  auto fetched = client.Fetch("most/data.csv");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, content);
}

TEST_F(NfmsTest, UnknownLogicalNameFails) {
  NfmsClient client(rpc_.get(), "repo.nfms");
  client.RegisterTransport(std::make_unique<GridFtpTransport>(rpc_.get()));
  EXPECT_EQ(client.Fetch("nope").status().code(), ErrorCode::kNotFound);
}

TEST_F(NfmsTest, NegotiationRejectsUnsupportedProtocol) {
  nfms_.RegisterFile(MakeEntry("f", {1}));
  auto ticket = nfms_.Negotiate("f", {"carrier-pigeon"});
  EXPECT_EQ(ticket.status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(nfms_.Negotiate("f", {"gridftp-sim"}).ok());
  EXPECT_TRUE(nfms_.Negotiate("f", {}).ok());
}

TEST_F(NfmsTest, TransportPluginApiAllowsAlternateProtocols) {
  // A custom in-memory transport demonstrates the plug-in API.
  class LoopbackTransport final : public TransportPlugin {
   public:
    explicit LoopbackTransport(FileStore* store) : store_(store) {}
    util::Result<Bytes> Fetch(const TransferTicket& ticket) override {
      return store_->Get(ticket.physical_path);
    }
    util::Status Store(const TransferTicket& ticket,
                       const Bytes& content) override {
      store_->Put(ticket.physical_path, content);
      return util::OkStatus();
    }
    std::string_view protocol() const override { return "loopback"; }

   private:
    FileStore* store_;
  };

  FileEntry entry = MakeEntry("alt", {42});
  entry.protocol = "loopback";
  nfms_.RegisterFile(entry);

  NfmsClient client(rpc_.get(), "repo.nfms");
  client.RegisterTransport(std::make_unique<LoopbackTransport>(&store_));
  auto fetched = client.Fetch("alt");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, Bytes{42});
}

TEST_F(NfmsTest, ListByPrefix) {
  nfms_.RegisterFile(MakeEntry("most/a", {1}));
  nfms_.RegisterFile(MakeEntry("most/b", {2}));
  nfms_.RegisterFile(MakeEntry("mini/c", {3}));
  NfmsClient client(rpc_.get(), "repo.nfms");
  auto listed = client.List("most/");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 2u);
}

// --- Facade / ingestion / https bridge ----------------------------------------------

class FacadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    facade_ = std::make_unique<RepositoryFacade>(&network_, "repo.ncsa");
    ASSERT_TRUE(facade_->Start().ok());
    rpc_ = std::make_unique<net::RpcClient>(&network_, "tool");
  }

  net::Network network_;
  std::unique_ptr<RepositoryFacade> facade_;
  std::unique_ptr<net::RpcClient> rpc_;
};

TEST_F(FacadeTest, IngestThenFetch) {
  const Bytes content = RandomContent(5000, 6);
  ASSERT_TRUE(facade_
                  ->Ingest("most/run1.csv", content, "daq-data",
                           {{"site", "UIUC"}})
                  .ok());
  auto fetched = facade_->Fetch("most/run1.csv");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, content);

  auto metadata = facade_->nmds().Get("file:most/run1.csv");
  ASSERT_TRUE(metadata.ok());
  EXPECT_EQ(metadata->fields.at("site"), "UIUC");
  EXPECT_EQ(metadata->fields.at("sha256"), ContentDigest(content));
}

TEST_F(FacadeTest, IngestionToolUploadsDaqDropFiles) {
  const auto dir = std::filesystem::temp_directory_path() / "nees-ingest";
  std::filesystem::remove_all(dir);
  daq::DaqSystem daq;
  daq.AddChannel({"uiuc.lvdt", "m", 100.0});
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(daq.Record("uiuc.lvdt", i, i).ok());
  ASSERT_TRUE(daq.Flush(dir, "most").ok());

  IngestionTool tool(rpc_.get(), "repo.ncsa", "most", "uiuc");
  daq::Harvester harvester(
      dir, [&](const std::filesystem::path& file,
               const std::vector<nsds::DataSample>& samples) {
        return tool.IngestDropFile(file, samples);
      });
  ASSERT_EQ(*harvester.ScanOnce(), 1);
  EXPECT_EQ(tool.files_ingested(), 1u);

  // The file and its metadata are in the repository.
  auto files = facade_->nfms().List("most/daq/uiuc/");
  ASSERT_EQ(files.size(), 1u);
  auto fetched = facade_->Fetch(files[0].logical_name);
  ASSERT_TRUE(fetched.ok());
  auto metadata = facade_->nmds().Get("file:" + files[0].logical_name);
  ASSERT_TRUE(metadata.ok());
  EXPECT_EQ(metadata->fields.at("samples"), "20");
  EXPECT_EQ(metadata->fields.at("experiment"), "most");
  std::filesystem::remove_all(dir);
}

TEST_F(FacadeTest, HttpsBridgeFetchesLogicalFiles) {
  const Bytes content = RandomContent(2000, 7);
  ASSERT_TRUE(facade_->Ingest("most/web.csv", content, "daq-data", {}).ok());

  HttpsBridge bridge(&network_, "https.nees", "repo.ncsa");
  ASSERT_TRUE(bridge.Start().ok());

  net::RpcClient browser(&network_, "browser");
  auto fetched = HttpsGet(&browser, "https.nees", "most/web.csv");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, content);

  EXPECT_EQ(HttpsGet(&browser, "https.nees", "missing").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(FacadeTest, FetchDetectsCorruptedStore) {
  const Bytes content = RandomContent(100, 8);
  ASSERT_TRUE(facade_->Ingest("f", content, "t", {}).ok());
  // Corrupt the stored bytes behind the facade's back.
  Bytes tampered = content;
  tampered[0] ^= 0xFF;
  facade_->store().Put("files/f", tampered);
  EXPECT_EQ(facade_->Fetch("f").status().code(), ErrorCode::kDataLoss);
}

}  // namespace
}  // namespace nees::repo
