// Tests for the simulated network and RPC layers: routing, fault injection,
// latency accounting, partitions, and loss-as-timeout semantics.
#include <atomic>
#include <cstring>

#include <gtest/gtest.h>

#include "net/endpoint.h"
#include "net/message.h"
#include "net/network.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace nees::net {
namespace {

using util::ErrorCode;

Bytes AsBytes(const std::string& text) {
  return Bytes(text.begin(), text.end());
}

Message MakeMessage(const std::string& from, const std::string& to,
                    const std::string& method = "") {
  Message message;
  message.from = from;
  message.to = to;
  message.method = method;
  return message;
}
std::string AsString(const Bytes& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

/// Recomputes and rewrites the trailing CRC so a deliberately mutated frame
/// is sealed again — for tests that target the *semantic* validation behind
/// the checksum (unknown ids, bad kinds).
void ResealFrame(std::vector<std::uint8_t>& frame) {
  ASSERT_GE(frame.size(), 4u);
  const std::uint32_t crc = util::Crc32(frame.data(), frame.size() - 4);
  for (int i = 0; i < 4; ++i) {
    frame[frame.size() - 4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

// --- endpoint interning ------------------------------------------------------

TEST(EndpointTableTest, InternIsIdempotentAndLookupRoundTrips) {
  EndpointTable& table = EndpointTable::Instance();
  const std::uint32_t id = table.Intern("etbl.test.alpha");
  EXPECT_NE(id, 0u);
  EXPECT_EQ(table.Intern("etbl.test.alpha"), id);
  EXPECT_EQ(table.Lookup(id), "etbl.test.alpha");
  EXPECT_TRUE(table.Known(id));
  const std::uint32_t other = table.Intern("etbl.test.beta");
  EXPECT_NE(other, id);
}

TEST(EndpointTableTest, EmptyNameIsIdZeroAndUnknownIdsAreEmpty) {
  EndpointTable& table = EndpointTable::Instance();
  EXPECT_EQ(table.Intern(""), 0u);
  EXPECT_EQ(table.Lookup(0), "");
  EXPECT_TRUE(table.Known(0));
  EXPECT_FALSE(table.Known(0x7FFFFFF0));
  EXPECT_EQ(table.Lookup(0x7FFFFFF0), "");
}

TEST(EndpointTableTest, IdTypesCarryLazyNameViews) {
  const EndpointId endpoint("etbl.test.site");
  EXPECT_TRUE(endpoint.valid());
  EXPECT_EQ(endpoint.name(), "etbl.test.site");
  EXPECT_EQ(EndpointId("etbl.test.site"), endpoint);
  const MethodId method("etbl.test.method");
  EXPECT_EQ(method.name(), "etbl.test.method");
}

TEST(EndpointTableTest, GrowthCountersTrackDistinctNames) {
  EndpointTable& table = EndpointTable::Instance();
  const std::size_t count_before = table.size();
  const std::size_t bytes_before = table.interned_bytes();
  const std::string fresh = "etbl.test.growth.tenant/ntcp.uiuc";
  (void)table.Intern(fresh);
  EXPECT_EQ(table.size(), count_before + 1);
  EXPECT_EQ(table.interned_bytes(), bytes_before + fresh.size());
  // Re-interning is free: the counters only track distinct names.
  (void)table.Intern(fresh);
  EXPECT_EQ(table.size(), count_before + 1);
  EXPECT_EQ(table.interned_bytes(), bytes_before + fresh.size());
}

TEST(EndpointTableTest, PublishGaugesExportsInternedFootprint) {
  EndpointTable& table = EndpointTable::Instance();
  (void)table.Intern("etbl.test.gauge");
  obs::MetricsRegistry metrics;
  table.PublishGauges(metrics);
  EXPECT_EQ(metrics.GaugeValue("net.endpoints.interned"),
            static_cast<double>(table.size()));
  EXPECT_EQ(metrics.GaugeValue("net.endpoints.interned_bytes"),
            static_cast<double>(table.interned_bytes()));
}

// --- wire frame layout -------------------------------------------------------

TEST(MessageWireTest, EncodeDecodeRoundTrip) {
  Message message;
  message.from = "wire.src";
  message.to = "wire.dst";
  message.kind = MessageKind::kRequest;
  message.correlation_id = 0x1122334455667788ULL;
  message.method = MethodId("wire.method");
  message.payload = AsBytes("body bytes");

  util::ByteWriter writer;
  message.EncodeTo(writer);
  EXPECT_EQ(writer.size(), message.WireSize());
  EXPECT_EQ(writer.size(), Message::kHeaderBytes + message.payload.size());

  util::ByteReader reader(writer.data());
  auto decoded = Message::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->from, message.from);
  EXPECT_EQ(decoded->to, message.to);
  EXPECT_EQ(decoded->kind, MessageKind::kRequest);
  EXPECT_EQ(decoded->correlation_id, message.correlation_id);
  EXPECT_EQ(decoded->method, message.method);
  EXPECT_EQ(decoded->payload, message.payload);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(MessageWireTest, BackToBackFramesDecodeSequentially) {
  Message first = MakeMessage("wire.a", "wire.b", "m1");
  first.payload = AsBytes("one");
  Message second = MakeMessage("wire.b", "wire.a", "m2");
  second.kind = MessageKind::kResponse;
  second.payload = AsBytes("two");
  util::ByteWriter writer;
  first.EncodeTo(writer);
  second.EncodeTo(writer);
  util::ByteReader reader(writer.data());
  auto one = Message::Decode(reader);
  auto two = Message::Decode(reader);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(AsString(one->payload), "one");
  EXPECT_EQ(AsString(two->payload), "two");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(MessageWireTest, EveryTruncationIsAnErrorNeverACrash) {
  Message message = MakeMessage("wire.src", "wire.dst", "wire.method");
  message.kind = MessageKind::kRequest;
  message.correlation_id = 42;
  message.payload = AsBytes("payload-under-test");
  util::ByteWriter writer;
  message.EncodeTo(writer);
  const std::vector<std::uint8_t>& frame = writer.data();
  for (std::size_t len = 0; len < frame.size(); ++len) {
    util::ByteReader reader(frame.data(), len);
    auto decoded = Message::Decode(reader);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(MessageWireTest, UnknownInternedIdsAreProtocolErrors) {
  // A peer (or fuzzer) can put any u32 in the id fields; ids never handed
  // out by this process's EndpointTable must decode to an error.
  const std::uint32_t bogus = 0x7FFFFFF5;
  ASSERT_FALSE(EndpointTable::Instance().Known(bogus));
  Message valid = MakeMessage("wire.src", "wire.dst", "wire.method");
  valid.kind = MessageKind::kRequest;
  // from at [0,4), to at [4,8), method at [17,21) in the canonical layout.
  for (const std::size_t offset : {0u, 4u, 17u}) {
    util::ByteWriter writer;
    valid.EncodeTo(writer);
    std::vector<std::uint8_t> frame = writer.Take();
    std::memcpy(frame.data() + offset, &bogus, sizeof bogus);
    // Reseal the checksum: this test targets the id validation itself, not
    // the CRC's ability to notice the overwrite.
    ResealFrame(frame);
    util::ByteReader reader(frame);
    auto decoded = Message::Decode(reader);
    EXPECT_FALSE(decoded.ok()) << "bogus id accepted at offset " << offset;
  }
}

TEST(MessageWireTest, ChecksumCatchesEverySingleByteCorruption) {
  Message message = MakeMessage("wire.src", "wire.dst", "wire.method");
  message.kind = MessageKind::kRequest;
  message.correlation_id = 7;
  message.payload = AsBytes("crc-covered-payload");
  util::ByteWriter writer;
  message.EncodeTo(writer);
  const std::vector<std::uint8_t> frame = writer.data();
  // CRC-32 detects all single-byte errors, including ones that land in the
  // payload or the CRC field itself — the corruption class that used to
  // decode cleanly and poison downstream protocol state.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::vector<std::uint8_t> mutant = frame;
    mutant[i] ^= 0x5A;
    util::ByteReader reader(mutant);
    auto decoded = Message::Decode(reader);
    EXPECT_FALSE(decoded.ok()) << "byte " << i << " flip decoded";
  }
}

TEST(MessageWireTest, RandomByteFlipFuzzNeverCrashesAlwaysOkOrError) {
  // Seeded mutation fuzz over the Decode boundary — the in-process version
  // of nees_fuzz's kFrameCorrupt fault class. Every mutant (1–3 byte flips,
  // sometimes truncated too) must come back Ok or an error; decoding may
  // never crash, and a frame whose bytes actually changed must be rejected
  // by the checksum.
  util::Rng rng(20260808);
  Message message = MakeMessage("wire.src", "wire.dst", "wire.method");
  message.kind = MessageKind::kRequest;
  for (int round = 0; round < 2000; ++round) {
    message.correlation_id = rng.NextU64();
    message.payload.resize(static_cast<std::size_t>(rng.UniformInt(0, 64)));
    for (auto& byte : message.payload) {
      byte = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
    }
    util::ByteWriter writer;
    message.EncodeTo(writer);
    std::vector<std::uint8_t> mutant = writer.Take();

    bool changed = false;
    const int flips = rng.UniformInt(1, 3);
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(mutant.size()) - 1));
      const std::uint8_t mask =
          static_cast<std::uint8_t>(rng.UniformInt(1, 255));
      mutant[at] ^= mask;
      changed = true;
    }
    if (rng.Bernoulli(0.25)) {
      mutant.resize(static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(mutant.size()))));
      changed = true;
    }

    util::ByteReader reader(mutant);
    auto decoded = Message::Decode(reader);  // must not crash
    if (changed) {
      EXPECT_FALSE(decoded.ok())
          << "round " << round << ": corrupted frame decoded cleanly";
    }
  }
}

// --- raw network routing -----------------------------------------------------

TEST(NetworkTest, DeliversToRegisteredEndpoint) {
  Network network;
  std::string received;
  ASSERT_TRUE(network
                  .RegisterEndpoint("sink",
                                    [&](const Message& message) {
                                      received = AsString(message.payload);
                                    })
                  .ok());
  Message message;
  message.from = "src";
  message.to = "sink";
  message.payload = AsBytes("hello");
  ASSERT_TRUE(network.Send(message).ok());
  EXPECT_EQ(received, "hello");
}

TEST(NetworkTest, UnknownDestinationIsNotFound) {
  Network network;
  Message message;
  message.from = "src";
  message.to = "ghost";
  EXPECT_EQ(network.Send(message).code(), ErrorCode::kNotFound);
}

TEST(NetworkTest, DuplicateRegistrationRejected) {
  Network network;
  ASSERT_TRUE(network.RegisterEndpoint("a", [](const Message&) {}).ok());
  EXPECT_EQ(network.RegisterEndpoint("a", [](const Message&) {}).code(),
            ErrorCode::kAlreadyExists);
}

TEST(NetworkTest, UnregisterRemovesEndpoint) {
  Network network;
  ASSERT_TRUE(network.RegisterEndpoint("a", [](const Message&) {}).ok());
  network.UnregisterEndpoint("a");
  EXPECT_FALSE(network.HasEndpoint("a"));
}

TEST(NetworkTest, HandlerMaySendNestedMessages) {
  Network network;
  int bounces = 0;
  ASSERT_TRUE(network
                  .RegisterEndpoint("ping",
                                    [&](const Message& message) {
                                      ++bounces;
                                      if (bounces < 3) {
                                        Message next = message;
                                        next.from = "ping";
                                        next.to = "ping";
                                        (void)network.Send(next);
                                      }
                                    })
                  .ok());
  Message message;
  message.from = "x";
  message.to = "ping";
  ASSERT_TRUE(network.Send(message).ok());
  EXPECT_EQ(bounces, 3);
}

// --- fault injection ---------------------------------------------------------

TEST(NetworkFaultTest, LinkDownDropsSilently) {
  Network network;
  int received = 0;
  ASSERT_TRUE(
      network.RegisterEndpoint("sink", [&](const Message&) { ++received; })
          .ok());
  network.SetLinkUp("src", "sink", false);
  Message message;
  message.from = "src";
  message.to = "sink";
  EXPECT_TRUE(network.Send(message).ok());  // accepted, silently lost
  EXPECT_EQ(received, 0);
  network.SetLinkUp("src", "sink", true);
  EXPECT_TRUE(network.Send(message).ok());
  EXPECT_EQ(received, 1);
  const auto metrics = network.LinkMetricsFor("src", "sink");
  EXPECT_EQ(metrics.sent, 2u);
  EXPECT_EQ(metrics.delivered, 1u);
  EXPECT_EQ(metrics.dropped_forced, 1u);
}

TEST(NetworkFaultTest, DropNextIsDeterministic) {
  Network network;
  int received = 0;
  ASSERT_TRUE(
      network.RegisterEndpoint("sink", [&](const Message&) { ++received; })
          .ok());
  network.DropNext("src", "sink", 2);
  Message message;
  message.from = "src";
  message.to = "sink";
  for (int i = 0; i < 5; ++i) (void)network.Send(message);
  EXPECT_EQ(received, 3);
}

TEST(NetworkFaultTest, OutageWindowUsesClock) {
  Network network;
  util::SimClock clock(0);
  network.SetClock(&clock);
  int received = 0;
  ASSERT_TRUE(
      network.RegisterEndpoint("sink", [&](const Message&) { ++received; })
          .ok());
  network.AddOutage("src", "sink", {100, 200});
  Message message;
  message.from = "src";
  message.to = "sink";

  clock.SetMicros(50);
  (void)network.Send(message);  // before outage
  clock.SetMicros(150);
  (void)network.Send(message);  // during outage: dropped
  clock.SetMicros(250);
  (void)network.Send(message);  // after outage
  EXPECT_EQ(received, 2);
  EXPECT_EQ(network.LinkMetricsFor("src", "sink").dropped_outage, 1u);
}

TEST(NetworkFaultTest, RandomDropRateApproximatesProbability) {
  Network network(DeliveryMode::kImmediate, /*fault_seed=*/7);
  std::atomic<int> received{0};
  ASSERT_TRUE(
      network.RegisterEndpoint("sink", [&](const Message&) { ++received; })
          .ok());
  LinkModel model;
  model.drop_probability = 0.25;
  network.SetLink("src", "sink", model);
  Message message;
  message.from = "src";
  message.to = "sink";
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) (void)network.Send(message);
  const double delivered_rate = static_cast<double>(received) / kTrials;
  EXPECT_NEAR(delivered_rate, 0.75, 0.03);
}

TEST(NetworkFaultTest, PartitionSeversBothDirectionsAndHeals) {
  Network network;
  int to_b = 0, to_a = 0;
  ASSERT_TRUE(
      network.RegisterEndpoint("a", [&](const Message&) { ++to_a; }).ok());
  ASSERT_TRUE(
      network.RegisterEndpoint("b", [&](const Message&) { ++to_b; }).ok());
  network.Partition({"a"}, {"b"});

  Message ab = MakeMessage("a", "b");
  Message ba = MakeMessage("b", "a");
  (void)network.Send(ab);
  (void)network.Send(ba);
  EXPECT_EQ(to_a + to_b, 0);

  network.HealPartition();
  (void)network.Send(ab);
  (void)network.Send(ba);
  EXPECT_EQ(to_a, 1);
  EXPECT_EQ(to_b, 1);
}

TEST(NetworkFaultTest, PartitionLeavesThirdPartiesConnected) {
  Network network;
  int received = 0;
  ASSERT_TRUE(
      network.RegisterEndpoint("c", [&](const Message&) { ++received; }).ok());
  ASSERT_TRUE(network.RegisterEndpoint("a", [](const Message&) {}).ok());
  network.Partition({"a"}, {"b"});
  Message message = MakeMessage("a", "c");
  (void)network.Send(message);
  EXPECT_EQ(received, 1);
}

TEST(NetworkFaultTest, WildcardLinkAppliesToAllDestinations) {
  Network network;
  int received = 0;
  ASSERT_TRUE(
      network.RegisterEndpoint("x", [&](const Message&) { ++received; }).ok());
  ASSERT_TRUE(
      network.RegisterEndpoint("y", [&](const Message&) { ++received; }).ok());
  network.SetLinkUp("src", "*", false);
  (void)network.Send(MakeMessage("src", "x"));
  (void)network.Send(MakeMessage("src", "y"));
  EXPECT_EQ(received, 0);
}

// --- transmission delay model --------------------------------------------------

TEST(LinkModelTest, DelayIncludesBandwidthTerm) {
  util::Rng rng(1);
  LinkModel model;
  model.latency_micros = 1000;
  model.bytes_per_second = 1e6;  // 1 MB/s
  // 1 MB payload => 1 second transmission + 1 ms propagation.
  const auto delay = TransmissionDelayMicros(model, 1'000'000, rng);
  EXPECT_NEAR(static_cast<double>(delay), 1'001'000.0, 1.0);
}

TEST(LinkModelTest, JitterStaysWithinBounds) {
  util::Rng rng(1);
  LinkModel model;
  model.latency_micros = 500;
  model.jitter_micros = 100;
  for (int i = 0; i < 200; ++i) {
    const auto delay = TransmissionDelayMicros(model, 10, rng);
    EXPECT_GE(delay, 400);
    EXPECT_LE(delay, 600);
  }
}

TEST(LinkModelTest, DelayNeverNegative) {
  util::Rng rng(1);
  LinkModel model;
  model.latency_micros = 10;
  model.jitter_micros = 50;  // jitter larger than latency
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(TransmissionDelayMicros(model, 0, rng), 0);
  }
}

// --- RPC ----------------------------------------------------------------------

class RpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<RpcServer>(&network_, "server");
    ASSERT_TRUE(server_->Start().ok());
    server_->RegisterMethod(
        "echo", [](const CallContext&, const Bytes& body) -> util::Result<Bytes> {
          return body;
        });
    server_->RegisterMethod(
        "fail", [](const CallContext&, const Bytes&) -> util::Result<Bytes> {
          return util::PolicyViolation("force limit exceeded");
        });
    client_ = std::make_unique<RpcClient>(&network_, "client");
  }

  Network network_;
  std::unique_ptr<RpcServer> server_;
  std::unique_ptr<RpcClient> client_;
};

TEST_F(RpcTest, EchoRoundTrip) {
  auto result = client_->Call("server", "echo", AsBytes("payload"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(AsString(*result), "payload");
}

TEST_F(RpcTest, ApplicationErrorPassesThrough) {
  auto result = client_->Call("server", "fail", {});
  EXPECT_EQ(result.status().code(), ErrorCode::kPolicyViolation);
  EXPECT_EQ(result.status().message(), "force limit exceeded");
}

TEST_F(RpcTest, UnknownMethodIsUnimplemented) {
  auto result = client_->Call("server", "nope", {});
  EXPECT_EQ(result.status().code(), ErrorCode::kUnimplemented);
}

TEST_F(RpcTest, MissingServerIsUnavailable) {
  auto result = client_->Call("ghost", "echo", {});
  EXPECT_EQ(result.status().code(), ErrorCode::kUnavailable);
}

TEST_F(RpcTest, DroppedRequestSurfacesAsTimeout) {
  network_.DropNext("client", "server", 1);
  auto result = client_->Call("server", "echo", AsBytes("x"));
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
  // Retry succeeds once the fault clears.
  auto retry = client_->Call("server", "echo", AsBytes("x"));
  EXPECT_TRUE(retry.ok());
}

TEST_F(RpcTest, DroppedResponseSurfacesAsTimeout) {
  network_.DropNext("server", "client", 1);
  auto result = client_->Call("server", "echo", AsBytes("x"));
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
}

TEST_F(RpcTest, AuthenticatorRejectsBadToken) {
  server_->SetAuthenticator(
      [](const std::string& token,
         const std::string&) -> util::Result<std::string> {
        if (token == "good") return std::string("subject-x");
        return util::Unauthenticated("bad token");
      });
  auto anonymous = client_->Call("server", "echo", AsBytes("x"));
  EXPECT_EQ(anonymous.status().code(), ErrorCode::kUnauthenticated);

  client_->SetAuthToken("good");
  auto authed = client_->Call("server", "echo", AsBytes("x"));
  EXPECT_TRUE(authed.ok());
}

TEST_F(RpcTest, AuthenticatedSubjectVisibleToMethod) {
  std::string seen_subject;
  server_->RegisterMethod(
      "whoami",
      [&](const CallContext& context, const Bytes&) -> util::Result<Bytes> {
        seen_subject = context.subject;
        return Bytes{};
      });
  server_->SetAuthenticator(
      [](const std::string&, const std::string&) -> util::Result<std::string> {
        return std::string("C=US/O=NEES/CN=coordinator");
      });
  ASSERT_TRUE(client_->Call("server", "whoami", {}).ok());
  EXPECT_EQ(seen_subject, "C=US/O=NEES/CN=coordinator");
}

TEST_F(RpcTest, OneWayDelivery) {
  std::string received;
  server_->RegisterOneWay("notify",
                          [&](const CallContext&, const Bytes& body) {
                            received = AsString(body);
                          });
  ASSERT_TRUE(client_->OneWay("server", "notify", AsBytes("event")).ok());
  EXPECT_EQ(received, "event");
}

TEST_F(RpcTest, EnvelopeRoundTrip) {
  const Bytes body = AsBytes("abc");
  const Bytes envelope = EncodeRequestEnvelope("token", body);
  std::string token;
  Bytes decoded;
  ASSERT_TRUE(DecodeRequestEnvelope(envelope, &token, &decoded).ok());
  EXPECT_EQ(token, "token");
  EXPECT_EQ(decoded, body);

  const Bytes response =
      EncodeResponseEnvelope(util::TimeoutError("slow"), AsBytes("r"));
  util::Status status;
  Bytes response_body;
  ASSERT_TRUE(DecodeResponseEnvelope(response, &status, &response_body).ok());
  EXPECT_EQ(status.code(), ErrorCode::kTimeout);
  EXPECT_EQ(AsString(response_body), "r");
}

TEST_F(RpcTest, CorruptEnvelopeRejected) {
  std::string token;
  Bytes body;
  EXPECT_FALSE(DecodeRequestEnvelope(AsBytes("zz"), &token, &body).ok());
  util::Status status;
  EXPECT_FALSE(DecodeResponseEnvelope(AsBytes("z"), &status, &body).ok());
}

TEST_F(RpcTest, ConsumingEnvelopeDecodesMoveTheBody) {
  const Bytes body = AsBytes("zero-copy body");
  Bytes request = EncodeRequestEnvelope("token", body);
  std::string token;
  Bytes request_body;
  ASSERT_TRUE(ConsumeRequestEnvelope(&request, &token, &request_body).ok());
  EXPECT_EQ(token, "token");
  EXPECT_EQ(request_body, body);

  Bytes response = EncodeResponseEnvelope(util::OkStatus(), body);
  util::Status status;
  Bytes response_body;
  ASSERT_TRUE(
      ConsumeResponseEnvelope(&response, &status, &response_body).ok());
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(response_body, body);
}

TEST_F(RpcTest, ConsumingEnvelopeRejectsTrailingGarbage) {
  // Strict framing: the body's length prefix must account for the entire
  // remainder of the frame. A truncated or padded frame is data loss, not
  // a silently shortened body.
  Bytes padded = EncodeRequestEnvelope("t", AsBytes("abc"));
  padded.push_back(0x7f);
  std::string token;
  Bytes body;
  EXPECT_EQ(ConsumeRequestEnvelope(&padded, &token, &body).code(),
            ErrorCode::kDataLoss);

  Bytes truncated = EncodeResponseEnvelope(util::OkStatus(), AsBytes("abc"));
  truncated.pop_back();
  util::Status status;
  EXPECT_EQ(ConsumeResponseEnvelope(&truncated, &status, &body).code(),
            ErrorCode::kDataLoss);
}

// --- asynchronous calls -------------------------------------------------------

TEST_F(RpcTest, AsyncCallResolvesInlineInImmediateMode) {
  RpcClient::AsyncCall call =
      client_->CallAsync("server", "echo", AsBytes("now"));
  util::Result<Bytes> result = util::Internal("unset");
  ASSERT_TRUE(call.TryResolve(&result));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(AsString(*result), "now");
}

TEST_F(RpcTest, UnansweredAsyncCallResolvesAsTimeoutImmediately) {
  // kImmediate has no delivery thread: a reply that did not arrive during
  // Send() never will, so the handle must not park its caller.
  network_.DropNext("client", "server", 1);
  RpcClient::AsyncCall call =
      client_->CallAsync("server", "echo", AsBytes("x"));
  util::Result<Bytes> result = util::Internal("unset");
  ASSERT_TRUE(call.TryResolve(&result));
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
}

TEST_F(RpcTest, AsyncDeadlineUsesInjectedClock) {
  // The deadline must be stamped from the network's util::Clock, not the
  // wall clock — SimClock-driven tests otherwise silently wait real time.
  util::SimClock clock(500'000);
  network_.SetClock(&clock);
  RpcClient::AsyncCall call =
      client_->CallAsync("server", "echo", AsBytes("x"), 250'000);
  EXPECT_EQ(call.deadline_micros(), 750'000);
  network_.SetClock(&util::SystemClock::Instance());
}

// --- batched pipelining ------------------------------------------------------

TEST_F(RpcTest, BatchedCallsRoundTripLikeUnbatched) {
  client_->BeginBatch();
  RpcClient::AsyncCall a = client_->CallAsync("server", "echo", AsBytes("a"));
  RpcClient::AsyncCall b = client_->CallAsync("server", "echo", AsBytes("b"));
  RpcClient::AsyncCall c = client_->CallAsync("server", "echo", AsBytes("c"));
  client_->FlushBatch();
  auto ra = a.Wait();
  auto rb = b.Wait();
  auto rc = c.Wait();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(AsString(*ra), "a");
  EXPECT_EQ(AsString(*rb), "b");
  EXPECT_EQ(AsString(*rc), "c");
}

TEST_F(RpcTest, WaitOnStagedCallFlushesTheBatchFirst) {
  client_->BeginBatch();
  RpcClient::AsyncCall call =
      client_->CallAsync("server", "echo", AsBytes("staged"));
  // No explicit FlushBatch: forgetting it must degrade to unbatched
  // timing, never a hang or a spurious immediate-mode timeout.
  auto result = call.Wait();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(AsString(*result), "staged");
}

TEST(RpcBatchWireTest, FlushCoalescesStagedCallsIntoOneFramePerTarget) {
  Network network;
  std::vector<Message> at_sink1;
  std::vector<Message> at_sink2;
  ASSERT_TRUE(network
                  .RegisterEndpoint("batch.sink1",
                                    [&](const Message& m) {
                                      at_sink1.push_back(m);
                                    })
                  .ok());
  ASSERT_TRUE(network
                  .RegisterEndpoint("batch.sink2",
                                    [&](const Message& m) {
                                      at_sink2.push_back(m);
                                    })
                  .ok());
  RpcClient client(&network, "batch.client");
  client.BeginBatch();
  auto a = client.CallAsync("batch.sink1", "m", AsBytes("1"));
  auto b = client.CallAsync("batch.sink1", "m", AsBytes("2"));
  auto c = client.CallAsync("batch.sink1", "m", AsBytes("3"));
  auto d = client.CallAsync("batch.sink2", "m", AsBytes("4"));
  auto e = client.CallAsync("batch.sink2", "m", AsBytes("5"));
  EXPECT_TRUE(at_sink1.empty());  // staged, not sent
  client.FlushBatch();
  ASSERT_EQ(at_sink1.size(), 1u);  // three calls, one frame
  ASSERT_EQ(at_sink2.size(), 1u);  // two calls, one frame
  EXPECT_EQ(at_sink1[0].method, MethodId("rpc.batch"));
  EXPECT_EQ(at_sink2[0].method, MethodId("rpc.batch"));
  EXPECT_EQ(at_sink1[0].kind, MessageKind::kRequest);
}

TEST(RpcBatchWireTest, SingletonBatchIsWireIdenticalToPlainRequest) {
  Network network;
  std::vector<Message> frames;
  ASSERT_TRUE(network
                  .RegisterEndpoint("single.sink",
                                    [&](const Message& m) {
                                      frames.push_back(m);
                                    })
                  .ok());
  RpcClient client(&network, "single.client");
  client.SetAuthToken("tok");
  auto plain = client.CallAsync("single.sink", "method.x", AsBytes("body"));
  client.BeginBatch();
  auto staged = client.CallAsync("single.sink", "method.x", AsBytes("body"));
  client.FlushBatch();
  ASSERT_EQ(frames.size(), 2u);
  // A lone staged call needs no batch envelope: same method, same payload
  // bytes — only the correlation id differs.
  EXPECT_EQ(frames[1].method, frames[0].method);
  EXPECT_EQ(frames[1].kind, frames[0].kind);
  EXPECT_EQ(frames[1].payload, frames[0].payload);
  EXPECT_NE(frames[1].correlation_id, frames[0].correlation_id);
}

TEST(ScheduledRpcTest, WaitAllCollectsOverlappedCalls) {
  Network network(DeliveryMode::kScheduled);
  LinkModel model;
  model.latency_micros = 3'000;
  network.SetDefaultLink(model);
  RpcServer server(&network, "server");
  ASSERT_TRUE(server.Start().ok());
  server.RegisterMethod(
      "echo", [](const CallContext&, const Bytes& body) -> util::Result<Bytes> {
        return body;
      });
  RpcClient client(&network, "client");

  // N overlapped calls should cost ~1 RTT, not N.
  constexpr int kCalls = 8;
  util::Stopwatch watch;
  std::vector<RpcClient::AsyncCall> calls;
  for (int i = 0; i < kCalls; ++i) {
    calls.push_back(client.CallAsync("server", "echo",
                                     AsBytes("c" + std::to_string(i)),
                                     1'000'000));
  }
  std::vector<RpcClient::AsyncCall*> handles;
  for (RpcClient::AsyncCall& call : calls) handles.push_back(&call);
  client.WaitAll(handles);
  const std::int64_t elapsed = watch.ElapsedMicros();

  for (int i = 0; i < kCalls; ++i) {
    util::Result<Bytes> result = util::Internal("unset");
    ASSERT_TRUE(calls[i].TryResolve(&result)) << i;
    ASSERT_TRUE(result.ok()) << i;
    EXPECT_EQ(AsString(*result), "c" + std::to_string(i));
  }
  // 1 RTT = 6 ms; the serialized cost would be ~48 ms.
  EXPECT_LT(elapsed, kCalls * 6'000 / 2);
}

TEST(ScheduledRpcTest, WaitAnyUntilReturnsOnFirstCompletion) {
  Network network(DeliveryMode::kScheduled);
  LinkModel fast;
  fast.latency_micros = 1'000;
  LinkModel slow;
  slow.latency_micros = 40'000;
  RpcServer fast_server(&network, "fast");
  RpcServer slow_server(&network, "slow");
  ASSERT_TRUE(fast_server.Start().ok());
  ASSERT_TRUE(slow_server.Start().ok());
  auto echo = [](const CallContext&,
                 const Bytes& body) -> util::Result<Bytes> { return body; };
  fast_server.RegisterMethod("echo", echo);
  slow_server.RegisterMethod("echo", echo);
  network.SetLink("client", "fast", fast);
  network.SetLink("fast", "client", fast);
  network.SetLink("client", "slow", slow);
  network.SetLink("slow", "client", slow);
  RpcClient client(&network, "client");

  RpcClient::AsyncCall a = client.CallAsync("fast", "echo", AsBytes("a"));
  RpcClient::AsyncCall b = client.CallAsync("slow", "echo", AsBytes("b"));
  client.WaitAnyUntil({&a, &b},
                      network.clock()->NowMicros() + 1'000'000);
  util::Result<Bytes> first = util::Internal("unset");
  EXPECT_TRUE(a.TryResolve(&first));  // fast call resolved the wait
  util::Result<Bytes> second = util::Internal("unset");
  EXPECT_FALSE(b.TryResolve(&second));  // slow call still in flight
  EXPECT_TRUE(b.Wait().ok());
}

TEST(ScheduledRpcTest, AsyncCallWaitHonorsDeadline) {
  Network network(DeliveryMode::kScheduled);
  RpcServer server(&network, "server");
  ASSERT_TRUE(server.Start().ok());
  server.RegisterMethod(
      "echo", [](const CallContext&, const Bytes& body) -> util::Result<Bytes> {
        return body;
      });
  RpcClient client(&network, "client");
  network.SetLinkUp("client", "server", false);
  RpcClient::AsyncCall call =
      client.CallAsync("server", "echo", AsBytes("x"), 15'000);
  EXPECT_EQ(call.Wait().status().code(), ErrorCode::kTimeout);
}

// --- scheduled (threaded) delivery mode ---------------------------------------

TEST(ScheduledNetworkTest, RpcOverRealLatency) {
  Network network(DeliveryMode::kScheduled);
  LinkModel model;
  model.latency_micros = 2000;  // 2 ms each way
  network.SetDefaultLink(model);

  RpcServer server(&network, "server");
  ASSERT_TRUE(server.Start().ok());
  server.RegisterMethod(
      "echo", [](const CallContext&, const Bytes& body) -> util::Result<Bytes> {
        return body;
      });
  RpcClient client(&network, "client");

  util::Stopwatch watch;
  auto result = client.Call("server", "echo", AsBytes("hi"), 1'000'000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(AsString(*result), "hi");
  EXPECT_GE(watch.ElapsedMicros(), 3500);  // ~2 RTT legs minus scheduling slack
}

TEST(ScheduledNetworkTest, CallTimesOutInRealTime) {
  Network network(DeliveryMode::kScheduled);
  RpcServer server(&network, "server");
  ASSERT_TRUE(server.Start().ok());
  server.RegisterMethod(
      "echo", [](const CallContext&, const Bytes& body) -> util::Result<Bytes> {
        return body;
      });
  RpcClient client(&network, "client");
  network.SetLinkUp("client", "server", false);
  auto result = client.Call("server", "echo", AsBytes("x"), 20'000);
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
}

TEST(ScheduledNetworkTest, QuiesceWaitsForInFlight) {
  Network network(DeliveryMode::kScheduled);
  std::atomic<int> received{0};
  ASSERT_TRUE(
      network.RegisterEndpoint("sink", [&](const Message&) { ++received; })
          .ok());
  LinkModel model;
  model.latency_micros = 5000;
  network.SetDefaultLink(model);
  for (int i = 0; i < 10; ++i) {
    (void)network.Send(MakeMessage("src", "sink"));
  }
  network.Quiesce();
  EXPECT_EQ(received, 10);
}

TEST(ScheduledNetworkTest, MessagesArriveInLatencyOrder) {
  Network network(DeliveryMode::kScheduled);
  std::mutex mu;
  std::vector<std::string> order;
  ASSERT_TRUE(network
                  .RegisterEndpoint("sink",
                                    [&](const Message& message) {
                                      std::lock_guard<std::mutex> lock(mu);
                                      order.push_back(message.method.str());
                                    })
                  .ok());
  LinkModel slow;
  slow.latency_micros = 20'000;
  LinkModel fast;
  fast.latency_micros = 1'000;
  network.SetLink("slow_src", "sink", slow);
  network.SetLink("fast_src", "sink", fast);

  (void)network.Send(
      MakeMessage("slow_src", "sink", "slow"));
  (void)network.Send(
      MakeMessage("fast_src", "sink", "fast"));
  network.Quiesce();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "fast");
  EXPECT_EQ(order[1], "slow");
}

// --- virtual-time delivery (DeliveryMode::kVirtual) --------------------------

TEST(VirtualNetworkTest, DeliversInTimestampOrderAndAdvancesClock) {
  Network network(DeliveryMode::kVirtual);
  std::vector<std::string> order;
  ASSERT_TRUE(network
                  .RegisterEndpoint("sink",
                                    [&](const Message& message) {
                                      order.push_back(message.method.str());
                                    })
                  .ok());
  LinkModel slow;
  slow.latency_micros = 20'000;
  LinkModel fast;
  fast.latency_micros = 1'000;
  network.SetLink("slow_src", "sink", slow);
  network.SetLink("fast_src", "sink", fast);

  ASSERT_TRUE(network.Send(MakeMessage("slow_src", "sink", "slow")).ok());
  ASSERT_TRUE(network.Send(MakeMessage("fast_src", "sink", "fast")).ok());
  EXPECT_TRUE(order.empty());  // nothing delivered until the loop runs

  EXPECT_EQ(network.RunUntilQuiescent(), 2u);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "fast");
  EXPECT_EQ(order[1], "slow");
  // The loop advanced virtual time to the last delivery, without sleeping.
  EXPECT_EQ(network.clock()->NowMicros(), 20'000);
  EXPECT_EQ(network.virtual_stats().messages_delivered, 2u);
}

TEST(VirtualNetworkTest, SimultaneousArrivalTieBreakIsSeedDeterministic) {
  // Five messages due at the same instant: the delivery order is random
  // (seeded tie-break) but identical for identical seeds.
  auto run = [](std::uint64_t seed) {
    Network network(DeliveryMode::kVirtual, seed);
    std::vector<std::string> order;
    (void)network.RegisterEndpoint(
        "sink", [&](const Message& message) { order.push_back(message.method.str()); });
    LinkModel link;
    link.latency_micros = 5'000;
    for (int i = 0; i < 5; ++i) {
      network.SetLink("src" + std::to_string(i), "sink", link);
    }
    for (int i = 0; i < 5; ++i) {
      (void)network.Send(MakeMessage("src" + std::to_string(i), "sink",
                                     "m" + std::to_string(i)));
    }
    network.RunUntilQuiescent();
    return order;
  };
  EXPECT_EQ(run(7), run(7));
  // Across a handful of seeds at least one ordering must differ (5! = 120
  // possible orders; identical results for all would mean the tie-break
  // ignores the seed).
  const std::vector<std::string> base = run(7);
  bool any_differs = false;
  for (std::uint64_t seed = 8; seed <= 15 && !any_differs; ++seed) {
    any_differs = run(seed) != base;
  }
  EXPECT_TRUE(any_differs);
}

TEST(VirtualNetworkTest, TimersInterleaveWithMessagesInTimestampOrder) {
  Network network(DeliveryMode::kVirtual);
  std::vector<std::string> order;
  (void)network.RegisterEndpoint(
      "sink", [&](const Message& message) { order.push_back(message.method.str()); });
  LinkModel link;
  link.latency_micros = 10'000;
  network.SetLink("src", "sink", link);

  network.ScheduleAt(5'000, [&] { order.push_back("t5"); });
  network.ScheduleAt(15'000, [&] { order.push_back("t15"); });
  (void)network.Send(MakeMessage("src", "sink", "m10"));

  network.RunUntilQuiescent();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "t5");
  EXPECT_EQ(order[1], "m10");
  EXPECT_EQ(order[2], "t15");
  EXPECT_EQ(network.virtual_stats().timers_fired, 2u);
  EXPECT_EQ(network.virtual_stats().messages_delivered, 1u);
}

TEST(VirtualNetworkTest, ScheduleAfterIsRelativeToVirtualNow) {
  Network network(DeliveryMode::kVirtual);
  EXPECT_EQ(network.AdvanceTo(10'000), 0u);
  EXPECT_EQ(network.clock()->NowMicros(), 10'000);

  std::int64_t fired_at = -1;
  network.ScheduleAfter(5'000, [&] { fired_at = network.clock()->NowMicros(); });
  network.RunUntilQuiescent();
  EXPECT_EQ(fired_at, 15'000);
}

TEST(VirtualNetworkTest, DropNextDropsAtSendUnderVirtual) {
  Network network(DeliveryMode::kVirtual);
  std::vector<std::string> order;
  (void)network.RegisterEndpoint(
      "sink", [&](const Message& message) { order.push_back(message.method.str()); });
  network.DropNext("src", "sink", 1);
  (void)network.Send(MakeMessage("src", "sink", "first"));
  (void)network.Send(MakeMessage("src", "sink", "second"));
  network.RunUntilQuiescent();
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], "second");
  EXPECT_EQ(network.LinkMetricsFor("src", "sink").dropped_forced, 1u);
}

TEST(VirtualNetworkTest, MessageInFlightWhenOutageOpensIsDropped) {
  // Satellite coverage: scheduled before an outage opens, arriving inside
  // it. Outage checks re-run at the *arrival* timestamp under kVirtual.
  Network network(DeliveryMode::kVirtual);
  std::vector<std::string> order;
  (void)network.RegisterEndpoint(
      "sink", [&](const Message& message) { order.push_back(message.method.str()); });
  LinkModel link;
  link.latency_micros = 15'000;
  network.SetLink("src", "sink", link);
  network.AddOutage("src", "sink", OutageWindow{10'000, 30'000});

  // Sent at t=0 (outage not yet open), arrives at t=15'000 (inside).
  ASSERT_TRUE(network.Send(MakeMessage("src", "sink", "m")).ok());
  network.RunUntilQuiescent();
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(network.LinkMetricsFor("src", "sink").dropped_outage, 1u);
  EXPECT_EQ(network.virtual_stats().messages_dropped_in_flight, 1u);
}

TEST(VirtualNetworkTest, ArrivalExactlyAtOutageCloseIsDelivered) {
  // OutageWindow.end_micros is exclusive: an arrival stamped exactly at the
  // close must get through.
  Network network(DeliveryMode::kVirtual);
  std::vector<std::string> order;
  (void)network.RegisterEndpoint(
      "sink", [&](const Message& message) { order.push_back(message.method.str()); });
  LinkModel link;
  link.latency_micros = 15'000;
  network.SetLink("src", "sink", link);
  network.AddOutage("src", "sink", OutageWindow{5'000, 15'000});

  ASSERT_TRUE(network.Send(MakeMessage("src", "sink", "m")).ok());
  network.RunUntilQuiescent();
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(network.LinkMetricsFor("src", "sink").delivered, 1u);
  EXPECT_EQ(network.LinkMetricsFor("src", "sink").dropped_outage, 0u);
}

TEST(VirtualNetworkTest, RpcTimesOutInVirtualTimeWithoutWallWait) {
  Network network(DeliveryMode::kVirtual);
  // A sink that swallows requests: the call can only end by timeout.
  (void)network.RegisterEndpoint("blackhole", [](const Message&) {});
  RpcClient client(&network, "cli");

  util::Stopwatch watch;
  util::Result<Bytes> result =
      client.Call("blackhole", "noop", {}, /*timeout_micros=*/2'000'000);
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
  // Two virtual seconds elapsed; wall time stayed far below that.
  EXPECT_GE(network.clock()->NowMicros(), 2'000'000);
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

TEST(VirtualNetworkTest, HandlerMayScheduleAndSendRecursively) {
  Network network(DeliveryMode::kVirtual);
  std::vector<std::string> order;
  LinkModel link;
  link.latency_micros = 1'000;
  network.SetDefaultLink(link);
  (void)network.RegisterEndpoint("b", [&](const Message& message) {
    order.push_back("b:" + message.method.str());
  });
  (void)network.RegisterEndpoint("a", [&](const Message& message) {
    order.push_back("a:" + message.method.str());
    // Re-entrant sends and timers from inside a delivery.
    (void)network.Send(MakeMessage("a", "b", "fwd"));
    network.ScheduleAfter(500, [&] { order.push_back("timer"); });
  });
  (void)network.Send(MakeMessage("x", "a", "start"));
  network.RunUntilQuiescent();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "a:start");
  EXPECT_EQ(order[1], "timer");   // due t=1'500
  EXPECT_EQ(order[2], "b:fwd");   // due t=2'000
}

}  // namespace
}  // namespace nees::net
