// Tests for the streaming data service (best-effort semantics, gap
// detection, decimation) and the DAQ pipeline (ring buffers, file drops,
// harvesting).
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "daq/daq.h"
#include "net/network.h"
#include "nsds/nsds.h"
#include "nsds/referral.h"

namespace nees {
namespace {

using util::ErrorCode;

std::vector<nsds::DataSample> MakeSamples(const std::string& prefix,
                                          std::int64_t t, int count) {
  std::vector<nsds::DataSample> samples;
  for (int i = 0; i < count; ++i) {
    samples.push_back({prefix + std::to_string(i), t, 0.1 * i});
  }
  return samples;
}

// --- NSDS ----------------------------------------------------------------------

class NsdsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<nsds::NsdsServer>(&network_, "nsds.uiuc");
    ASSERT_TRUE(server_->Start().ok());
  }

  net::Network network_;
  std::unique_ptr<nsds::NsdsServer> server_;
};

TEST_F(NsdsTest, FrameEncodingRoundTrip) {
  nsds::DataFrame frame;
  frame.sequence = 42;
  frame.samples = {{"a", 100, 1.5}, {"b", 200, -2.5}};
  util::ByteWriter writer;
  nsds::EncodeFrame(frame, writer);
  util::ByteReader reader(writer.data());
  auto decoded = nsds::DecodeFrame(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sequence, 42u);
  EXPECT_EQ(decoded->samples, frame.samples);
}

TEST_F(NsdsTest, SubscriberReceivesMatchingChannels) {
  nsds::NsdsSubscriber subscriber(&network_, "viewer");
  ASSERT_TRUE(subscriber.SubscribeTo("nsds.uiuc", "uiuc.").ok());
  EXPECT_EQ(server_->subscriber_count(), 1u);

  server_->Publish({{"uiuc.lvdt", 100, 0.01}, {"cu.lvdt", 100, 0.02}});
  const auto latest = subscriber.Latest();
  ASSERT_EQ(latest.size(), 1u);
  EXPECT_TRUE(latest.contains("uiuc.lvdt"));
  EXPECT_EQ(subscriber.stats().frames_received, 1u);
}

TEST_F(NsdsTest, MultipleSubscribersWithDifferentFilters) {
  nsds::NsdsSubscriber all(&network_, "viewer.all");
  nsds::NsdsSubscriber cu_only(&network_, "viewer.cu");
  ASSERT_TRUE(all.SubscribeTo("nsds.uiuc", "").ok());
  ASSERT_TRUE(cu_only.SubscribeTo("nsds.uiuc", "cu.").ok());

  server_->Publish({{"uiuc.load", 1, 1.0}, {"cu.load", 1, 2.0}});
  EXPECT_EQ(all.Latest().size(), 2u);
  EXPECT_EQ(cu_only.Latest().size(), 1u);
}

TEST_F(NsdsTest, LostFramesDetectedAsGaps) {
  nsds::NsdsSubscriber subscriber(&network_, "viewer");
  ASSERT_TRUE(subscriber.SubscribeTo("nsds.uiuc", "").ok());

  server_->Publish(MakeSamples("ch", 1, 1));
  network_.DropNext("nsds.uiuc", "viewer", 2);  // lose the next two frames
  server_->Publish(MakeSamples("ch", 2, 1));
  server_->Publish(MakeSamples("ch", 3, 1));
  server_->Publish(MakeSamples("ch", 4, 1));

  const auto stats = subscriber.stats();
  EXPECT_EQ(stats.frames_received, 2u);
  EXPECT_EQ(stats.gaps_detected, 1u);
  EXPECT_EQ(stats.frames_lost, 2u);
}

TEST_F(NsdsTest, BestEffortServerUnaffectedBySubscriberLoss) {
  nsds::NsdsSubscriber subscriber(&network_, "viewer");
  ASSERT_TRUE(subscriber.SubscribeTo("nsds.uiuc", "").ok());
  network_.SetLinkUp("nsds.uiuc", "viewer", false);
  for (int i = 0; i < 100; ++i) server_->Publish(MakeSamples("ch", i, 3));
  EXPECT_EQ(server_->stats().frames_published, 100u);
  EXPECT_EQ(server_->stats().frames_sent, 100u);  // sent, silently lost
  EXPECT_EQ(subscriber.stats().frames_received, 0u);
}

TEST_F(NsdsTest, DecimationShedsLoad) {
  nsds::NsdsSubscriber subscriber(&network_, "slow.viewer");
  ASSERT_TRUE(subscriber.SubscribeTo("nsds.uiuc", "", /*decimation=*/5).ok());
  for (int i = 0; i < 50; ++i) server_->Publish(MakeSamples("ch", i, 1));
  EXPECT_EQ(subscriber.stats().frames_received, 10u);
  EXPECT_EQ(server_->stats().frames_decimated, 40u);
  // Decimated frames are not sequence gaps.
  EXPECT_EQ(subscriber.stats().gaps_detected, 0u);
}

TEST_F(NsdsTest, UnsubscribeStopsDelivery) {
  nsds::NsdsSubscriber subscriber(&network_, "viewer");
  ASSERT_TRUE(subscriber.SubscribeTo("nsds.uiuc", "").ok());
  server_->Publish(MakeSamples("ch", 1, 1));
  server_->RemoveSubscriber("viewer");
  server_->Publish(MakeSamples("ch", 2, 1));
  EXPECT_EQ(subscriber.stats().frames_received, 1u);
}

TEST_F(NsdsTest, FrameCallbackInvoked) {
  nsds::NsdsSubscriber subscriber(&network_, "viewer");
  int frames = 0;
  subscriber.SetFrameCallback([&](const nsds::DataFrame&) { ++frames; });
  ASSERT_TRUE(subscriber.SubscribeTo("nsds.uiuc", "").ok());
  server_->Publish(MakeSamples("ch", 1, 2));
  EXPECT_EQ(frames, 1);
}

// --- referral service (TR-2003-09) ------------------------------------------------

class ReferralTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<nsds::ReferralService>(&network_,
                                                       "referral.nees");
    ASSERT_TRUE(service_->Start().ok());
    rpc_ = std::make_unique<net::RpcClient>(&network_, "participant");
    client_ = std::make_unique<nsds::ReferralClient>(rpc_.get(),
                                                     "referral.nees");
  }

  net::Network network_;
  std::unique_ptr<nsds::ReferralService> service_;
  std::unique_ptr<net::RpcClient> rpc_;
  std::unique_ptr<nsds::ReferralClient> client_;
};

TEST_F(ReferralTest, LookupByExperimentAndKind) {
  ASSERT_TRUE(client_->Register({"most", "stream", "nsds.nees", "most."}).ok());
  ASSERT_TRUE(client_->Register({"most", "camera", "cam.uiuc", "uiuc-lab"}).ok());
  ASSERT_TRUE(client_->Register({"most", "camera", "cam.cu", "cu-lab"}).ok());
  ASSERT_TRUE(client_->Register({"minimost", "stream", "nsds.mini", ""}).ok());

  auto cameras = client_->Lookup("most", "camera");
  ASSERT_TRUE(cameras.ok());
  EXPECT_EQ(cameras->size(), 2u);

  auto everything = client_->Lookup("most");
  ASSERT_TRUE(everything.ok());
  EXPECT_EQ(everything->size(), 3u);

  auto other = client_->Lookup("minimost", "camera");
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other->empty());
}

TEST_F(ReferralTest, ReRegistrationReplacesAndUnregisterRemoves) {
  ASSERT_TRUE(client_->Register({"most", "stream", "nsds.a", "v1"}).ok());
  ASSERT_TRUE(client_->Register({"most", "stream", "nsds.a", "v2"}).ok());
  auto streams = client_->Lookup("most", "stream");
  ASSERT_EQ(streams->size(), 1u);
  EXPECT_EQ((*streams)[0].detail, "v2");

  ASSERT_TRUE(client_->Unregister("most", "nsds.a").ok());
  EXPECT_TRUE(client_->Lookup("most")->empty());
}

TEST_F(ReferralTest, ReferralsAreActionable) {
  // End to end: look up the experiment's stream referral and subscribe to
  // what it points at.
  nsds::NsdsServer stream(&network_, "nsds.most");
  ASSERT_TRUE(stream.Start().ok());
  ASSERT_TRUE(
      client_->Register({"most", "stream", "nsds.most", "most."}).ok());

  auto referrals = client_->Lookup("most", "stream");
  ASSERT_TRUE(referrals.ok());
  ASSERT_EQ(referrals->size(), 1u);

  nsds::NsdsSubscriber viewer(&network_, "referred.viewer");
  ASSERT_TRUE(viewer
                  .SubscribeTo((*referrals)[0].endpoint,
                               (*referrals)[0].detail)
                  .ok());
  stream.Publish({{"most.displacement", 1, 0.5}});
  EXPECT_EQ(viewer.stats().frames_received, 1u);
}

// --- DAQ -----------------------------------------------------------------------

class DaqTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("neesdaq-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(DaqTest, RecordAndBuffer) {
  daq::DaqSystem daq;
  daq.AddChannel({"uiuc.lvdt", "m", 100.0});
  ASSERT_TRUE(daq.Record("uiuc.lvdt", 1000, 0.01).ok());
  ASSERT_TRUE(daq.Record("uiuc.lvdt", 2000, 0.02).ok());
  EXPECT_EQ(daq.Record("nope", 0, 0.0).code(), ErrorCode::kNotFound);

  const auto buffered = daq.Buffered("uiuc.lvdt");
  ASSERT_EQ(buffered.size(), 2u);
  EXPECT_EQ(buffered[0].time_micros, 1000);
  EXPECT_EQ(daq.recorded(), 2u);
}

TEST_F(DaqTest, RingOverflowDropsOldest) {
  daq::DaqSystem daq(/*ring_capacity=*/3);
  daq.AddChannel({"ch", "m", 100.0});
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(daq.Record("ch", i, i).ok());
  const auto buffered = daq.Buffered("ch");
  ASSERT_EQ(buffered.size(), 3u);
  EXPECT_EQ(buffered[0].time_micros, 2);  // 0 and 1 overwritten
  EXPECT_EQ(daq.overwritten(), 2u);
}

TEST_F(DaqTest, FlushWritesCsvAndClearsBuffers) {
  daq::DaqSystem daq;
  daq.AddChannel({"a", "m", 100.0});
  daq.AddChannel({"b", "N", 100.0});
  ASSERT_TRUE(daq.Record("a", 10, 1.5).ok());
  ASSERT_TRUE(daq.Record("b", 20, -2.5).ok());

  auto file = daq.Flush(dir_, "run1");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(std::filesystem::exists(*file));
  EXPECT_TRUE(daq.Buffered("a").empty());

  auto samples = daq::ParseDropFile(*file);
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 2u);
  EXPECT_EQ((*samples)[0].channel, "a");
  EXPECT_DOUBLE_EQ((*samples)[1].value, -2.5);

  // Empty flush reports nothing to do.
  EXPECT_EQ(daq.Flush(dir_, "run1").status().code(), ErrorCode::kNotFound);
}

TEST_F(DaqTest, ParseRejectsMalformedRows) {
  std::filesystem::create_directories(dir_);
  const auto bad = dir_ / "bad.csv";
  std::ofstream(bad) << "ch,notanumber,1.5\n";
  EXPECT_EQ(daq::ParseDropFile(bad).status().code(), ErrorCode::kDataLoss);
}

TEST_F(DaqTest, HarvesterProcessesAndRenames) {
  daq::DaqSystem daq;
  daq.AddChannel({"ch", "m", 100.0});
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(daq.Record("ch", i, i).ok());
  ASSERT_TRUE(daq.Flush(dir_, "run1").ok());
  ASSERT_TRUE(daq.Record("ch", 10, 10).ok());
  ASSERT_TRUE(daq.Flush(dir_, "run1").ok());

  std::size_t sunk_samples = 0;
  daq::Harvester harvester(
      dir_, [&](const std::filesystem::path&,
                const std::vector<nsds::DataSample>& samples) {
        sunk_samples += samples.size();
        return util::OkStatus();
      });
  auto processed = harvester.ScanOnce();
  ASSERT_TRUE(processed.ok());
  EXPECT_EQ(*processed, 2);
  EXPECT_EQ(sunk_samples, 11u);
  EXPECT_EQ(harvester.files_processed(), 2u);

  // Second scan: nothing left (files were renamed .done).
  EXPECT_EQ(*harvester.ScanOnce(), 0);
}

TEST_F(DaqTest, HarvesterRetriesFailedSink) {
  daq::DaqSystem daq;
  daq.AddChannel({"ch", "m", 100.0});
  ASSERT_TRUE(daq.Record("ch", 1, 1).ok());
  ASSERT_TRUE(daq.Flush(dir_, "run1").ok());

  bool fail = true;
  daq::Harvester harvester(
      dir_, [&](const std::filesystem::path&,
                const std::vector<nsds::DataSample>&) -> util::Status {
        if (fail) return util::Unavailable("repo down");
        return util::OkStatus();
      });
  EXPECT_EQ(*harvester.ScanOnce(), 0);
  EXPECT_EQ(harvester.files_failed(), 1u);
  fail = false;
  EXPECT_EQ(*harvester.ScanOnce(), 1);  // retried on next pass
}

TEST_F(DaqTest, HarvesterEmptyDirIsFine) {
  daq::Harvester harvester(dir_ / "missing",
                           [](const std::filesystem::path&,
                              const std::vector<nsds::DataSample>&) {
                             return util::OkStatus();
                           });
  EXPECT_EQ(*harvester.ScanOnce(), 0);
}

// --- DAQ -> NSDS live path --------------------------------------------------------

TEST(DaqNsdsTest, HarvestedSamplesStreamToViewers) {
  net::Network network;
  nsds::NsdsServer stream(&network, "nsds.site");
  ASSERT_TRUE(stream.Start().ok());
  nsds::NsdsSubscriber viewer(&network, "viewer");
  ASSERT_TRUE(viewer.SubscribeTo("nsds.site", "").ok());

  const auto dir = std::filesystem::temp_directory_path() / "neesdaq-live";
  std::filesystem::remove_all(dir);
  daq::DaqSystem daq;
  daq.AddChannel({"site.load", "N", 100.0});
  ASSERT_TRUE(daq.Record("site.load", 1, 123.0).ok());
  ASSERT_TRUE(daq.Flush(dir, "run").ok());

  daq::Harvester harvester(
      dir, [&](const std::filesystem::path&,
               const std::vector<nsds::DataSample>& samples) {
        stream.Publish(samples);
        return util::OkStatus();
      });
  ASSERT_TRUE(harvester.ScanOnce().ok());
  const auto latest = viewer.Latest();
  ASSERT_TRUE(latest.contains("site.load"));
  EXPECT_DOUBLE_EQ(latest.at("site.load").value, 123.0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nees
