// Tests for telepresence (camera control, video feed, still capture) and
// the CHEF collaboration environment (sessions, chat, notebook, board,
// data viewers with VCR cursor, participant swarm).
#include <gtest/gtest.h>

#include "chef/chef.h"
#include "net/network.h"
#include "repo/facade.h"
#include "telepresence/telepresence.h"
#include "util/clock.h"

namespace nees {
namespace {

using util::ErrorCode;

// --- telepresence ------------------------------------------------------------

class TeleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<tele::TelepresenceServer>(&network_,
                                                         "cam.uiuc", "uiuc-1");
    ASSERT_TRUE(server_->Start().ok());
    client_ = std::make_unique<tele::TelepresenceClient>(&network_, "viewer");
  }

  net::Network network_;
  std::unique_ptr<tele::TelepresenceServer> server_;
  std::unique_ptr<tele::TelepresenceClient> client_;
};

TEST_F(TeleTest, PanTiltZoomClampedToLimits) {
  auto pose = client_->Control("cam.uiuc", {500.0, -90.0, 100.0});
  ASSERT_TRUE(pose.ok());
  EXPECT_DOUBLE_EQ(pose->pan_deg, 170.0);
  EXPECT_DOUBLE_EQ(pose->tilt_deg, -30.0);
  EXPECT_DOUBLE_EQ(pose->zoom, 12.0);
}

TEST_F(TeleTest, SnapshotChangesWithPoseAndScene) {
  auto frame1 = client_->Snapshot("cam.uiuc");
  ASSERT_TRUE(frame1.ok());
  ASSERT_TRUE(client_->Control("cam.uiuc", {10.0, 5.0, 2.0}).ok());
  auto frame2 = client_->Snapshot("cam.uiuc");
  ASSERT_TRUE(frame2.ok());
  EXPECT_NE(*frame1, *frame2);

  server_->camera().SetSceneValue(0.042);
  auto frame3 = client_->Snapshot("cam.uiuc");
  ASSERT_TRUE(frame3.ok());
  EXPECT_NE(*frame2, *frame3);
}

TEST_F(TeleTest, VideoFeedReachesSubscribers) {
  ASSERT_TRUE(client_->SubscribeVideo("cam.uiuc").ok());
  for (int i = 0; i < 30; ++i) server_->PumpFrame();
  EXPECT_EQ(client_->frames_received(), 30u);
  EXPECT_FALSE(client_->last_frame().empty());
  EXPECT_EQ(server_->frames_pushed(), 30u);
}

TEST_F(TeleTest, VideoIsBestEffort) {
  ASSERT_TRUE(client_->SubscribeVideo("cam.uiuc").ok());
  network_.DropNext("cam.uiuc", "viewer", 5);
  for (int i = 0; i < 10; ++i) server_->PumpFrame();
  EXPECT_EQ(client_->frames_received(), 5u);  // lost frames are just gone
}

TEST_F(TeleTest, MultipleViewersEachGetFrames) {
  tele::TelepresenceClient second(&network_, "viewer2");
  ASSERT_TRUE(client_->SubscribeVideo("cam.uiuc").ok());
  ASSERT_TRUE(second.SubscribeVideo("cam.uiuc").ok());
  server_->PumpFrame();
  EXPECT_EQ(client_->frames_received(), 1u);
  EXPECT_EQ(second.frames_received(), 1u);
}

// --- CHEF ----------------------------------------------------------------------

class ChefTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_.SetClock(&clock_);
    server_ = std::make_unique<chef::ChefServer>(&network_, "chef.nees",
                                                 &clock_);
    ASSERT_TRUE(server_->Start().ok());
    client_ = std::make_unique<chef::ChefClient>(&network_, "c1",
                                                 "chef.nees");
  }

  void FeedViewer(int samples) {
    for (int i = 0; i < samples; ++i) {
      server_->viewer().Feed({"most.displacement", i * 20'000, 0.001 * i});
      server_->viewer().Feed({"most.force.UIUC", i * 20'000, 10.0 * i});
    }
  }

  util::SimClock clock_{1'000'000};
  net::Network network_;
  std::unique_ptr<chef::ChefServer> server_;
  std::unique_ptr<chef::ChefClient> client_;
};

TEST_F(ChefTest, LoginLogoutPresence) {
  ASSERT_TRUE(client_->Login("spencer").ok());
  chef::ChefClient other(&network_, "c2", "chef.nees");
  ASSERT_TRUE(other.Login("foster").ok());

  auto users = client_->Presence();
  ASSERT_TRUE(users.ok());
  EXPECT_EQ(*users, (std::vector<std::string>{"foster", "spencer"}));

  ASSERT_TRUE(other.Logout().ok());
  users = client_->Presence();
  EXPECT_EQ(users->size(), 1u);
  EXPECT_EQ(server_->stats().logins, 2u);
  EXPECT_EQ(server_->stats().peak_concurrent, 2u);
}

TEST_F(ChefTest, SessionRequiredForPosting) {
  EXPECT_EQ(client_->PostChat("most", "hi").code(),
            ErrorCode::kUnauthenticated);
  ASSERT_TRUE(client_->Login("spencer").ok());
  EXPECT_TRUE(client_->PostChat("most", "hi").ok());
}

TEST_F(ChefTest, ChatRoomsAreIsolatedAndOrdered) {
  ASSERT_TRUE(client_->Login("spencer").ok());
  ASSERT_TRUE(client_->PostChat("most", "first").ok());
  ASSERT_TRUE(client_->PostChat("dev", "internal").ok());
  ASSERT_TRUE(client_->PostChat("most", "second").ok());

  auto history = client_->ChatHistory("most");
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 2u);
  EXPECT_EQ((*history)[0].text, "first");
  EXPECT_EQ((*history)[1].text, "second");
  EXPECT_EQ((*history)[0].user, "spencer");

  // Incremental fetch from an offset.
  auto tail = client_->ChatHistory("most", 1);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 1u);
  EXPECT_EQ((*tail)[0].text, "second");
}

TEST_F(ChefTest, MessageBoardAndNotebook) {
  ASSERT_TRUE(client_->Login("spencer").ok());
  ASSERT_TRUE(client_->PostBoard("schedule", "dry run at 9am").ok());
  ASSERT_TRUE(client_->AppendNotebook("step 100: all nominal").ok());

  auto posts = client_->ReadBoard("schedule");
  ASSERT_TRUE(posts.ok());
  ASSERT_EQ(posts->size(), 1u);
  EXPECT_EQ((*posts)[0].text, "dry run at 9am");

  auto notebook = client_->ReadNotebook();
  ASSERT_TRUE(notebook.ok());
  ASSERT_EQ(notebook->size(), 1u);
  EXPECT_EQ((*notebook)[0].user, "spencer");
}

TEST_F(ChefTest, ViewerSeriesAndTailLimit) {
  FeedViewer(100);
  ASSERT_TRUE(client_->Login("observer").ok());
  auto series = client_->ViewerSeries("most.displacement", 1000);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 100u);

  auto tail = client_->ViewerSeries("most.displacement", 10);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 10u);
  EXPECT_DOUBLE_EQ(tail->back().value, 0.099);  // newest samples kept
}

TEST_F(ChefTest, HysteresisPairsByTimestamp) {
  FeedViewer(50);
  ASSERT_TRUE(client_->Login("observer").ok());
  auto loop =
      client_->ViewerHysteresis("most.displacement", "most.force.UIUC");
  ASSERT_TRUE(loop.ok());
  ASSERT_EQ(loop->size(), 50u);
  // force = 10000 * displacement in the fed data.
  for (const auto& [d, f] : *loop) {
    EXPECT_NEAR(f, 10000.0 * d, 1e-9);
  }
}

TEST_F(ChefTest, VcrControlsMoveCursor) {
  FeedViewer(100);
  ASSERT_TRUE(client_->Login("observer").ok());

  // Play + step advances.
  ASSERT_TRUE(client_->Vcr(chef::VcrCommand::kPlay).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client_->Vcr(chef::VcrCommand::kStep).ok());
  }
  auto at = client_->ViewAt("most.displacement");
  ASSERT_TRUE(at.ok());
  EXPECT_DOUBLE_EQ(at->value, 0.005);

  // Pause freezes the cursor against further steps.
  ASSERT_TRUE(client_->Vcr(chef::VcrCommand::kPause).ok());
  ASSERT_TRUE(client_->Vcr(chef::VcrCommand::kStep).ok());
  EXPECT_DOUBLE_EQ(client_->ViewAt("most.displacement")->value, 0.005);

  // Fast-forward, rewind, and the end stop.
  auto cursor = client_->Vcr(chef::VcrCommand::kFastForward);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(*cursor, 15u);
  cursor = client_->Vcr(chef::VcrCommand::kRewind);
  EXPECT_EQ(*cursor, 5u);
  cursor = client_->Vcr(chef::VcrCommand::kSeekEnd);
  EXPECT_EQ(*cursor, 99u);
  cursor = client_->Vcr(chef::VcrCommand::kSeekStart);
  EXPECT_EQ(*cursor, 0u);
}

TEST_F(ChefTest, VcrCursorIsPerSession) {
  FeedViewer(50);
  ASSERT_TRUE(client_->Login("a").ok());
  chef::ChefClient other(&network_, "c2", "chef.nees");
  ASSERT_TRUE(other.Login("b").ok());

  ASSERT_TRUE(client_->Vcr(chef::VcrCommand::kSeekEnd).ok());
  auto other_cursor = other.Vcr(chef::VcrCommand::kFastForward);
  ASSERT_TRUE(other_cursor.ok());
  EXPECT_EQ(*other_cursor, 10u);  // unaffected by the first session's seek
}

TEST_F(ChefTest, LiveStreamFeedsViewer) {
  nsds::NsdsServer stream(&network_, "nsds.nees");
  ASSERT_TRUE(stream.Start().ok());
  nsds::NsdsSubscriber subscription(&network_, "chef.feed");
  server_->ConnectStream(subscription);
  ASSERT_TRUE(subscription.SubscribeTo("nsds.nees", "most.").ok());

  stream.Publish({{"most.displacement", 1000, 0.5}});
  EXPECT_EQ(server_->viewer().SampleCount("most.displacement"), 1u);
  auto channels = server_->viewer().Channels();
  EXPECT_EQ(channels, std::vector<std::string>{"most.displacement"});
}

TEST_F(ChefTest, ArrangementsAreSavedSharedAndOrganized) {
  FeedViewer(30);
  ASSERT_TRUE(client_->Login("spencer").ok());

  // Saving needs a session and at least one view.
  EXPECT_FALSE(client_->SaveArrangement("empty", {}).ok());
  ASSERT_TRUE(client_
                  ->SaveArrangement("structure-response",
                                    {"most.displacement", "most.force.UIUC"})
                  .ok());

  // Another participant sees and opens the shared arrangement.
  chef::ChefClient other(&network_, "c2", "chef.nees");
  ASSERT_TRUE(other.Login("foster").ok());
  auto names = other.ListArrangements();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"structure-response"});

  auto views = other.OpenArrangement("structure-response");
  ASSERT_TRUE(views.ok());
  ASSERT_EQ(views->size(), 2u);
  EXPECT_EQ((*views)[0].first, "most.displacement");
  EXPECT_DOUBLE_EQ((*views)[0].second.value, 0.029);  // freshest sample
  EXPECT_DOUBLE_EQ((*views)[1].second.value, 290.0);

  EXPECT_EQ(other.OpenArrangement("nope").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(ChefTest, ArchivedDataLoadsIntoViewerThroughHttpsBridge) {
  // §3: CHEF "access[ed] the metadata catalog and download[ed] experimental
  // data so that it could be viewed immediately by remote participants".
  repo::RepositoryFacade repository(&network_, "repo.nees");
  ASSERT_TRUE(repository.Start().ok());
  repo::HttpsBridge bridge(&network_, "https.nees", "repo.nees");
  ASSERT_TRUE(bridge.Start().ok());

  const std::string csv =
      "most.displacement,0,0.001\n"
      "most.displacement,20000,0.002\n"
      "most.force.UIUC,0,10.0\n";
  ASSERT_TRUE(repository
                  .Ingest("most/daq/archived.csv",
                          repo::Bytes(csv.begin(), csv.end()), "daq-data", {})
                  .ok());

  net::RpcClient fetch_rpc(&network_, "chef.fetch");
  auto loaded = server_->LoadArchivedData(&fetch_rpc, "https.nees",
                                          "most/daq/archived.csv");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 3u);
  EXPECT_EQ(server_->viewer().SampleCount("most.displacement"), 2u);
  EXPECT_EQ(server_->viewer().SampleCount("most.force.UIUC"), 1u);

  // Missing archives and corrupt CSV both fail cleanly.
  EXPECT_FALSE(
      server_->LoadArchivedData(&fetch_rpc, "https.nees", "ghost").ok());
  ASSERT_TRUE(repository
                  .Ingest("bad.csv", {'z', ',', 'q', '\n'}, "daq-data", {})
                  .ok());
  EXPECT_EQ(server_->LoadArchivedData(&fetch_rpc, "https.nees", "bad.csv")
                .status()
                .code(),
            ErrorCode::kDataLoss);
}

TEST_F(ChefTest, ParticipantSwarm130Users) {
  FeedViewer(20);
  const chef::SwarmReport report =
      chef::RunParticipantSwarm(&network_, "chef.nees", 130);
  EXPECT_EQ(report.participants, 130);
  EXPECT_EQ(report.failures, 0);
  EXPECT_GT(report.chat_posts, 100);
  EXPECT_GT(report.viewer_reads, 200);
  EXPECT_EQ(server_->stats().peak_concurrent, 130u);
  EXPECT_EQ(server_->ActiveUsers().size(), 130u);
}

}  // namespace
}  // namespace nees
