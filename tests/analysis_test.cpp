// Tests for the lockdep runtime behind util::Mutex (src/util/mutex.h):
// deterministic lock-order inversion detection, the wait-while-holding and
// blocking-call rules, allowlist exemptions, and a no-false-positive run
// over the real async step engine. All tests skip when NEES_LOCKDEP is
// compiled out (Release builds).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "most/fuzz.h"
#include "net/link.h"
#include "psd/coordinator.h"
#include "util/mutex.h"

namespace nees {
namespace {

using util::CondVar;
using util::Mutex;
using util::MutexLock;
namespace lockdep = util::lockdep;

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!lockdep::kEnabled) {
      GTEST_SKIP() << "NEES_LOCKDEP compiled out of this build";
    }
    lockdep::ClearAllowlist();
    lockdep::Reset();
  }

  void TearDown() override {
    if (lockdep::kEnabled) {
      lockdep::ClearAllowlist();
      lockdep::Reset();
    }
  }
};

// The injected A->B / B->A inversion must be flagged on the first inverted
// acquisition — no interleaving or real deadlock required.
TEST_F(LockdepTest, DetectsOrderInversion) {
  Mutex a("test.A");
  Mutex b("test.B");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  ASSERT_EQ(lockdep::ViolationCount(), 0u);
  {
    MutexLock lb(b);
    MutexLock la(a);  // closes the cycle: reported here
  }
  const auto violations = lockdep::Violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, lockdep::Violation::Kind::kOrder);
  EXPECT_NE(violations[0].description.find("test.A"), std::string::npos);
  EXPECT_NE(violations[0].description.find("test.B"), std::string::npos);
}

// Same inputs, same report: detection is a function of the acquisition
// sequence, not timing.
TEST_F(LockdepTest, DetectionIsDeterministic) {
  std::vector<std::string> reports;
  for (int round = 0; round < 3; ++round) {
    lockdep::Reset();
    Mutex a("test.A");
    Mutex b("test.B");
    {
      MutexLock la(a);
      MutexLock lb(b);
    }
    {
      MutexLock lb(b);
      MutexLock la(a);
    }
    const auto violations = lockdep::Violations();
    ASSERT_EQ(violations.size(), 1u);
    reports.push_back(violations[0].description);
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[1], reports[2]);
}

// Violations are deduplicated: repeating the same inversion reports once.
TEST_F(LockdepTest, DuplicateInversionReportedOnce) {
  Mutex a("test.A");
  Mutex b("test.B");
  for (int i = 0; i < 5; ++i) {
    {
      MutexLock la(a);
      MutexLock lb(b);
    }
    {
      MutexLock lb(b);
      MutexLock la(a);
    }
  }
  EXPECT_EQ(lockdep::ViolationCount(), 1u);
}

// Two instances of one class nested is self-deadlock-shaped and reported
// unless the class opts in with "order X X".
TEST_F(LockdepTest, SameClassNestingReported) {
  Mutex first("test.node");
  Mutex second("test.node");
  {
    MutexLock outer(first);
    MutexLock inner(second);
  }
  ASSERT_EQ(lockdep::ViolationCount(), 1u);
  EXPECT_EQ(lockdep::Violations()[0].kind, lockdep::Violation::Kind::kOrder);

  lockdep::Reset();
  ASSERT_TRUE(lockdep::AllowRule("order test.node test.node"));
  {
    MutexLock outer(first);
    MutexLock inner(second);
  }
  EXPECT_EQ(lockdep::ViolationCount(), 0u);
}

// An "order" allowlist entry keeps a known-benign edge out of cycle
// detection (the edge still appears in the dump).
TEST_F(LockdepTest, AllowlistedOrderEdgeSuppressesCycle) {
  ASSERT_TRUE(lockdep::AllowRule("order test.B test.A"));
  Mutex a("test.A");
  Mutex b("test.B");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);  // inverted, but the B->A edge is allowlisted
  }
  EXPECT_EQ(lockdep::ViolationCount(), 0u);
}

// Waiting on a condvar while holding a second lock stalls every other
// user of that lock for the full wait: reported.
TEST_F(LockdepTest, WaitWhileHoldingReported) {
  Mutex outer("test.outer");
  Mutex inner("test.inner");
  CondVar cv;
  {
    MutexLock lo(outer);
    MutexLock li(inner);
    cv.WaitFor(inner, 1000);
  }
  const auto violations = lockdep::Violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind,
            lockdep::Violation::Kind::kWaitWhileHolding);
  EXPECT_NE(violations[0].description.find("test.outer"), std::string::npos);
}

// Waiting while holding only the waited-on mutex is the normal pattern.
TEST_F(LockdepTest, WaitHoldingOnlyWaitedMutexIsClean) {
  Mutex mu("test.lone");
  CondVar cv;
  {
    MutexLock lock(mu);
    cv.WaitFor(mu, 1000);
  }
  EXPECT_EQ(lockdep::ViolationCount(), 0u);
}

// The "wait <class>" allowlist entry exempts a vetted holder class.
TEST_F(LockdepTest, AllowlistedWaitNotReported) {
  ASSERT_TRUE(lockdep::AllowRule("wait test.outer"));
  Mutex outer("test.outer");
  Mutex inner("test.inner");
  CondVar cv;
  {
    MutexLock lo(outer);
    MutexLock li(inner);
    cv.WaitFor(inner, 1000);
  }
  EXPECT_EQ(lockdep::ViolationCount(), 0u);
}

// Blocking RPC entry points call CheckBlockingCall; holding any lock there
// is reported unless the class carries an "rpc" exemption.
TEST_F(LockdepTest, BlockingCallUnderLockReported) {
  Mutex mu("test.holder");
  {
    MutexLock lock(mu);
    lockdep::CheckBlockingCall("test.FakeRpcWait");
  }
  const auto violations = lockdep::Violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind,
            lockdep::Violation::Kind::kBlockingCallWhileHolding);
  EXPECT_NE(violations[0].description.find("test.FakeRpcWait"),
            std::string::npos);

  lockdep::Reset();
  ASSERT_TRUE(lockdep::AllowRule("rpc test.holder"));
  {
    MutexLock lock(mu);
    lockdep::CheckBlockingCall("test.FakeRpcWait");
  }
  EXPECT_EQ(lockdep::ViolationCount(), 0u);
}

TEST_F(LockdepTest, BlockingCallWithNoLocksHeldIsClean) {
  lockdep::CheckBlockingCall("test.FakeRpcWait");
  EXPECT_EQ(lockdep::ViolationCount(), 0u);
}

// MutexLock's Unlock()/Lock() juggling keeps the held stack truthful: the
// lock vanishes from HeldLockNames while released.
TEST_F(LockdepTest, RelockableMutexLockTracksHeldStack) {
  Mutex mu("test.juggle");
  MutexLock lock(mu);
  ASSERT_EQ(lockdep::HeldLockNames(),
            std::vector<std::string>{"test.juggle"});
  lock.Unlock();
  EXPECT_TRUE(lockdep::HeldLockNames().empty());
  lock.Lock();
  EXPECT_EQ(lockdep::HeldLockNames(),
            std::vector<std::string>{"test.juggle"});
}

// Malformed allowlist lines are rejected, comments and blanks accepted.
TEST_F(LockdepTest, AllowRuleParsing) {
  EXPECT_TRUE(lockdep::AllowRule("# a comment"));
  EXPECT_TRUE(lockdep::AllowRule(""));
  EXPECT_TRUE(lockdep::AllowRule("wait some.class"));
  EXPECT_TRUE(lockdep::AllowRule("rpc some.class"));
  EXPECT_TRUE(lockdep::AllowRule("order a.class b.class"));
  EXPECT_FALSE(lockdep::AllowRule("bogus rule kind"));
  EXPECT_FALSE(lockdep::AllowRule("wait"));
  EXPECT_FALSE(lockdep::AllowRule("order only.one"));
}

// The real workload must be violation-free: an async-engine experiment
// fanned out over 8 sites (every subsystem lock participates — network,
// RPC, NTCP servers, plugins, backends, tracer, metrics, WAL).
TEST_F(LockdepTest, NoFalsePositivesAsyncEngineAtEightSites) {
  most::FuzzScenario scenario;
  scenario.seed = 8;
  scenario.sites = 8;
  scenario.steps = 6;
  scenario.engine = psd::StepEngine::kAsync;
  for (std::size_t i = 0; i < scenario.sites; ++i) {
    net::LinkModel link;
    link.latency_micros = 2000;
    scenario.site_links.push_back(link);
  }
  const most::FuzzOutcome outcome = most::RunFuzzCase(scenario);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty()
                                    ? std::string("no failure detail")
                                    : outcome.failures.front());
  EXPECT_EQ(lockdep::ViolationCount(), 0u);
  // The run populated a real graph: several classes and ordered edges.
  EXPECT_GT(lockdep::ClassCount(), 5u);
  EXPECT_GT(lockdep::EdgeCount(), 3u);
}

}  // namespace
}  // namespace nees
